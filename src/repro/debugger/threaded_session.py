"""The full debugger on the threaded backend.

Everything :class:`~repro.debugger.session.DebugSession` offers — the
extended topology with the debugger process, breakpoints over predicate
markers, halting, protocol-based inspection, resume — running over OS
threads instead of virtual time. The agents are the *same classes*; only
the driving loop differs: where the DES session steps a kernel, this one
waits on real conditions with timeouts.

Thread-safety rule: controller state belongs to the controller's thread.
Session methods therefore never touch a controller directly — they
``defer`` closures into the debugger's mailbox (commands go out from the
debugger's own thread) and read only append-only notification lists.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.breakpoints.detector import PredicateAgent
from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import LinkedPredicate, SimplePredicate, as_linked
from repro.debugger.agent import (
    DEFAULT_DEBUGGER_NAME,
    DebuggerAgent,
    DebuggerProcess,
)
from repro.debugger.client import DebugClientAgent
from repro.debugger.commands import ResumeCommand
from repro.debugger.failure import PartialHaltReport
from repro.faults.plan import FaultPlan
from repro.halting.algorithm import HaltingAgent
from repro.network.reliable import ReliabilityConfig
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.threaded import ThreadedSystem
from repro.util.errors import HaltingError, PredicateError, ReproError
from repro.util.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability


class ThreadedDebugSession:
    """Interactive debugging over a thread-per-process system."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[ProcessId, Process],
        seed: int = 0,
        time_scale: float = 0.02,
        latency_range: Tuple[float, float] = (0.0005, 0.003),
        debugger_name: ProcessId = DEFAULT_DEBUGGER_NAME,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        reliable: bool = False,
        observe: Optional["Observability"] = None,
    ) -> None:
        if debugger_name in topology.processes:
            raise ReproError(f"user topology already contains {debugger_name!r}")
        self.debugger_name = debugger_name
        #: Optional live metrics/tracing hub (see :mod:`repro.observe`).
        self.observe = observe
        extended = topology.with_debugger(debugger_name)
        staffed: Dict[ProcessId, Process] = dict(processes)
        staffed[debugger_name] = DebuggerProcess()
        self.system = ThreadedSystem(
            extended, staffed, seed=seed,
            time_scale=time_scale, latency_range=latency_range,
            never_halt={debugger_name},
            fault_plan=fault_plan,
            reliability=reliability,
            reliable=reliable,
            observe=observe,
        )
        self._halting_agents: Dict[ProcessId, HaltingAgent] = {}
        self._predicate_agents: Dict[ProcessId, PredicateAgent] = {}
        self._cancelled: set = set()
        for name in extended.processes:
            controller = self.system.controller(name)
            halting = HaltingAgent(controller)
            controller.install(halting)
            self._halting_agents[name] = halting
            if name == debugger_name:
                predicate = PredicateAgent(controller, halt_on_final=False,
                                           cancelled=self._cancelled)
                controller.install(predicate)
                self._predicate_agents[name] = predicate
                self.agent = DebuggerAgent(controller)
                controller.install(self.agent)
            else:
                client = DebugClientAgent(controller, debugger_name)
                predicate = PredicateAgent(
                    controller,
                    on_final=client.notify_breakpoint,
                    halt_on_final=True,
                    cancelled=self._cancelled,
                )
                controller.install(predicate)
                controller.install(client)
                self._predicate_agents[name] = predicate
        self._next_lp_id = 1
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch every process thread (idempotent)."""
        if not self._started:
            self._started = True
            self.system.start()

    def shutdown(self) -> None:
        """Stop and join every process thread."""
        self.system.shutdown()

    def __enter__(self) -> "ThreadedDebugSession":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- breakpoints ------------------------------------------------------------

    def set_breakpoint(
        self, predicate: Union[str, LinkedPredicate, SimplePredicate],
        halt: bool = True,
    ) -> int:
        """Arm a linked predicate (§3.6); returns its lp_id. The markers
        are issued on the debugger's own thread via its mailbox."""
        lp = parse_predicate(predicate) if isinstance(predicate, str) else as_linked(predicate)
        unknown = lp.processes() - set(self.system.topology.processes)
        if unknown:
            raise PredicateError(f"predicate names unknown processes {sorted(unknown)}")
        lp_id = self._next_lp_id
        self._next_lp_id += 1
        debugger = self.system.controller(self.debugger_name)
        debugger.defer(
            lambda: self.agent.issue_predicate(lp, lp_id, halt=halt),
            label="set_breakpoint",
        )
        return lp_id

    def clear_breakpoint(self, lp_id: int) -> None:
        """Disarm one linked predicate: later completions are ignored."""
        self._cancelled.add(lp_id)

    # -- execution control -----------------------------------------------------------

    def run_until_stopped(self, timeout: float = 30.0) -> bool:
        """Wait until every user process halted (and traffic settled)."""
        self.start()
        if not self.system.run_until(self.system.all_user_processes_halted,
                                     timeout=timeout):
            return False
        settled = self.system.settle(timeout=timeout)
        if self.observe is not None:
            self.observe.sync_session(self)
        return settled

    def wait_quiet(self, timeout: float = 30.0) -> bool:
        """Wait for quiescence regardless of halting (program finished or
        wedged)."""
        self.start()
        return self.system.settle(timeout=timeout)

    def halt(self) -> None:
        """Debugger-initiated halt (markers on its control channels)."""
        debugger = self.system.controller(self.debugger_name)
        agent = self._halting_agents[self.debugger_name]
        debugger.defer(agent.initiate, label="halt")

    def halt_with_watchdog(
        self, timeout: float = 10.0, probe_grace: float = 3.0
    ) -> PartialHaltReport:
        """Initiate a halt bounded by wall-clock watchdogs.

        Mirrors :meth:`DebugSession.halt_with_watchdog`: if the halt does
        not converge within ``timeout`` seconds, the still-unhalted
        processes are pinged and anything silent through ``probe_grace``
        is declared dead; the survivors form a partial consistent cut.
        """
        self.start()
        names = self.system.user_process_names
        # Initiate only if no halt is in progress — supervising an already
        # spreading halt must not layer a second generation onto processes
        # that are frozen (their agents would reject the re-halt).
        if not any(self.system.controller(n).halted for n in names):
            self.halt()

        def generation() -> int:
            return max(a.last_halt_id for a in self._halting_agents.values())

        if self.system.run_until(self.system.all_user_processes_halted,
                                 timeout=timeout):
            self.system.settle(timeout=timeout)
            # A process may have halted and *then* crashed — its halted
            # flag survives but it can never answer. Probe everyone.
            dead = self._probe_dead(names, probe_grace)
            if self.observe is not None:
                self.observe.sync_session(self)
            return PartialHaltReport(
                generation=generation(),
                halted=tuple(n for n in names if n not in dead),
                dead=dead,
                unresolved=(),
                time=time.time(),
                complete=not dead,
            )
        unhalted = [
            n for n in names if not self.system.controller(n).halted
        ]
        dead = self._probe_dead(unhalted, probe_grace)
        halted = tuple(n for n in names if self.system.controller(n).halted)
        unresolved = tuple(
            n for n in names if n not in halted and n not in dead
        )
        if self.observe is not None:
            self.observe.sync_session(self)
        return PartialHaltReport(
            generation=generation(),
            halted=halted,
            dead=dead,
            unresolved=unresolved,
            time=time.time(),
            complete=False,
        )

    def _probe_dead(self, suspects, probe_grace: float):
        """Ping each suspect from the debugger thread; silence through the
        grace window means the host is dead (live ones answer even halted)."""
        suspects = list(suspects)
        pings: Dict[ProcessId, int] = {}
        debugger = self.system.controller(self.debugger_name)

        def probe() -> None:
            for name in suspects:
                pings[name] = self.agent.send_ping(name)

        debugger.defer(probe, label="watchdog_probe")
        self.system.run_until(
            lambda: len(pings) == len(suspects)
            and all(pid in self.agent.pongs for pid in pings.values()),
            timeout=probe_grace,
        )
        return tuple(
            name for name in suspects if pings.get(name) not in self.agent.pongs
        )

    def resume(self, timeout: float = 10.0) -> bool:
        """Send resume commands; wait until nobody is halted."""
        generation = max(a.last_halt_id for a in self._halting_agents.values())
        debugger = self.system.controller(self.debugger_name)

        def send_resumes() -> None:
            for name in self.system.user_process_names:
                if self.system.controller(name).halted:
                    self.agent.send_command(name, ResumeCommand(generation=generation))

        debugger.defer(send_resumes, label="resume")
        return self.system.run_until(
            lambda: not any(
                self.system.controller(n).halted
                for n in self.system.user_process_names
            ),
            timeout=timeout,
        )

    def step(self, process: ProcessId, channel: Optional[str] = None,
             timeout: float = 10.0):
        """Single-step one halted process: deliver exactly one buffered
        message and re-freeze. Returns the :class:`StepReport` (which says
        ``delivered=False`` when there was nothing to step)."""
        if process not in self.system.user_process_names:
            raise ReproError(f"unknown process {process!r}")
        holder: List[int] = []
        debugger = self.system.controller(self.debugger_name)

        def request() -> None:
            holder.append(self.agent.send_step(process, channel=channel))

        debugger.defer(request, label="step")
        if not self.system.run_until(lambda: bool(holder), timeout=timeout):
            raise HaltingError("debugger thread did not issue the step")
        step_id = holder[0]
        if not self.system.run_until(
            lambda: step_id in self.agent.step_reports, timeout=timeout
        ):
            raise HaltingError(f"no step report from {process}")
        return self.agent.step_reports[step_id]

    def current_generation(self) -> int:
        """The highest halt_id any process has seen."""
        return max(a.last_halt_id for a in self._halting_agents.values())

    def alive(self) -> List[ProcessId]:
        """User processes whose controllers have not crashed."""
        return [
            n for n in self.system.user_process_names
            if not self.system.controller(n).crashed
        ]

    # -- inspection -------------------------------------------------------------------------

    def inspect(self, process: ProcessId, timeout: float = 10.0) -> Dict[str, object]:
        """Protocol-based state fetch (works live or halted)."""
        holder: List[int] = []
        debugger = self.system.controller(self.debugger_name)

        def request() -> None:
            holder.append(self.agent.request_state(process))

        debugger.defer(request, label="inspect")
        if not self.system.run_until(lambda: bool(holder), timeout=timeout):
            raise HaltingError("debugger thread did not issue the request")
        request_id = holder[0]
        if not self.system.run_until(
            lambda: request_id in self.agent.state_reports, timeout=timeout
        ):
            raise HaltingError(f"no state report from {process}")
        return dict(self.agent.state_reports[request_id].snapshot.state)

    def global_state(self, timeout: float = 10.0,
                     allow_partial: bool = False):
        """Assemble the halted global state ``S_h`` from protocol state
        reports, exactly like the DES session does: one report per halted
        process, pending channel contents included. ``allow_partial``
        accepts a cut over only the currently-halted processes."""
        from repro.snapshot.state import ChannelState, GlobalState
        from repro.util.ids import ChannelId

        names = self.system.user_process_names
        halted = [n for n in names if self.system.controller(n).halted]
        missing = [n for n in names if n not in halted]
        if missing and not allow_partial:
            raise HaltingError("global_state() requires all processes halted")
        debugger = self.system.controller(self.debugger_name)
        ids: Dict[ProcessId, int] = {}

        def request() -> None:
            for name in halted:
                ids[name] = self.agent.request_state(name)

        debugger.defer(request, label="global_state")
        if not self.system.run_until(
            lambda: len(ids) == len(halted)
            and all(rid in self.agent.state_reports for rid in ids.values()),
            timeout=timeout,
        ):
            raise HaltingError("state reports did not all arrive")
        processes = {}
        channels: Dict[ChannelId, ChannelState] = {}
        for name in halted:
            report = self.agent.state_reports[ids[name]]
            processes[name] = report.snapshot
            closed = set(report.closed_channels)
            for channel_text, messages in report.pending.items():
                channel = ChannelId.parse(channel_text)
                channels[channel] = ChannelState(
                    channel=channel,
                    messages=tuple(messages),
                    complete=channel_text in closed,
                )
        meta: Dict[str, object] = {
            "halt_order": [n.process for n in self.agent.halting_order()],
        }
        if missing:
            meta["partial"] = True
            meta["missing"] = sorted(missing)
        return GlobalState(
            origin="halting",
            processes=processes,
            channels=channels,
            generation=self.current_generation(),
            meta=meta,
        )

    def halting_order(self) -> List[ProcessId]:
        """§2.2.4 order in which halt notifications arrived."""
        return [n.process for n in self.agent.halting_order()]

    def halt_paths(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """Per process, the already-halted path its marker carried."""
        return {n.process: n.path for n in self.agent.halting_order()}

    def breakpoint_hits(self):
        """Every BreakpointHit the debugger has learned about."""
        return list(self.agent.breakpoint_hits)

    # -- observability exports (require observe=Observability()) ----------------

    def _require_observe(self):
        if self.observe is None:
            raise ReproError(
                "session has no observability attached; construct it with "
                "ThreadedDebugSession(..., observe=Observability())"
            )
        return self.observe

    def chrome_trace(self, path: Optional[str] = None) -> Dict[str, object]:
        """Export recorded spans as a validated Chrome trace document."""
        from repro.observe.export import chrome_trace, write_chrome_trace

        observe = self._require_observe()
        observe.sync_session(self)
        if path is not None:
            return write_chrome_trace(observe, path)
        return chrome_trace(observe)

    def metrics_text(self) -> str:
        """Prometheus-style text dump of the live metrics registry."""
        from repro.observe.export import prometheus_text

        observe = self._require_observe()
        observe.sync_session(self)
        return prometheus_text(observe.metrics)

    def halt_narrative(self) -> str:
        """§2.2.4's halting order as readable text."""
        from repro.observe.narrative import halt_narrative

        if self.observe is not None:
            self.observe.sync_session(self)
        return halt_narrative(self)
