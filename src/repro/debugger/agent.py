"""The debugger process ``d`` (extended model, §2.2.3).

``d`` is an ordinary process of the system — it occupies a node, owns real
channels to and from every user process, and its messages ride the same
simulated network. What makes it special:

* it never halts (its :class:`~repro.runtime.controller.ProcessController`
  is built with ``never_halts=True``);
* its :class:`~repro.halting.algorithm.HaltingAgent` relays halt markers
  without halting, making the channel graph strongly connected for markers
  (the fix for Fig. 2's acyclic topologies);
* this plugin collects every notification the clients push and exposes the
  "typical functions of a debugger" to the session layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.breakpoints.detector import PredicateAgent, PredicateMarker
from repro.breakpoints.predicates import ConjunctivePredicate, LinkedPredicate
from repro.debugger.commands import (
    BreakpointHit,
    HaltNotification,
    PingCommand,
    PongNotice,
    SatisfactionNotice,
    StateReport,
    StateRequest,
    StepCommand,
    StepReport,
    UnwatchCommand,
    WatchCommand,
)
from repro.debugger.gather import GatherDetector, UnorderedDetection
from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.process import Process
from repro.util.errors import ReproError
from repro.util.ids import ChannelId, ProcessId

DEFAULT_DEBUGGER_NAME: ProcessId = "d"


class DebuggerProcess(Process):
    """The debugger's user-code shell. Debugger behaviour lives in control
    plugins; the shell only routes the debugger's own timers (heartbeat
    intervals, watchdog deadlines) to registered hooks — the debugger never
    halts, so its timers keep firing while the user program is frozen,
    which is what makes failure detection during a halt possible."""

    def __init__(self) -> None:
        self.timer_hooks: Dict[str, object] = {}

    def on_timer(self, ctx: object, name: str, payload: object) -> None:
        """Dispatch a named timer to its registered hook (heartbeats,
        watchdogs); unknown timers are ignored."""
        hook = self.timer_hooks.get(name)
        if hook is not None:
            hook(payload)  # type: ignore[operator]


class DebuggerAgent(ControlPlugin):
    """Collects notifications and issues commands — the hub side of the
    protocol in :mod:`repro.debugger.commands`."""

    kinds = frozenset({MessageKind.DEBUG_CONTROL})

    def __init__(self, controller: ProcessController) -> None:
        self.attach(controller)
        self.halt_notifications: List[HaltNotification] = []
        self.breakpoint_hits: List[BreakpointHit] = []
        self.state_reports: Dict[int, StateReport] = {}
        #: step_id -> StepReport for every answered single-step.
        self.step_reports: Dict[int, StepReport] = {}
        self.unordered_detections: List[UnorderedDetection] = []
        #: ping_id -> PongNotice for every answered liveness probe.
        self.pongs: Dict[int, PongNotice] = {}
        #: process -> debugger-local arrival time of its freshest pong.
        self.last_pong: Dict[ProcessId, float] = {}
        self._gatherers: Dict[int, GatherDetector] = {}
        self._next_request_id = 1
        self._next_watch_id = 1
        self._next_ping_id = 1
        self._next_step_id = 1

    # -- notification intake -------------------------------------------------

    def on_control(self, envelope: Envelope) -> None:
        """File one incoming notification into the matching append-only
        intake (halts, hits, state/step reports, pongs, satisfactions)."""
        notice = envelope.payload
        if isinstance(notice, HaltNotification):
            self.halt_notifications.append(notice)
        elif isinstance(notice, BreakpointHit):
            self.breakpoint_hits.append(notice)
        elif isinstance(notice, StateReport):
            self.state_reports[notice.request_id] = notice
        elif isinstance(notice, StepReport):
            self.step_reports[notice.step_id] = notice
        elif isinstance(notice, PongNotice):
            self.pongs[notice.ping_id] = notice
            self.last_pong[notice.process] = self.controller.now
        elif isinstance(notice, SatisfactionNotice):
            gatherer = self._gatherers.get(notice.watch_id)
            if gatherer is not None:
                detection = gatherer.on_notice(notice, now=self.controller.now)
                if detection is not None:
                    self.unordered_detections.append(detection)
        else:
            raise ReproError(f"debugger received unknown notification {notice!r}")

    # -- commands -----------------------------------------------------------------

    def send_command(self, process: ProcessId, command: object) -> None:
        """Send one debugger command on the direct d->process channel."""
        self.controller.send_control(
            ChannelId(self.controller.name, process),
            MessageKind.DEBUG_CONTROL,
            command,
        )

    def request_state(self, process: ProcessId, include_channels: bool = True) -> int:
        """Ask one process for a state report; returns the request id the
        eventual :class:`StateReport` will carry."""
        request_id = self._next_request_id
        self._next_request_id += 1
        self.send_command(
            process, StateRequest(request_id=request_id, include_channels=include_channels)
        )
        return request_id

    def send_step(self, process: ProcessId, channel: Optional[str] = None) -> int:
        """Ask one halted process to deliver exactly one buffered message
        (optionally restricted to ``channel``). Returns the step_id; the
        answer lands in :attr:`step_reports` — always, even when there was
        nothing to step."""
        step_id = self._next_step_id
        self._next_step_id += 1
        self.send_command(process, StepCommand(step_id=step_id, channel=channel))
        return step_id

    def send_ping(self, process: ProcessId) -> int:
        """Probe one process's liveness. Returns the ping_id; the answer
        (if the host is alive) lands in :attr:`pongs`."""
        ping_id = self._next_ping_id
        self._next_ping_id += 1
        self.send_command(process, PingCommand(ping_id=ping_id))
        return ping_id

    def answered(self, ping_id: int) -> bool:
        """True once the pong for ``ping_id`` arrived."""
        return ping_id in self.pongs

    # -- breakpoints (Predicate-Marker-Sending Rule, §3.6) ----------------------------

    def issue_predicate(self, lp: LinkedPredicate, lp_id: int, halt: bool = True) -> None:
        """Send a predicate marker for ``lp`` to each process involved in
        its first Disjunctive Predicate."""
        agent = self.controller.plugin_of(PredicateAgent)
        if agent is None:
            raise ReproError("debugger has no PredicateAgent installed")
        marker = PredicateMarker(lp_id=lp_id, residual=lp, stage_index=0, halt=halt)
        for target in sorted(lp.first.processes()):
            if target == self.controller.name:
                raise ReproError("predicates cannot reference the debugger process")
            agent._route_marker(target, marker)  # direct d->target channel exists

    # -- conjunctive watches (gather detector, §3.5) -------------------------------------

    def watch_conjunction(self, conjunction: ConjunctivePredicate,
                          history: int = 32) -> int:
        """Install continuous watches for every term of an (unordered)
        conjunction; the debugger gathers notices and reports concurrent
        co-satisfactions after the fact."""
        watch_id = self._next_watch_id
        self._next_watch_id += 1
        self._gatherers[watch_id] = GatherDetector(watch_id, conjunction, history)
        for term_index, term in enumerate(conjunction.terms):
            self.send_command(
                term.process,
                WatchCommand(watch_id=watch_id, term_index=term_index, term=term),
            )
        return watch_id

    def unwatch(self, watch_id: int) -> None:
        """Tear down one conjunction watch at every involved process."""
        gatherer = self._gatherers.pop(watch_id, None)
        if gatherer is None:
            return
        for term in gatherer.conjunction.terms:
            self.send_command(term.process, UnwatchCommand(watch_id=watch_id))

    def detections_for(self, watch_id: int) -> List[UnorderedDetection]:
        """Every concurrent co-satisfaction one watch has gathered."""
        return [d for d in self.unordered_detections if d.watch_id == watch_id]

    # -- views ---------------------------------------------------------------------------

    def halted_processes(self) -> List[ProcessId]:
        """Processes that have reported halting, in arrival order."""
        return [n.process for n in self.halt_notifications]

    def halting_order(self) -> List[HaltNotification]:
        """Halt notifications in arrival order. Each carries the §2.2.4
        marker path — who had already halted when this process froze."""
        return list(self.halt_notifications)

    def latest_report(self, process: ProcessId) -> Optional[StateReport]:
        """The most recent state report from ``process``, if any."""
        for report in reversed(list(self.state_reports.values())):
            if report.process == process:
                return report
        return None
