"""A command-line front end for :class:`~repro.debugger.session.DebugSession`.

The paper's motivation is *interactive* debugging; this module is the
interactive shell: gdb-flavoured commands over the debugger process.
Everything is exposed through :meth:`DebuggerCLI.execute`, which takes one
command line and returns the output string — so the shell is fully
scriptable and testable; :meth:`DebuggerCLI.repl` wraps it in a stdin loop.

    (rdb) break state(balance<600)@branch0
    breakpoint 1 armed: state(balance<600)@branch0
    (rdb) run
    stopped at t=12.403 (generation 1); 1 breakpoint hit
    (rdb) inspect branch0
    branch0 (halted): {'balance': 581, 'transfers_made': 9}
    (rdb) continue
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.debugger.session import DebugSession
from repro.util.errors import ReproError

PROMPT = "(rdb) "


class DebuggerCLI:
    """Stateful command interpreter over one debug session."""

    def __init__(self, session: DebugSession) -> None:
        self.session = session
        self.finished = False
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self._cmd_help,
            "break": self._cmd_break,
            "pathbreak": self._cmd_pathbreak,
            "breaks": self._cmd_breaks,
            "clear": self._cmd_clear,
            "watch": self._cmd_watch,
            "run": self._cmd_run,
            "halt": self._cmd_halt,
            "continue": self._cmd_continue,
            "resume": self._cmd_resume,
            "step": self._cmd_step,
            "inspect": self._cmd_inspect,
            "processes": self._cmd_processes,
            "order": self._cmd_order,
            "paths": self._cmd_paths,
            "state": self._cmd_state,
            "events": self._cmd_events,
            "hits": self._cmd_hits,
            "diagram": self._cmd_diagram,
            "stats": self._cmd_stats,
            "metrics": self._cmd_metrics,
            "trace": self._cmd_trace,
            "narrative": self._cmd_narrative,
            "report": self._cmd_report,
            "save": self._cmd_save,
            "quit": self._cmd_quit,
        }

    # -- driver -----------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the printable result."""
        line = line.strip()
        if not line or line.startswith("#"):
            return ""
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            return f"parse error: {exc}"
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            return f"unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except ReproError as exc:
            return f"error: {exc}"

    def run_script(self, lines) -> List[str]:
        """Execute a sequence of command lines; returns their outputs."""
        outputs = []
        for line in lines:
            outputs.append(self.execute(line))
            if self.finished:
                break
        return outputs

    def repl(self, input_fn=input, print_fn=print) -> None:  # pragma: no cover
        """Interactive loop (blocking on stdin)."""
        print_fn("distributed debugger — 'help' for commands")
        while not self.finished:
            try:
                line = input_fn(PROMPT)
            except (EOFError, KeyboardInterrupt):
                break
            output = self.execute(line)
            if output:
                print_fn(output)

    # -- commands -----------------------------------------------------------------

    def _cmd_help(self, args: List[str]) -> str:
        return "\n".join([
            "break <predicate>   arm a breakpoint (DSL: enter(f)@p, send@q|recv@r, a -> b, ^n, state(k<5)@p)",
            "pathbreak <expr>    arm a path expression (seq ';', alt '|', repeat '{n}')",
            "breaks              list armed breakpoints",
            "clear <id>          disarm a breakpoint",
            "watch '<a & b>'     watch an unordered conjunction (gather detector)",
            "run [t]             run until everything halts (or until time t)",
            "halt                initiate the Halting Algorithm from the debugger",
            "resume              un-freeze all halted processes",
            "step <proc> [chan]  deliver one buffered message, stay halted",
            "continue            resume, then run",
            "inspect <proc>      fetch one process's state via the protocol",
            "processes           status of every process",
            "order / paths       halting order / §2.2.4 marker paths",
            "state               assembled global state S_h (requires full halt)",
            "events <proc> [n]   last n recorded events of a process",
            "hits                breakpoint completions seen so far",
            "diagram [t0 t1]     space-time diagram (message traffic view)",
            "stats               causal statistics of the recorded execution",
            "metrics             live metrics registry, Prometheus text format",
            "trace <path>        write spans as a Chrome trace_event JSON file",
            "narrative           the latest halt, §2.2.4 order, as readable prose",
            "report              full post-mortem report (requires full halt)",
            "save <path>         write the halted global state S_h to JSON",
            "quit                leave the debugger",
        ])

    def _cmd_break(self, args: List[str]) -> str:
        if not args:
            return "usage: break <predicate>"
        text = " ".join(args)
        lp_id = self.session.set_breakpoint(text)
        return f"breakpoint {lp_id} armed: {text}"

    def _cmd_pathbreak(self, args: List[str]) -> str:
        if not args:
            return "usage: pathbreak <path-expression>"
        text = " ".join(args)
        lp_ids = self.session.set_path_breakpoint(text)
        return (
            f"path breakpoint armed as {len(lp_ids)} alternative(s): "
            f"{', '.join(map(str, lp_ids))}"
        )

    def _cmd_breaks(self, args: List[str]) -> str:
        if not self.session._breakpoints:
            return "no breakpoints armed"
        return "\n".join(
            f"  {lp_id}: {lp}" for lp_id, lp in sorted(self.session._breakpoints.items())
        )

    def _cmd_clear(self, args: List[str]) -> str:
        if len(args) != 1 or not args[0].isdigit():
            return "usage: clear <breakpoint-id>"
        lp_id = int(args[0])
        if lp_id not in self.session._breakpoints:
            return f"no breakpoint {lp_id}"
        self.session.clear_breakpoint(lp_id)
        return f"breakpoint {lp_id} cleared"

    def _cmd_watch(self, args: List[str]) -> str:
        if not args:
            return "usage: watch <term & term [& term]>"
        watch_id = self.session.watch_conjunction(" ".join(args))
        return f"watch {watch_id} installed (gather detector)"

    def _cmd_run(self, args: List[str]) -> str:
        until: Optional[float] = None
        if args:
            try:
                until = float(args[0])
            except ValueError:
                return "usage: run [until-time]"
        outcome = self.session.run(until=until)
        lines = []
        if outcome.stopped:
            lines.append(
                f"stopped at t={outcome.time:.3f} "
                f"(generation {self.session.current_generation()}); "
                f"{len(outcome.hits)} breakpoint hit(s)"
            )
            for hit in outcome.hits:
                trail = " -> ".join(str(s) for s in hit.marker.trail)
                lines.append(f"  hit at {hit.process}: {trail}")
        else:
            lines.append(
                f"program ran to t={outcome.time:.3f} without halting "
                f"({outcome.events_executed} kernel events)"
            )
        for detection in outcome.unordered:
            lines.append(
                f"  unordered conjunction seen "
                f"(lag {detection.detection_lag:.2f}): "
                + ", ".join(h.process for h in detection.hits)
            )
        return "\n".join(lines)

    def _cmd_halt(self, args: List[str]) -> str:
        self.session.halt()
        return "halt markers dispatched — 'run' to let them land"

    def _cmd_resume(self, args: List[str]) -> str:
        self.session.resume()
        return "resumed"

    def _cmd_step(self, args: List[str]) -> str:
        if not args or len(args) > 2:
            return "usage: step <process> [channel]"
        name = args[0]
        if name not in self.session.system.controllers:
            return f"unknown process {name!r}"
        channel = args[1] if len(args) > 1 else None
        report = self.session.step(name, channel=channel)
        if not report.delivered:
            return f"{name}: no buffered message to step"
        return (
            f"stepped {name}: delivered on {report.channel} "
            f"({report.detail}); {report.remaining} message(s) still buffered"
        )

    def _cmd_continue(self, args: List[str]) -> str:
        self.session.resume()
        return self._cmd_run([])

    def _cmd_inspect(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: inspect <process>"
        name = args[0]
        if name not in self.session.system.controllers:
            return f"unknown process {name!r}"
        state = self.session.inspect(name)
        status = "halted" if self.session.system.controller(name).halted else "running"
        return f"{name} ({status}): {dict(sorted(state.items()))!r}"

    def _cmd_processes(self, args: List[str]) -> str:
        lines = []
        for name in self.session.system.user_process_names:
            controller = self.session.system.controller(name)
            if controller.terminated:
                status = "terminated"
            elif controller.halted:
                status = "halted"
            else:
                status = "running"
            lines.append(f"  {name:12s} {status:10s} events={controller._local_seq}")
        return "\n".join(lines)

    def _cmd_order(self, args: List[str]) -> str:
        order = self.session.halting_order()
        if not order:
            return "nothing has halted"
        return "halting order: " + " -> ".join(order)

    def _cmd_paths(self, args: List[str]) -> str:
        paths = self.session.halt_paths()
        if not paths:
            return "nothing has halted"
        return "\n".join(
            f"  {process:12s} via {' -> '.join(path) or '(spontaneous)'}"
            for process, path in sorted(paths.items())
        )

    def _cmd_state(self, args: List[str]) -> str:
        state = self.session.global_state()
        return state.describe()

    def _cmd_events(self, args: List[str]) -> str:
        if not args:
            return "usage: events <process> [count]"
        name = args[0]
        count = int(args[1]) if len(args) > 1 and args[1].isdigit() else 10
        events = self.session.system.log.for_process(name)
        if not events:
            return f"no events recorded for {name!r}"
        return "\n".join(f"  {event!r}" for event in events[-count:])

    def _cmd_hits(self, args: List[str]) -> str:
        hits = self.session.agent.breakpoint_hits
        if not hits:
            return "no breakpoint completions yet"
        return "\n".join(
            f"  lp{hit.marker.lp_id} at {hit.process} t={hit.time:.3f}"
            for hit in hits
        )

    def _cmd_diagram(self, args: List[str]) -> str:
        from repro.analysis.diagram import render_spacetime
        from repro.events.event import EventKind

        start, end = 0.0, None
        if len(args) >= 1:
            try:
                start = float(args[0])
                end = float(args[1]) if len(args) > 1 else None
            except ValueError:
                return "usage: diagram [start-time [end-time]]"
        return render_spacetime(
            self.session.system.log,
            processes=self.session.system.user_process_names,
            start=start,
            end=end,
            kinds={EventKind.SEND, EventKind.RECEIVE, EventKind.TIMER,
                   EventKind.PROCESS_TERMINATED},
            max_rows=60,
            unicode_glyphs=False,
        )

    def _cmd_stats(self, args: List[str]) -> str:
        from repro.analysis.diagram import render_summary
        from repro.analysis.order import compute_order_stats
        from repro.util.errors import AnalysisError

        summary = render_summary(self.session.system.log)
        try:
            stats = compute_order_stats(self.session.system.log)
        except AnalysisError as exc:
            return summary + f"\n(order stats skipped: {exc})" + self._live_metrics_tail()
        return (
            summary
            + f"\nconcurrency ratio : {stats.concurrency_ratio:.2f}"
            + f"\ncritical path     : {stats.critical_path_length} events"
            + f"\nmessage depth     : {stats.message_depth} hops"
            + f"\nmean parallelism  : {stats.parallelism:.2f}"
            + self._live_metrics_tail()
        )

    def _live_metrics_tail(self) -> str:
        """Per-kind message counters from the live registry, when attached."""
        observe = getattr(self.session, "observe", None)
        if observe is None:
            return ""
        sent = observe.metrics.snapshot().get("messages_sent_total", {})
        if not sent:
            return ""
        parts = ", ".join(
            f"{dict(labels).get('kind', '?')}={int(value)}"
            for labels, value in sorted(sent.items())
        )
        return f"\nlive counters     : sent {parts}"

    def _cmd_metrics(self, args: List[str]) -> str:
        if getattr(self.session, "observe", None) is None:
            return ("no observability attached — construct the session with "
                    "observe=Observability()")
        return self.session.metrics_text().rstrip("\n")

    def _cmd_trace(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: trace <path>"
        if getattr(self.session, "observe", None) is None:
            return ("no observability attached — construct the session with "
                    "observe=Observability()")
        document = self.session.chrome_trace(args[0])
        return (
            f"wrote {len(document['traceEvents'])} trace events to {args[0]} "
            f"(load in Perfetto / chrome://tracing)"
        )

    def _cmd_narrative(self, args: List[str]) -> str:
        return self.session.halt_narrative()

    def _cmd_report(self, args: List[str]) -> str:
        from repro.debugger.report import post_mortem

        return post_mortem(self.session)

    def _cmd_save(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: save <path>"
        from repro.trace import dump_state

        state = self.session.global_state()
        with open(args[0], "w", encoding="utf-8") as fp:
            dump_state(state, fp)
        return (
            f"saved S_h (generation {state.generation}, "
            f"{len(state.processes)} processes, "
            f"{state.total_pending_messages()} pending messages) to {args[0]}"
        )

    def _cmd_quit(self, args: List[str]) -> str:
        self.finished = True
        return "bye"
