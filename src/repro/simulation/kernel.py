"""Deterministic discrete-event simulation kernel.

The kernel is the virtual clock that every other subsystem runs on. It is a
priority queue of ``(time, priority, sequence, callback)`` entries. Two
properties matter for this reproduction:

* **Determinism.** Entries scheduled at the same virtual time fire in a fixed
  order (priority, then insertion order). Determinism is what lets experiment
  E2 compare the *halted* state ``S_h`` of one run against the *recorded*
  snapshot ``S_r`` of an identical run and demand exact equality (Theorem 2
  of the paper).
* **Virtual time.** The paper's algorithms are asynchronous and correct under
  arbitrary finite message delays; the kernel realises "unpredictable
  communication delays" (§1) as seeded random latencies, so sweeping seeds
  sweeps over interleavings.

Seed sweeps only sample the interleaving space. For systematic exploration
the kernel accepts a pluggable *ordering hook*
(:meth:`SimulationKernel.set_ordering`): when installed, the hook — not the
heap order — picks which pending entry fires next, and the clock follows the
chosen entry (never moving backward). That inversion of control is what
:mod:`repro.check` builds its schedule explorer on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.errors import SimulationError


@dataclass(frozen=True, slots=True)
class EventHandle:
    """Token returned by :meth:`SimulationKernel.schedule`; allows cancel."""

    time: float
    priority: int
    sequence: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventHandle(t={self.time}, prio={self.priority}, seq={self.sequence})"


class _Entry:
    """One heap cell. Slotted and hand-compared: the queue allocates one of
    these per scheduled callback, so dataclass machinery is measurable
    overhead on the hot path."""

    __slots__ = ("time", "priority", "tiebreak", "sequence", "callback",
                 "cancelled", "view")

    def __init__(
        self,
        time: float,
        priority: int,
        tiebreak: tuple,
        sequence: int,
        callback: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.tiebreak = tiebreak
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        # Lazily-built ScheduledEvent shown to ordering hooks; an entry's
        # scheduling metadata is immutable, so one view serves every step.
        self.view: Optional[ScheduledEvent] = None

    def __lt__(self, other: "_Entry") -> bool:
        return (self.time, self.priority, self.tiebreak, self.sequence) < (
            other.time, other.priority, other.tiebreak, other.sequence)


@dataclass(frozen=True, slots=True)
class ScheduledEvent:
    """Read-only view of one pending entry, passed to ordering hooks.

    The callback is deliberately absent: a hook chooses *when* work runs,
    never what it does, so it only sees scheduling metadata.
    """

    sequence: int
    time: float
    priority: int
    tiebreak: tuple


class SimulationKernel:
    """Single-threaded virtual-time scheduler.

    Callbacks are zero-argument callables; closures carry their own state.
    The kernel never swallows exceptions: an exception raised by a callback
    aborts :meth:`run`, because a failed assertion inside an algorithm step
    must fail the experiment loudly.
    """

    def __init__(self) -> None:
        self._queue: List[_Entry] = []
        # Live (scheduled, not yet fired or cancelled) entries by sequence,
        # in insertion order. The dict makes cancel/pending O(1) and lets
        # the controlled step iterate live entries without rescanning the
        # heap array every step.
        self._live: Dict[int, _Entry] = {}
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_executed = 0
        self._ordering: Optional[Callable[[List[ScheduledEvent]], int]] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total callbacks executed so far (a cheap progress metric)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled entries."""
        return len(self._live)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        tiebreak: tuple = (),
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` after the current time.

        Entries at equal virtual time fire in ``(priority, tiebreak,
        insertion order)`` order, lower first. ``tiebreak`` exists for
        cross-run determinism: channel deliveries pass a key derived from the
        channel identity, not from global insertion order, so two executions
        that differ only in *control* traffic (e.g. a halting run vs a
        snapshot run, experiment E2) order their equal-time user deliveries
        identically. Delays must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = next(self._sequence)
        entry = _Entry(self._now + delay, priority, tiebreak, sequence, callback)
        heapq.heappush(self._queue, entry)
        self._live[sequence] = entry
        return EventHandle(entry.time, priority, sequence)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        tiebreak: tuple = (),
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        return self.schedule(time - self._now, callback, priority, tiebreak)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled entry. Returns ``True`` if it was still pending.

        Cancellation is lazy: the entry is flagged and skipped when popped,
        which keeps cancel O(1) via the live-entry index and the heap intact.
        """
        entry = self._live.get(handle.sequence)
        if entry is None or entry.time != handle.time:
            return False
        entry.cancelled = True
        del self._live[handle.sequence]
        return True

    def set_ordering(
        self, hook: Optional[Callable[[List[ScheduledEvent]], int]]
    ) -> None:
        """Install (or clear, with ``None``) a pluggable event-ordering hook.

        While a hook is installed, :meth:`step` no longer pops the heap
        minimum: the hook receives every live pending entry as a
        :class:`ScheduledEvent` and returns the ``sequence`` of the one to
        fire. Virtual time then advances to ``max(now, chosen.time)`` —
        the hook may fire entries out of timestamp order (that is the
        point: message delays are arbitrary in the paper's model, §2.1),
        but the clock never runs backward. Used by :mod:`repro.check` to
        turn latency-driven interleavings into explorable decisions.
        """
        self._ordering = hook

    def step(self) -> bool:
        """Execute the next pending entry. Returns ``False`` when drained."""
        if self._ordering is not None:
            return self._step_controlled()
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError(
                    f"time went backward: entry at {entry.time}, now {self._now}"
                )
            del self._live[entry.sequence]
            self._now = entry.time
            self._events_executed += 1
            entry.callback()
            return True
        return False

    def _step_controlled(self) -> bool:
        """One step under an ordering hook: the hook picks, the kernel fires.

        The chosen entry is flagged cancelled rather than removed so the
        heap invariant survives; :meth:`_peek` and periodic
        :meth:`drain_cancelled` calls reclaim the space.
        """
        live = self._live
        if not live:
            self._queue.clear()
            return False
        views: List[ScheduledEvent] = []
        for e in live.values():
            view = e.view
            if view is None:
                view = ScheduledEvent(e.sequence, e.time, e.priority,
                                      e.tiebreak)
                e.view = view
            views.append(view)
        assert self._ordering is not None
        chosen = self._ordering(views)
        entry = live.get(chosen)
        if entry is None:
            raise SimulationError(
                f"ordering hook chose unknown entry sequence {chosen!r}"
            )
        entry.cancelled = True
        del live[chosen]
        if entry.time > self._now:
            self._now = entry.time
        self._events_executed += 1
        if self._events_executed % 256 == 0:
            self.drain_cancelled()
        entry.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run entries until the queue drains or a bound is reached.

        ``until``
            Stop before executing any entry scheduled strictly after this
            virtual time (the clock still advances to ``until``).
        ``max_events``
            Stop after executing this many entries in this call.
        ``stop_when``
            Checked after every entry; return ``True`` to stop early. Used by
            debug sessions to stop as soon as every process halted.

        Returns the number of entries executed by this call. Re-entrant calls
        (``run`` from inside a callback) are rejected.
        """
        if self._running:
            raise SimulationError("SimulationKernel.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
                executed += 1
                if stop_when is not None and stop_when():
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return executed

    def _peek(self) -> Optional[_Entry]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def pending_metadata(self) -> List[Tuple[float, int, tuple]]:
        """``(time, priority, tiebreak)`` of every live entry, queue order.

        Scheduling metadata only — no callbacks, no sequence numbers (a
        sequence is an insertion-order artifact). Used by the checker's
        state fingerprints to fold "work still scheduled" into a state's
        identity.
        """
        return [
            (entry.time, entry.priority, entry.tiebreak)
            for entry in self._live.values()
        ]

    def pending_events(self) -> List[ScheduledEvent]:
        """Read-only :class:`ScheduledEvent` views of every live entry.

        The same cached views :meth:`_step_controlled` hands to an ordering
        hook, exposed so a :class:`repro.check.gate.KernelGate` can
        enumerate the enabled set *before* committing a step. Views are
        cached per entry, so repeated enumeration allocates nothing.
        """
        views: List[ScheduledEvent] = []
        for e in self._live.values():
            view = e.view
            if view is None:
                view = ScheduledEvent(e.sequence, e.time, e.priority,
                                      e.tiebreak)
                e.view = view
            views.append(view)
        return views

    def drain_cancelled(self) -> None:
        """Physically remove cancelled entries (housekeeping for long runs)."""
        live = list(self._live.values())
        heapq.heapify(live)
        self._queue = live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationKernel(now={self._now}, pending={self.pending}, "
            f"executed={self._events_executed})"
        )


# Priorities used across the library. Lower fires first at equal time.
# Control-plane deliveries intentionally use the same priority as user
# deliveries: the paper's channels are FIFO and markers travel *in band*,
# so giving markers a different priority would violate the channel model.
PRIORITY_DELIVERY = 0
PRIORITY_TIMER = 1
PRIORITY_INTERNAL = 2
