"""Deterministic discrete-event simulation substrate."""

from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_INTERNAL,
    PRIORITY_TIMER,
    EventHandle,
    SimulationKernel,
)

__all__ = [
    "EventHandle",
    "PRIORITY_DELIVERY",
    "PRIORITY_INTERNAL",
    "PRIORITY_TIMER",
    "SimulationKernel",
]
