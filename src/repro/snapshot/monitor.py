"""Periodic snapshots and stable-property detection.

Chandy & Lamport's algorithm was introduced for *stable-property
detection*: take snapshots until a property that can only go false→true
(termination, deadlock, token loss) shows up in one — then it genuinely
holds now, because it held at a consistent past state and can never un-hold.

:class:`SnapshotMonitor` drives that loop over the DES backend: it
initiates a snapshot every ``interval`` of virtual time, evaluates
user-supplied invariants and stable properties against each recorded
``S_r``, and stops the harness loop when a stable property is confirmed.

Built-in stable property: :func:`terminated` — every process is passive
(no armed timers, captured in the snapshot metadata) and every channel is
empty. On a run that really has quiesced this fires one snapshot after the
fact, and never before (tested in E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.runtime.system import System
from repro.snapshot.chandy_lamport import SnapshotCoordinator
from repro.snapshot.state import GlobalState
from repro.util.errors import SnapshotError

StateProperty = Callable[[GlobalState], bool]


def terminated(state: GlobalState) -> bool:
    """The classic stable property: all passive, all channels empty."""
    if state.total_pending_messages() > 0:
        return False
    return all(
        snap.meta.get("armed_timers", 0) == 0
        for snap in state.processes.values()
    )


@dataclass
class MonitorRecord:
    """One periodic observation."""

    generation: int
    initiated_at: float
    completed_at: float
    state: GlobalState
    invariant_failures: List[str] = field(default_factory=list)
    stable_detected: bool = False

    @property
    def detection_latency(self) -> float:
        return self.completed_at - self.initiated_at


class SnapshotMonitor:
    """Periodic-snapshot harness over one system.

    ``invariants`` are named predicates expected to hold at *every*
    consistent state (e.g. conservation of money) — a failure is recorded,
    not raised, so a run can show exactly when an invariant broke.
    ``stable`` is the property to wait for; monitoring stops once a
    snapshot satisfies it.
    """

    def __init__(
        self,
        system: System,
        interval: float,
        invariants: Optional[dict] = None,
        stable: Optional[StateProperty] = None,
        initiator: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise SnapshotError("interval must be positive")
        self.system = system
        self.interval = interval
        self.invariants = dict(invariants or {})
        self.stable = stable
        self.initiator = initiator or system.user_process_names[0]
        self.coordinator = SnapshotCoordinator(system)
        self.records: List[MonitorRecord] = []

    def run(self, max_rounds: int = 1000, max_events_per_round: int = 500_000) -> List[MonitorRecord]:
        """Drive the system, snapshotting every ``interval``, until the
        stable property is detected, the system drains, or ``max_rounds``.
        Returns the observation records."""
        if not self.system.kernel.pending:
            self.system.start()
        for _ in range(max_rounds):
            # Run the program for one interval (it may finish during it).
            self.system.run(
                until=self.system.kernel.now + self.interval,
                max_events=max_events_per_round,
            )
            initiated_at = self.system.kernel.now
            self.coordinator.initiate([self.initiator])
            self.system.kernel.run(
                stop_when=self.coordinator.is_complete,
                max_events=max_events_per_round,
            )
            if not self.coordinator.is_complete():
                raise SnapshotError(
                    "periodic snapshot did not complete; system wedged?"
                )
            state = self.coordinator.collect()
            record = MonitorRecord(
                generation=state.generation,
                initiated_at=initiated_at,
                completed_at=self.system.kernel.now,
                state=state,
            )
            for name, invariant in self.invariants.items():
                if not invariant(state):
                    record.invariant_failures.append(name)
            if self.stable is not None and self.stable(state):
                record.stable_detected = True
            self.records.append(record)
            if record.stable_detected:
                break
            if self.stable is None and not self.system.kernel.pending:
                break  # nothing left to observe
        return self.records

    @property
    def detected_at(self) -> Optional[float]:
        """Virtual time at which the stable property was confirmed."""
        for record in self.records:
            if record.stable_detected:
                return record.completed_at
        return None

    def invariant_failures(self) -> List[str]:
        return [
            f"generation {record.generation}: {name}"
            for record in self.records
            for name in record.invariant_failures
        ]
