"""Global states: the paper's ``S_r`` (recorded) and ``S_h`` (halted).

§2.1: "A global state S_r consists of the states of processes of the
computation and the states of channels." Both the snapshot algorithm and
the Halting Algorithm produce a :class:`GlobalState`; Theorem 2 says the two
are the same, and :func:`repro.analysis.equivalence.states_equivalent`
checks exactly the two clauses of the paper's claim:

1. per-process states match, and
2. per-channel undelivered/recorded message sequences match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.util.ids import ChannelId, ProcessId


@dataclass(frozen=True)
class ChannelState:
    """The recorded (or halted) contents of one directed channel."""

    channel: ChannelId
    #: Messages in send order (FIFO), as the program put them on the wire.
    messages: Tuple[UserMessage, ...]
    #: True when the algorithm *knows* this sequence is complete — a marker
    #: arrived behind the last message. Always true for C&L and the Halting
    #: Algorithm; the naive baseline cannot guarantee it (experiment E9).
    complete: bool = True

    def content_keys(self) -> Tuple[tuple, ...]:
        return tuple(m.content_key() for m in self.messages)

    def __len__(self) -> int:
        return len(self.messages)


@dataclass(frozen=True)
class GlobalState:
    """A consistent global state: process snapshots plus channel states."""

    #: Which algorithm produced this: "snapshot", "halting", "naive", …
    origin: str
    processes: Mapping[ProcessId, ProcessStateSnapshot]
    channels: Mapping[ChannelId, ChannelState]
    #: Generation number (snapshot_id / halt_id).
    generation: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self.processes))

    def channel_ids(self) -> Tuple[ChannelId, ...]:
        return tuple(sorted(self.channels))

    def total_pending_messages(self) -> int:
        return sum(len(state) for state in self.channels.values())

    def pending_on(self, channel: ChannelId) -> Tuple[UserMessage, ...]:
        state = self.channels.get(channel)
        return state.messages if state else ()

    def state_of(self, process: ProcessId) -> Optional[ProcessStateSnapshot]:
        return self.processes.get(process)

    def describe(self) -> str:
        """Human-readable multi-line summary (debugger UI, examples)."""
        lines = [f"GlobalState[{self.origin} gen={self.generation}]"]
        for name in self.process_names():
            snap = self.processes[name]
            lines.append(
                f"  {name}: events={snap.local_seq} lamport={snap.lamport} "
                f"state={dict(sorted(snap.state.items()))!r}"
            )
        for channel in self.channel_ids():
            state = self.channels[channel]
            if state.messages:
                flag = "" if state.complete else " (INCOMPLETE)"
                lines.append(f"  {channel}: {len(state)} pending{flag}")
        return "\n".join(lines)
