"""Chandy & Lamport's global-snapshot algorithm (the paper's §2.1 restatement).

This is the *baseline* the Halting Algorithm is derived from and proved
equivalent to. The transcription below keeps the paper's two rules literal:

    Marker-Sending Rule for a process p:
        for each channel c, incident on and directed away from p, p sends
        one marker along c after p records its state and before p sends
        further messages along c.

    Marker-Receiving Rule for a process q, on receiving a marker along c:
        if q has not recorded its state then
            q records its state; q records the state of c as empty
        else
            q records the state of c as the sequence of messages received
            along c after q's state was recorded and before q received the
            marker along c.

"before p sends further messages" holds structurally here: recording and
marker sending happen synchronously inside one plugin callback, and user
code cannot run in between.

Engineering addition (also made by the paper for halting): markers carry a
``snapshot_id`` generation number so that repeated snapshots of the same
system don't confuse each other and simultaneous initiations of the *same*
snapshot merge, while stale markers are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import SnapshotError
from repro.util.ids import ChannelId, ProcessId


@dataclass(frozen=True)
class SnapshotMarker:
    """The C&L marker, tagged with a generation number."""

    snapshot_id: int


class SnapshotAgent(ControlPlugin):
    """Per-process side of the C&L algorithm."""

    kinds = frozenset({MessageKind.SNAPSHOT_MARKER})

    def __init__(self, controller: ProcessController,
                 on_complete: Callable[["SnapshotAgent"], None]) -> None:
        self.attach(controller)
        self._on_complete = on_complete
        self.snapshot_id = 0
        self.recorded_state: Optional[ProcessStateSnapshot] = None
        self._recording: Dict[ChannelId, List[UserMessage]] = {}
        self._closed: Set[ChannelId] = set()
        self._participating = False

    # -- the Marker-Sending Rule -------------------------------------------

    def initiate(self, snapshot_id: int) -> None:
        """Spontaneously record (an initiating process of the algorithm)."""
        if snapshot_id <= self.snapshot_id:
            raise SnapshotError(
                f"snapshot id must increase: {snapshot_id} <= {self.snapshot_id}"
            )
        self._record_and_send_markers(snapshot_id)

    def _record_and_send_markers(self, snapshot_id: int) -> None:
        self.snapshot_id = snapshot_id
        self.recorded_state = self.controller.capture_state(
            snapshot_id=snapshot_id
        )
        self._recording = {}
        self._closed = set()
        self._participating = True
        marker = SnapshotMarker(snapshot_id=snapshot_id)
        for channel_id in self.controller.outgoing_channels():
            self.controller.send_control(
                channel_id, MessageKind.SNAPSHOT_MARKER, marker
            )
        self._check_complete()

    # -- the Marker-Receiving Rule --------------------------------------------

    def on_control(self, envelope: Envelope) -> None:
        marker = envelope.payload
        assert isinstance(marker, SnapshotMarker)
        if marker.snapshot_id < self.snapshot_id:
            return  # stale marker from a previous generation
        if marker.snapshot_id > self.snapshot_id or self.recorded_state is None:
            # First marker of this generation: record own state, the channel
            # the marker arrived on is empty.
            self._record_and_send_markers(marker.snapshot_id)
            self._close_channel(envelope.channel, [])
        else:
            # Already recorded: the channel state is what arrived since.
            self._close_channel(
                envelope.channel, self._recording.pop(envelope.channel, [])
            )

    def _close_channel(self, channel_id: ChannelId, messages: List[UserMessage]) -> None:
        if channel_id in self._closed:
            raise SnapshotError(
                f"{self.controller.name}: duplicate marker on {channel_id} "
                f"for snapshot {self.snapshot_id}"
            )
        self._closed.add(channel_id)
        self._recording[channel_id] = messages
        self._check_complete()

    # -- channel recording ---------------------------------------------------------

    def on_user_delivered(self, envelope: Envelope, event) -> None:
        if not self._participating or self.recorded_state is None:
            return
        if envelope.channel in self._closed:
            return
        message = envelope.payload
        assert isinstance(message, UserMessage)
        self._recording.setdefault(envelope.channel, []).append(message)

    # -- completion --------------------------------------------------------------------

    def expected_channels(self) -> Tuple[ChannelId, ...]:
        """Incoming channels that will eventually carry a marker: those whose
        sender runs the algorithm (debugger processes never record)."""
        return tuple(
            c for c in self.controller.incoming_channels()
            if not self.controller.system.controller(c.src).never_halts
        )

    @property
    def complete(self) -> bool:
        return (
            self.recorded_state is not None
            and set(self.expected_channels()) <= self._closed
        )

    def _check_complete(self) -> None:
        if self._participating and self.complete:
            self._participating = False
            self._on_complete(self)

    def channel_states(self) -> Dict[ChannelId, ChannelState]:
        return {
            channel_id: ChannelState(
                channel=channel_id,
                messages=tuple(messages),
                complete=channel_id in self._closed,
            )
            for channel_id, messages in self._recording.items()
        }


class SnapshotCoordinator:
    """Harness-side driver: installs agents, initiates, assembles ``S_r``.

    The coordinator is observation scaffolding, not part of the distributed
    algorithm — it never influences the run, it only initiates (as "one or
    more processes spontaneously record") and gathers results for analysis.
    """

    def __init__(self, system: System) -> None:
        self.system = system
        self._next_id = 1
        self._complete_agents: Set[ProcessId] = set()
        self.agents: Dict[ProcessId, SnapshotAgent] = {}
        for name in system.topology.processes:
            controller = system.controller(name)
            agent = SnapshotAgent(controller, self._agent_complete)
            controller.install(agent)
            self.agents[name] = agent

    def _agent_complete(self, agent: SnapshotAgent) -> None:
        self._complete_agents.add(agent.controller.name)
        observe = getattr(self.system, "observe", None)
        if observe is not None and self.is_complete():
            snapshot_id = agent.snapshot_id
            records = []
            for name in self.system.user_process_names:
                state = self.agents[name].recorded_state
                if state is None or self.agents[name].snapshot_id != snapshot_id:
                    continue
                records.append(
                    (name, state.time, state.vector, state.vector_index)
                )
            observe.note_snapshot_complete(snapshot_id, records)

    def initiate(self, processes: Optional[List[ProcessId]] = None) -> int:
        """Trigger one snapshot generation from the given initiator(s)."""
        snapshot_id = self._next_id
        self._next_id += 1
        self._complete_agents = set()
        observe = getattr(self.system, "observe", None)
        if observe is not None:
            observe.note_snapshot_initiated(snapshot_id)
        initiators = processes or [self.system.user_process_names[0]]
        for name in initiators:
            if self.system.controller(name).never_halts:
                raise SnapshotError(f"{name} is a debugger process; it does not record")
            self.agents[name].initiate(snapshot_id)
        return snapshot_id

    def is_complete(self) -> bool:
        participants = set(self.system.user_process_names)
        return participants <= self._complete_agents

    def collect(self) -> GlobalState:
        """Assemble ``S_r`` once every participating agent finished."""
        if not self.is_complete():
            missing = set(self.system.user_process_names) - self._complete_agents
            raise SnapshotError(f"snapshot incomplete; waiting on {sorted(missing)}")
        processes: Dict[ProcessId, ProcessStateSnapshot] = {}
        channels: Dict[ChannelId, ChannelState] = {}
        generation = 0
        for name in self.system.user_process_names:
            agent = self.agents[name]
            assert agent.recorded_state is not None
            processes[name] = agent.recorded_state
            channels.update(agent.channel_states())
            generation = max(generation, agent.snapshot_id)
        return GlobalState(
            origin="snapshot",
            processes=processes,
            channels=channels,
            generation=generation,
            meta={"clock_frame": list(self.system.clock_frame.order)},
        )
