"""Chandy & Lamport global snapshots (§2.1) — the baseline substrate."""

from repro.snapshot.chandy_lamport import (
    SnapshotAgent,
    SnapshotCoordinator,
    SnapshotMarker,
)
from repro.snapshot.monitor import MonitorRecord, SnapshotMonitor, terminated
from repro.snapshot.state import ChannelState, GlobalState

__all__ = [
    "ChannelState",
    "GlobalState",
    "MonitorRecord",
    "SnapshotAgent",
    "SnapshotCoordinator",
    "SnapshotMarker",
    "SnapshotMonitor",
    "terminated",
]
