"""The paper's Halting Algorithm (§2.2): consistent distributed halt."""

from repro.halting.algorithm import HaltingAgent, HaltingCoordinator
from repro.halting.markers import HaltMarker
from repro.halting.restore import restore

__all__ = ["HaltMarker", "HaltingAgent", "HaltingCoordinator", "restore"]
