"""Restoration: resurrect a system from a captured global state.

A halted global state ``S_h`` (or a recorded snapshot ``S_r`` — they are
the same thing, Theorem 2) contains everything a consistent restart needs:
every process's state and every channel's undelivered messages. This module
builds a *fresh* system whose execution continues from that cut — the
debugging payoff usually called time travel: halt at a breakpoint, save the
state, and re-run the suffix as many times as you like, under different
seeds if you want different continuations.

What restoration preserves exactly:

* process states, logical clocks, event counters (the new incarnation's
  events continue the old causal history);
* channel contents: every undelivered message is re-injected into its
  channel and will be delivered, FIFO, before anything the restored
  processes send on that channel.

What it cannot preserve, by the nature of a *global state*:

* pending local timers — they are scheduler artifacts, not state. Processes
  that rely on timers re-arm them in ``Process.on_restore`` from their own
  state (see :class:`repro.workloads.bank.BankBranch` for the pattern);
* the exact future interleaving — a restored run draws fresh latencies from
  its own seed, so it is *a* valid continuation, not a replay. For replay,
  re-run the original seed from the start (:mod:`repro.trace.replay`).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from repro.network.latency import LatencyModel
from repro.network.message import MessageKind
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.snapshot.state import GlobalState
from repro.util.errors import HaltingError
from repro.util.ids import ChannelId, ProcessId


def restore(
    state: GlobalState,
    topology: Topology,
    processes: Mapping[ProcessId, Process],
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    channel_latencies: Optional[Mapping[ChannelId, LatencyModel]] = None,
) -> System:
    """Build a new system continuing from ``state``.

    ``topology`` and ``processes`` describe the same program shape the
    state was captured from (fresh ``Process`` instances — behaviour lives
    in code, state lives in the capture). The returned system is *not yet
    started*; install whatever debugging machinery you want first, then
    ``run()`` as usual.
    """
    missing = set(state.processes) - set(topology.processes)
    if missing:
        raise HaltingError(
            f"state contains processes not in the topology: {sorted(missing)}"
        )
    incomplete = [
        str(channel)
        for channel, channel_state in state.channels.items()
        if channel_state.messages and not channel_state.complete
    ]
    if incomplete:
        raise HaltingError(
            "cannot restore from indeterminable channel states "
            f"({incomplete}); only marker-delimited captures (S_h/S_r) are "
            "complete — this is E9's point about naive halting"
        )

    system = System(
        topology,
        processes,
        seed=seed,
        latency=latency,
        channel_latencies=channel_latencies,
    )

    project = _frame_projection(state, system)
    for name, snapshot in state.processes.items():
        if project is not None:
            snapshot = dataclasses.replace(
                snapshot,
                vector=project(snapshot.vector),
                vector_index=system.clock_frame.index_of(name),
            )
        system.controller(name).preload(snapshot)

    # Re-inject undelivered messages. They enter the channels before the
    # system starts, so FIFO puts them ahead of anything the restored
    # processes send — exactly the "pending messages" semantics of S_h.
    for channel_id, channel_state in state.channels.items():
        channel = system.channel(channel_id)
        if channel is None:
            raise HaltingError(f"state references unknown channel {channel_id}")
        for message in channel_state.messages:
            if project is not None and message.vector:
                message = dataclasses.replace(
                    message, vector=project(message.vector)
                )
            channel.send(MessageKind.USER, message)

    return system


def _frame_projection(state: GlobalState, system: System):
    """Map captured vectors onto the new system's clock frame.

    Captures taken with extra instrumentation processes attached (the
    debugger ``d``) carry wider vectors; the capture records its component
    order in ``meta["clock_frame"]``, letting us re-index by process name.
    Components of processes absent from the new system are dropped — their
    knowledge is control-plane history that no longer exists.
    """
    new_order = system.clock_frame.order
    arities = {len(s.vector) for s in state.processes.values() if s.vector}
    if not arities or arities == {len(new_order)}:
        old_order = state.meta.get("clock_frame")
        if old_order is None or tuple(old_order) == new_order:
            return None  # frames already agree
    old_order = state.meta.get("clock_frame")
    if old_order is None:
        raise HaltingError(
            "state vectors do not match the new topology and the capture "
            "carries no clock_frame metadata to project from"
        )
    old_index = {name: i for i, name in enumerate(old_order)}
    missing = [name for name in new_order if name not in old_index]
    if missing:
        raise HaltingError(
            f"capture's clock frame lacks processes {missing}; cannot project"
        )

    def project(vector):
        return tuple(vector[old_index[name]] for name in new_order)

    return project
