"""The paper's Halting Algorithm (§2.2.1), transcribed rule for rule.

    Marker-Sending Rule for a Process p.
        Increment last_halt_id;
        Halt Routine (p)

    Marker-Receiving Rule for a Process q.
        On receiving a halt marker along a channel c:
        Compare the halt_id with its last_halt_id;
        if halt_id is greater than last_halt_id then
            Update last_halt_id;
            Halt Routine (q);
        else
            Ignore;

    Halt Routine (x):
        For each channel c, incident on and directed away from x, send a
        halt marker with a halt_id equal to the last_halt_id along c;
        Halt;

The structure mirrors :mod:`repro.snapshot.chandy_lamport` deliberately —
Lemma 2.1's proof is "the Halting Algorithm is structurally identical to the
C&L Algorithm; each process halts at the instant it would record its state."

Where C&L *records* incoming-channel contents after the record point, a
halted process simply stops consuming them, so the same messages accumulate
in the controller's halt buffers — that is Lemma 2.2 made mechanical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.halting.markers import HaltMarker
from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import HaltingError
from repro.util.ids import ChannelId, ProcessId


class HaltingAgent(ControlPlugin):
    """Per-process side of the Halting Algorithm."""

    kinds = frozenset({MessageKind.HALT_MARKER})

    def __init__(self, controller: ProcessController,
                 on_halted: Optional[Callable[["HaltingAgent"], None]] = None) -> None:
        self.attach(controller)
        self._notify_halted = on_halted
        #: "Each process also keeps track of the latest halt_id received as
        #: last_halt_id whose value is initially set to zero."
        self.last_halt_id = 0
        #: The marker path as received when this process halted; our own
        #: name appended = the path we forwarded (§2.2.4).
        self.halted_via: Optional[HaltMarker] = None

    def notify_on_halt(
        self, callback: Optional[Callable[["HaltingAgent"], None]]
    ) -> None:
        """Register (or clear) the halted callback after construction.

        Observation scaffolding only — coordinators and the schedule
        checker use it to record the global halting order; the algorithm
        itself never reads it.
        """
        self._notify_halted = callback

    # -- Marker-Sending Rule (spontaneous initiation) -------------------------

    def initiate(self, halt_id: Optional[int] = None) -> None:
        """Spontaneously decide to halt (e.g. a breakpoint fired here)."""
        if self.controller.halted:
            raise HaltingError(
                f"{self.controller.name} cannot initiate a halt while halted"
            )
        if halt_id is None:
            halt_id = self.last_halt_id + 1
        if halt_id <= self.last_halt_id:
            raise HaltingError(
                f"halt_id must increase: {halt_id} <= {self.last_halt_id}"
            )
        self.last_halt_id = halt_id
        self._halt_routine(HaltMarker(halt_id=halt_id))

    # -- Marker-Receiving Rule --------------------------------------------------

    def on_control(self, envelope: Envelope) -> None:
        marker = envelope.payload
        assert isinstance(marker, HaltMarker)
        if marker.halt_id > self.last_halt_id:
            self.last_halt_id = marker.halt_id
            if self.controller.never_halts:
                # §2.2.3: "the debugger process d never really halts" — it
                # still relays markers so it cannot partition the marker
                # flood (and it is how d's own initiation reaches everyone).
                self._forward_markers(marker)
                return
            self._halt_routine(marker)
            # The channel that delivered the halting marker is drained too
            # (Lemma 2.2): its sender halted right after sending it, and
            # FIFO puts every earlier message ahead of it. On the DES
            # backend d's direct marker usually wins the race and this is
            # moot; over real sockets a user-channel marker can trigger
            # the halt, and forgetting to close that channel would leave
            # the assembled global state incomplete forever.
            self.controller.note_channel_closed(envelope.channel)
        else:
            # Ignore. But a same-generation marker arriving after we halted
            # proves that channel is drained: its sender halted right after
            # sending it, so nothing else can be in flight behind it.
            if (
                self.controller.halted
                and marker.halt_id == self.last_halt_id
            ):
                self.controller.note_channel_closed(envelope.channel)

    # -- Halt Routine ----------------------------------------------------------------

    def _halt_routine(self, marker: HaltMarker) -> None:
        self.halted_via = marker
        self._forward_markers(marker)
        if not self.controller.never_halts:
            meta = dict(
                halt_id=self.last_halt_id,
                halt_path=list(marker.extended_by(self.controller.name).path),
            )
            if self.controller.halted:
                # A newer-generation marker reached a process still frozen
                # at an older one: its notification or its resume was lost
                # (a partition ate it) and the survivors moved on. Its
                # frozen state IS its state for the new cut — it has run
                # nothing since — so adopt the generation and re-notify
                # instead of halting twice.
                self.controller.rehalt(**meta)
            else:
                self.controller.halt(**meta)
            if self._notify_halted is not None:
                self._notify_halted(self)

    def _forward_markers(self, marker: HaltMarker) -> None:
        forwarded = marker.extended_by(self.controller.name)
        for channel_id in self.controller.outgoing_channels():
            self.controller.send_control(
                channel_id, MessageKind.HALT_MARKER, forwarded
            )


class HaltingCoordinator:
    """Harness-side driver for the *basic* algorithm (no debugger process).

    Installs a :class:`HaltingAgent` on every process, lets any process(es)
    initiate, and assembles the halted global state ``S_h`` after the system
    quiesces. For the paper's full debugger model use
    :class:`repro.debugger.session.DebugSession`, which layers commands,
    breakpoints, and resume on top of these same agents.
    """

    def __init__(
        self,
        system: System,
        agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    ) -> None:
        #: ``agent_factory`` swaps the per-process agent implementation —
        #: the schedule checker (:mod:`repro.check`) injects deliberately
        #: broken agents this way to prove its invariants can fail.
        factory = agent_factory or HaltingAgent
        self.system = system
        self.halt_order: List[ProcessId] = []
        self.agents: Dict[ProcessId, HaltingAgent] = {}
        for name in system.topology.processes:
            controller = system.controller(name)
            agent = factory(controller, self._agent_halted)
            controller.install(agent)
            self.agents[name] = agent

    def _agent_halted(self, agent: HaltingAgent) -> None:
        self.halt_order.append(agent.controller.name)

    def initiate(self, processes: Optional[List[ProcessId]] = None,
                 halt_id: Optional[int] = None) -> int:
        """Spontaneous halt initiation at one or more processes."""
        initiators = processes or [self.system.user_process_names[0]]
        first_agent = self.agents[initiators[0]]
        if halt_id is None:
            halt_id = first_agent.last_halt_id + 1
        for name in initiators:
            agent = self.agents[name]
            if not agent.controller.halted:
                agent.initiate(halt_id)
        return halt_id

    def all_halted(self) -> bool:
        return self.system.all_user_processes_halted()

    def unhalted(self) -> Tuple[ProcessId, ...]:
        """Processes still running — non-empty on non-strongly-connected
        topologies, which is exactly the §2.2.2 failure (experiment E3)."""
        return tuple(
            name for name in self.system.user_process_names
            if not self.system.controller(name).halted
        )

    def collect(self, require_all: bool = True) -> GlobalState:
        """Assemble ``S_h`` from the frozen controllers.

        Call after the kernel quiesced (all in-flight messages delivered or
        buffered). With ``require_all=False`` a partial state is returned —
        used to *show* the basic algorithm's failure on acyclic topologies.
        """
        if require_all and not self.all_halted():
            raise HaltingError(
                f"not all processes halted: {self.unhalted()} still running "
                "(on a non-strongly-connected topology this is the paper's "
                "§2.2.2 problem — use the extended debugger model)"
            )
        processes: Dict[ProcessId, ProcessStateSnapshot] = {}
        channels: Dict[ChannelId, ChannelState] = {}
        generation = 0
        for name in self.system.user_process_names:
            controller = self.system.controller(name)
            if controller.halted_snapshot is None:
                continue
            processes[name] = controller.halted_snapshot
            generation = max(generation, self.agents[name].last_halt_id)
            for channel_id, envelopes in controller.halt_buffers.items():
                channels[channel_id] = ChannelState(
                    channel=channel_id,
                    messages=tuple(env.payload for env in envelopes),
                    complete=channel_id in controller.closed_channels,
                )
        return GlobalState(
            origin="halting",
            processes=processes,
            channels=channels,
            generation=generation,
            meta={
                "halt_order": list(self.halt_order),
                # Component order of every vector in this state — lets
                # restoration project clocks onto a differently-framed
                # system (e.g. captured with a debugger process attached).
                "clock_frame": list(self.system.clock_frame.order),
            },
        )

    def halting_order_report(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """§2.2.4: per process, the already-halted path its marker carried."""
        report = {}
        for name, agent in self.agents.items():
            if agent.halted_via is not None and not agent.controller.never_halts:
                report[name] = agent.halted_via.path
        return report

    def resume_all(self) -> None:
        """Un-freeze every halted process (deterministic name order)."""
        for name in self.system.user_process_names:
            controller = self.system.controller(name)
            if controller.halted:
                controller.resume()
        self.halt_order = []
