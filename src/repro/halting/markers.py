"""Halt markers (§2.2.1) with the §2.2.4 halting-order extension.

A halt marker carries:

* ``halt_id`` — the sequence number that lets a process "distinguish an old
  halt marker (to ignore) from a new halt marker";
* ``path`` — §2.2.4: "each process will append its name to the halt marker
  before sending the marker to the next process(es). The halt marker that a
  process receives then describes which processes have already been halted."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.ids import ProcessId


@dataclass(frozen=True)
class HaltMarker:
    """One halt marker in flight."""

    halt_id: int
    #: Names of the already-halted processes this marker travelled through,
    #: in halting order. The initiator is path[0].
    path: Tuple[ProcessId, ...] = ()

    def extended_by(self, process: ProcessId) -> "HaltMarker":
        """The marker this process forwards: same id, own name appended."""
        return HaltMarker(halt_id=self.halt_id, path=self.path + (process,))

    def __str__(self) -> str:
        return f"halt#{self.halt_id}[{' -> '.join(self.path) or 'fresh'}]"
