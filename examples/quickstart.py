#!/usr/bin/env python3
"""Quickstart: debug a distributed bank with a consistent breakpoint.

Four branches wire money to each other. We attach the paper's debugger
(extended model, §2.2.3), set a distributed breakpoint, and — when it fires
— the Halting Algorithm (§2.2) freezes every branch in a *consistent*
global state: the balances plus the wires caught in flight always sum to
the initial total. Try doing that by stopping processes one at a time.

Run:  python examples/quickstart.py [trace.json]

With a path argument, the halt is also exported as a Chrome trace_event
file (open in Perfetto / chrome://tracing) via the observability layer.
"""

import sys

from repro.core.api import attach_debugger
from repro.observe import Observability
from repro.workloads import bank


def main() -> None:
    topology, processes = bank.build(n=4, transfers=30)
    session = attach_debugger(topology, processes, seed=42,
                              observe=Observability())

    # Halt the whole computation the moment branch0's balance drops below
    # 600 — a Simple Predicate on one process's state (§3.2).
    session.set_breakpoint("state(balance<600)@branch0")

    outcome = session.run()
    if not outcome.stopped:
        print("program finished before the breakpoint fired")
        return

    hit = outcome.hits[0]
    print(f"breakpoint fired at {hit.process} (t={hit.time:.2f})")
    print(session.describe_halt())
    print()

    state = session.global_state()
    print(state.describe())
    print()

    balances = {
        name: snap.state["balance"] for name, snap in state.processes.items()
    }
    in_flight = [
        (str(channel), [m.payload for m in channel_state.messages])
        for channel, channel_state in state.channels.items()
        if channel_state.messages
    ]
    total = bank.total_money(state)
    print(f"balances        : {balances}")
    print(f"wires in flight : {in_flight}")
    print(f"audit           : {total} == {4 * bank.INITIAL_BALANCE}  "
          f"({'CONSISTENT' if total == 4 * bank.INITIAL_BALANCE else 'LOST MONEY!'})")

    # The observability layer watched the whole thing: its live counters
    # agree with the offline analysis exactly (same counters, two readers).
    from repro.analysis import message_overhead

    sent = session.observe.metrics.snapshot()["messages_sent_total"]
    by_kind = {dict(labels)["kind"]: int(v) for labels, v in sent.items()}
    overhead = message_overhead(session.system)
    assert by_kind == dict(overhead.by_kind)
    print(f"live counters   : {by_kind} (== analysis.message_overhead)")
    if len(sys.argv) > 1:
        document = session.chrome_trace(sys.argv[1])
        print(f"chrome trace    : {len(document['traceEvents'])} events "
              f"-> {sys.argv[1]}")

    # The program is frozen, not dead: resume and let it finish.
    session.resume()
    final = session.run()
    print(f"\nresumed; program finished at t={final.time:.2f} "
          f"(stopped again: {final.stopped})")


if __name__ == "__main__":
    main()
