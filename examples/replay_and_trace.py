#!/usr/bin/env python3
"""Deterministic replay and trace files.

The DES runtime is deterministic, so a debugging session can be torn down
and replayed exactly — the foundation that lets experiment E2 compare a
halted run against its snapshot twin. This example records a run to a JSON
trace, replays the configuration, verifies bit-for-bit event equality, and
shows what a divergence report looks like when the program *does* change.

Run:  python examples/replay_and_trace.py
"""

import io

from repro.core.api import build_system
from repro.trace import compare_logs, dump_log, load_log
from repro.workloads import chatter


def run_once(seed: int, budget: int = 20):
    topology, processes = chatter.build(n=4, budget=budget, seed=seed)
    system = build_system(topology, processes, seed=seed)
    system.run_to_quiescence()
    return system


def main() -> None:
    # Record.
    system = run_once(seed=5)
    buffer = io.StringIO()
    dump_log(system.log, buffer, meta={"workload": "chatter", "seed": 5})
    trace_bytes = buffer.getvalue()
    print(f"recorded {len(system.log)} events "
          f"({len(trace_bytes)} bytes of JSON trace)")

    # Reload and sanity-check the serialized trace.
    reloaded = load_log(io.StringIO(trace_bytes))
    assert len(reloaded) == len(system.log)
    print(f"reloaded trace: {len(reloaded)} events, "
          f"last event {reloaded[len(reloaded)-1]!r}")

    # Replay: same configuration, identical history.
    replay = run_once(seed=5)
    divergence = compare_logs(system.log, replay.log)
    print(f"replay with same seed: "
          f"{'IDENTICAL' if divergence is None else 'diverged?!'}")

    # A different seed is a different execution — show the diff report.
    other = run_once(seed=6)
    divergence = compare_logs(system.log, other.log)
    assert divergence is not None
    print("\nreplay with different seed diverges, as it must:")
    print(f"  {divergence}")


if __name__ == "__main__":
    main()
