#!/usr/bin/env python3
"""Time travel: halt at a breakpoint, save S_h, replay the suffix.

Because the halted state S_h is a complete consistent global state
(process states + every undelivered message — Theorem 2), it is also a
*restart point*. We halt a bank at a breakpoint, serialize the state to
JSON, then resurrect it twice under different seeds: two different — but
both valid — futures of the same frozen moment, each conserving every
dollar.

Run:  python examples/time_travel.py
"""

import io

from repro.core.api import attach_debugger
from repro.halting import restore
from repro.network.latency import UniformLatency
from repro.trace import dump_state, load_state
from repro.workloads import bank


def main() -> None:
    topology, processes = bank.build(n=4, transfers=30)
    session = attach_debugger(topology, processes, seed=7)
    session.set_breakpoint("state(transfers_made>=10)@branch2")
    outcome = session.run()
    assert outcome.stopped
    state = session.global_state()
    print(f"halted at t={outcome.time:.2f}; audit: "
          f"{bank.total_money(state)} == {4 * bank.INITIAL_BALANCE}")
    print(f"frozen progress: "
          f"{[state.processes[f'branch{i}'].state['transfers_made'] for i in range(4)]}"
          " transfers made")

    # Persist the moment.
    buffer = io.StringIO()
    dump_state(state, buffer)
    print(f"saved S_h: {len(buffer.getvalue())} bytes of JSON")

    # Two alternate futures from the same instant.
    for seed in (100, 200):
        buffer.seek(0)
        reloaded = load_state(buffer)
        topo, fresh = bank.build(n=4, transfers=30)
        system = restore(reloaded, topo, fresh, seed=seed,
                         latency=UniformLatency(0.4, 1.6))
        system.run_to_quiescence()
        balances = {
            name: system.state_of(name)["balance"]
            for name in system.user_process_names
        }
        total = bank.total_money(balances)
        print(f"\nfuture with seed {seed}:")
        print(f"  final balances {balances}")
        print(f"  audit: {total} == {4 * bank.INITIAL_BALANCE} "
              f"({'OK' if total == 4 * bank.INITIAL_BALANCE else 'LOST MONEY'})")
        print(f"  everyone finished: "
              f"{[system.state_of(f'branch{i}')['transfers_made'] for i in range(4)]}")


if __name__ == "__main__":
    main()
