#!/usr/bin/env python3
"""Observability tour: watch the debugger debug, on a wire that drops frames.

The paper's algorithms halt a distributed bank at a consistent cut; the
``repro.observe`` layer records what that took — per-kind message
counters that agree exactly with the offline overhead analysis, trace
spans for the halt's convergence and every retransmission fight the
reliable layer won, a validated Chrome trace you can open in Perfetto,
and §2.2.4's halting order rendered as prose.

Run:  python examples/observability_tour.py
"""

import os
import tempfile

from repro.analysis import message_overhead
from repro.debugger import DebugSession
from repro.faults import FaultPlan
from repro.network.latency import UniformLatency
from repro.observe import Observability, validate_chrome_trace
from repro.workloads import bank


def main() -> None:
    observe = Observability()
    topology, processes = bank.build(n=4, transfers=30)
    session = DebugSession(
        topology, processes, seed=7,
        latency=UniformLatency(0.4, 1.6),
        fault_plan=FaultPlan.lossy(0.15, seed=7),   # 15% frame loss
        reliable=True,                               # ...fought off
        observe=observe,
    )
    session.set_breakpoint("state(balance<600)@branch0")

    outcome = session.run()
    assert outcome.stopped, "the breakpoint never fired?"
    print(f"halted at t={outcome.time:.2f} after "
          f"{outcome.events_executed} kernel events\n")

    # -- 1. the halt narrative: §2.2.4 as prose -----------------------------
    print("=" * 72)
    print(session.halt_narrative())

    # -- 2. live counters == offline analysis, exactly ----------------------
    print("=" * 72)
    sent = observe.metrics.snapshot()["messages_sent_total"]
    by_kind = {dict(labels)["kind"]: int(v) for labels, v in sent.items()}
    overhead = message_overhead(session.system)
    assert by_kind == dict(overhead.by_kind)
    print(f"messages by kind  : {by_kind}")
    print(f"control/user ratio: {overhead.control_per_user:.3f} "
          "(registry and message_overhead read the same counters)")

    # -- 3. what the wire cost ----------------------------------------------
    snap = observe.metrics.snapshot()
    frames_eaten = sum(int(v) for v in
                       snap["channel_frames_dropped_total"].values())
    retransmits = sum(int(v) for v in
                      snap["channel_retransmits_total"].values())
    lost = sum(int(v) for v in
               snap.get("channel_messages_dropped_total", {}).values())
    episodes = observe.tracer.spans("retransmission")
    print(f"wire ate          : {frames_eaten} frame copies")
    print(f"retransmitted     : {retransmits} frames "
          f"({len(episodes)} traced episodes)")
    print(f"permanently lost  : {lost} messages (the reliable layer won)")

    # -- 4. metrics dump, Prometheus text format ----------------------------
    print("=" * 72)
    text = session.metrics_text()
    excerpt = [line for line in text.splitlines()
               if line.startswith(("halt_latency", "# HELP halt_latency"))]
    print("\n".join(excerpt))
    print(f"... ({len(text.splitlines())} lines total from metrics_text())")

    # -- 5. a validated Chrome trace ----------------------------------------
    print("=" * 72)
    path = os.path.join(tempfile.mkdtemp(prefix="repro_trace_"),
                        "halt_trace.json")
    document = session.chrome_trace(path)
    validate_chrome_trace(document)   # chrome_trace() validated already; show it
    by_name: dict = {}
    for event in document["traceEvents"]:
        if event["ph"] != "M":
            by_name[event["name"]] = by_name.get(event["name"], 0) + 1
    print(f"trace written     : {path}")
    print(f"span events       : {by_name}")
    print("open it in Perfetto (ui.perfetto.dev) or chrome://tracing")


if __name__ == "__main__":
    main()
