#!/usr/bin/env python3
"""Continuous invariant auditing with periodic snapshots (C&L's use case).

A monitor snapshots the running bank every few time units: each generation
is a consistent global state, so the audit (balances + wires in flight ==
total) must pass at every single one — no locks, no pausing the program.
The same loop detects the stable property "terminated" exactly one
snapshot after the program really quiesces.

Run:  python examples/invariant_monitoring.py
"""

from repro.core.api import build_system
from repro.snapshot import SnapshotMonitor, terminated
from repro.workloads import bank

TOTAL = 4 * bank.INITIAL_BALANCE


def main() -> None:
    topology, processes = bank.build(n=4, transfers=25)
    system = build_system(topology, processes, seed=13)

    monitor = SnapshotMonitor(
        system,
        interval=4.0,
        invariants={
            "conservation": lambda state: bank.total_money(state) == TOTAL,
            "no_negative_balances": lambda state: all(
                snap.state["balance"] >= 0 for snap in state.processes.values()
            ),
        },
        stable=terminated,
    )
    records = monitor.run()

    print(f"{'gen':>4} {'t':>8} {'balances':>34} {'in-flight':>10} "
          f"{'audit':>6} {'done?':>6}")
    for record in records:
        balances = [
            record.state.processes[f"branch{i}"].state["balance"]
            for i in range(4)
        ]
        in_flight = record.state.total_pending_messages()
        audit = "OK" if not record.invariant_failures else "FAIL"
        done = "yes" if record.stable_detected else ""
        print(f"{record.generation:>4} {record.completed_at:>8.2f} "
              f"{str(balances):>34} {in_flight:>10} {audit:>6} {done:>6}")

    print(f"\n{len(records)} generations, "
          f"{len(monitor.invariant_failures())} invariant failures")
    print(f"termination confirmed at t={monitor.detected_at:.2f} "
          "(one snapshot after the last wire landed)")


if __name__ == "__main__":
    main()
