#!/usr/bin/env python3
"""Linked Predicates and the SCP partition on a real protocol (§3, Fig. 4).

Three processes run Ricart-Agrawala mutual exclusion. We:

1. set a *Linked Predicate* breakpoint — "halt when m0 enters its critical
   section and then, causally later, m2 enters its own" — and show the
   satisfaction trail the detection algorithm (§3.6) produces;
2. compute the SCP set of the conjunction ``cs_enter@m0 ∧ cs_enter@m1``
   from the recorded execution and partition it into ordered pairs
   (LP-detectable) and unordered pairs (only gather-detectable), the
   distinction Figure 4 illustrates.

Run:  python examples/mutex_linked_predicates.py
"""

from repro.breakpoints import SimplePredicate, compute_scp
from repro.core.api import attach_debugger
from repro.events.event import EventKind
from repro.workloads import mutex


def main() -> None:
    topology, processes = mutex.build(n=3, entries=4)
    session = attach_debugger(topology, processes, seed=11)

    lp_text = "mark(cs_enter)@m0 -> mark(cs_enter)@m2"
    print(f"breakpoint: {lp_text}")
    session.set_breakpoint(lp_text)

    outcome = session.run()
    assert outcome.stopped, "breakpoint never fired"
    hit = outcome.hits[0]
    print("satisfaction trail (each stage causally after the previous):")
    for stage_hit in hit.marker.trail:
        print(f"  {stage_hit}")
    print()
    print(session.describe_halt())
    print()

    # Mutual exclusion held right up to the halt: check from the log that
    # critical sections never overlapped causally.
    log = session.system.log
    sp0 = SimplePredicate(process="m0", kind=EventKind.STATE_CHANGE, detail="cs_enter")
    sp1 = SimplePredicate(process="m1", kind=EventKind.STATE_CHANGE, detail="cs_enter")
    scp = compute_scp(log, sp0, sp1)
    print(f"SCP analysis of  cs_enter@m0 ∧ cs_enter@m1  over this run:")
    print(f"  {scp.summary()}")
    for pair in scp.ordered[:4]:
        print(f"  ordered   : #{pair.first.eid} {pair.direction} #{pair.second.eid}")
    for pair in scp.unordered[:4]:
        print(f"  unordered : #{pair.first.eid} || #{pair.second.eid} "
              "(no halting-in-time detection possible, §3.5)")
    if not scp.unordered:
        print("  (no unordered pairs in this run — mutual exclusion orders "
              "most CS entries through the reply protocol)")


if __name__ == "__main__":
    main()
