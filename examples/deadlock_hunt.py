#!/usr/bin/env python3
"""Deadlock hunting: halt a quiet system and read the waits-for cycle.

Five philosophers all grab their left fork first with identical think
times — the textbook deadlock. No message ever errors, nothing crashes;
the system simply goes quiet. This is the debugging scenario where a
*consistent* freeze shines: halt everything, and the frozen states contain
a coherent waits-for graph (every "I'm waiting for fork_i" is matched by
that fork's "held by ph_j" from the same consistent cut).

Run:  python examples/deadlock_hunt.py
"""

from repro.core.api import attach_debugger
from repro.workloads import philosophers
from repro.workloads.philosophers import waits_for_cycle


def main() -> None:
    topology, processes = philosophers.build(
        n=5, meals=3, policy="left-first", think=1.0
    )
    session = attach_debugger(topology, processes, seed=0)

    # Let the program run; it deadlocks quietly (the run() returns without
    # a halt because no breakpoint fired — the program just stopped
    # making progress).
    outcome = session.run()
    assert not outcome.stopped
    print(f"program went quiet at t={outcome.time:.2f} with no one finished:")
    for i in range(5):
        print(f"  ph{i}: {session.inspect(f'ph{i}')}")

    # Freeze it consistently and autopsy.
    session.halt()
    outcome = session.run()
    assert outcome.stopped
    print("\n" + session.describe_halt())

    states = {
        name: session.inspect(name)
        for name in session.system.user_process_names
    }
    cycle = waits_for_cycle(states)
    print("\nwaits-for analysis of the frozen states:")
    if cycle is None:
        print("  no cycle (not a deadlock)")
        return
    pretty = " -> ".join(
        f"{p} (wants {states[p]['waiting_for']})" for p in cycle
    )
    print(f"  CYCLE: {pretty} -> {cycle[0]}")
    print("\neach philosopher holds its left fork and waits for its right —")
    print("the classic circular wait, extracted from one consistent cut.")

    # Contrast: the ordered-acquisition policy finishes.
    topology2, processes2 = philosophers.build(
        n=5, meals=3, policy="ordered", think=1.0
    )
    session2 = attach_debugger(topology2, processes2, seed=0)
    session2.run()
    meals = [session2.inspect(f"ph{i}")["meals"] for i in range(5)]
    print(f"\nsame run with ordered acquisition: meals = {meals} (no deadlock)")


if __name__ == "__main__":
    main()
