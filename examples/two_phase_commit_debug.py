#!/usr/bin/env python3
"""Debugging a wedged two-phase commit with the interactive CLI.

A participant silently drops its vote in round 3 and the (buggy,
timeout-less) coordinator waits forever. We drive the debugger's command
shell exactly as a person would: run, notice the quiet, halt, inspect the
coordinator, find the missing vote, check the culprit's event history.

Run:  python examples/two_phase_commit_debug.py
"""

from repro.core.api import attach_debugger
from repro.debugger.cli import PROMPT, DebuggerCLI
from repro.workloads import two_phase_commit


def main() -> None:
    topology, processes = two_phase_commit.build(
        n=3, rounds=5, silent_voter="part2", silent_round=3
    )
    session = attach_debugger(topology, processes, seed=1)
    cli = DebuggerCLI(session)

    script = [
        "# the protocol should do 5 rounds; watch the decisions",
        "break mark(decision)@coord ^5",
        "run",
        "# ...it never fired: the run went quiet. Freeze and autopsy.",
        "halt",
        "run",
        "processes",
        "inspect coord",
        "# round 3, phase 'collecting', votes missing part2 -> the culprit:",
        "inspect part2",
        "events part2 6",
        "order",
        "quit",
    ]
    for line in script:
        print(PROMPT + line)
        output = cli.execute(line)
        if output:
            print(output)
        print()

    coord = session.inspect("coord")
    missing = {f"part{i}" for i in range(3)} - set(coord["votes"])
    print(f"diagnosis: round {coord['round']} wedged in phase "
          f"{coord['phase']!r}; missing vote(s): {sorted(missing)} — and "
          "part2's event log shows the 'vote_swallowed' mark where the "
          "PREPARE was dropped.")


if __name__ == "__main__":
    main()
