#!/usr/bin/env python3
"""Figure 2 vs Figure 3: why the debugger process exists.

A producer feeds two pipeline stages feeding a consumer — an *acyclic*
channel graph. §2.2.2: if the consumer initiates a halt, no channel leads
upstream, so the producer can never receive a halt marker. The extended
model (§2.2.3) adds a debugger process with control channels to everyone,
making the graph strongly connected and the halt total.

Run:  python examples/pipeline_debugging.py
"""

from repro.core.api import attach_debugger, build_system
from repro.experiments import install_trigger
from repro.halting import HaltingCoordinator
from repro.workloads import pipeline


def basic_model_fails() -> None:
    print("=== basic model (Fig. 2): consumer initiates the halt ===")
    topology, processes = pipeline.build(stages=2, items=40)
    system = build_system(topology, processes, seed=7)
    halting = HaltingCoordinator(system)
    install_trigger(system, "consumer", 5, lambda: halting.initiate(["consumer"]))
    system.run_to_quiescence()

    for name in system.user_process_names:
        controller = system.controller(name)
        status = "HALTED" if controller.halted else "ran to completion"
        print(f"  {name:10s}: {status:18s} state={system.state_of(name)}")
    print(f"  -> unhalted processes: {list(halting.unhalted())} "
          "(markers cannot travel upstream)\n")


def extended_model_works() -> None:
    print("=== extended model (Fig. 3): same program, debugger attached ===")
    topology, processes = pipeline.build(stages=2, items=40)
    session = attach_debugger(topology, processes, seed=7)
    session.set_breakpoint("enter(consume)@consumer ^5")
    outcome = session.run()
    assert outcome.stopped

    print(session.describe_halt())
    print("\n  halting-order marker paths (§2.2.4):")
    for process, path in sorted(session.halt_paths().items()):
        chain = " -> ".join(path) if path else "(initiator)"
        print(f"    {process:10s} halted via {chain}")

    print("\n  frozen states:")
    for name in ("producer", "stage1", "stage2", "consumer"):
        print(f"    {name:10s}: {session.inspect(name)}")
    produced = session.inspect("producer")["produced"]
    print(f"\n  -> producer halted after {produced}/40 items: "
          "the whole pipe stopped near the breakpoint, not at exhaustion")


def main() -> None:
    basic_model_fails()
    extended_model_works()


if __name__ == "__main__":
    main()
