#!/usr/bin/env python3
"""EDL-style abstract events: monitoring without stopping (§4).

The paper notes its predicate detector can power an EDL abstract-event
recognizer (Bates & Wileden). Here a rumor spreads through a gossip
network while the debugger recognizes the abstract event "the rumor crossed
from the origin's side to g5" — repeatedly, without ever halting the
program. At the end we also demonstrate the §3.5 gather detector watching
an (unordered) conjunction.

Run:  python examples/edl_monitoring.py
"""

from repro.core.api import attach_debugger
from repro.debugger.edl import EDLRecognizer
from repro.workloads import gossip


def main() -> None:
    # The rumor starts after a few time units so the debugger's predicate
    # markers have time to arm stage 1 at the origin (arming is itself a
    # distributed act that costs one control-message latency).
    topology, processes = gossip.build(n=8, fanout=2, ttl=8, seed=3, delay=2.5)
    session = attach_debugger(topology, processes, seed=3)
    recognizer = EDLRecognizer(session)

    # Abstract events built from low-level marks (monitoring mode: the
    # program is never halted).
    recognizer.define("rumor_reaches_g5", "mark(rumor_heard)@g5")
    recognizer.define(
        "relay_chain", "mark(rumor_started)@g0 -> recv(rumor)@g2 -> recv(rumor)@g5"
    )

    # Also watch a conjunction with the gather detector: were g3 and g6
    # infected concurrently (no causal order between their first hearings)?
    watch_id = session.watch_conjunction(
        "mark(rumor_heard)@g3 & mark(rumor_heard)@g6"
    )

    outcome = session.run()  # runs to completion: nothing halts it
    assert not outcome.stopped
    recognizer.poll()

    print("abstract event occurrences:")
    for name in ("rumor_reaches_g5", "relay_chain"):
        print(f"  {name}: {recognizer.count(name)}")
        last = recognizer.last_occurrence(name)
        if last is not None:
            print(f"    last: {last}")

    detections = session.agent.detections_for(watch_id)
    print(f"\nunordered-conjunction detections (gather, §3.5): {len(detections)}")
    for detection in detections[:3]:
        where = ", ".join(f"{h.process}@t={h.time:.2f}" for h in detection.hits)
        print(f"  concurrent satisfactions [{where}] — "
              f"debugger learned {detection.detection_lag:.2f} time units late")
    if not detections:
        print("  (none this run: every pair of first-hearings was causally "
              "ordered through the gossip tree)")

    heard = [n for n in session.system.user_process_names
             if session.system.state_of(n)["heard"]]
    print(f"\nprogram ran unperturbed to completion; "
          f"{len(heard)}/{len(session.system.user_process_names)} processes heard the rumor")


if __name__ == "__main__":
    main()
