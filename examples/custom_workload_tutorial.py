#!/usr/bin/env python3
"""Tutorial companion: write your own workload and debug it.

This file is the runnable version of docs/TUTORIAL.md. It builds a tiny
request/reply service from scratch — a load balancer fanning requests to
two workers with an injected starvation bug — then uses the library to
find the bug: a breakpoint on the symptom, a consistent halt, and a
post-mortem of the frozen states.

Run:  python examples/custom_workload_tutorial.py
"""

from repro.core.api import attach_debugger
from repro.network.topology import Topology
from repro.runtime.process import Process


# -- 1. the program under debug ------------------------------------------------


class LoadBalancer(Process):
    """Fans incoming jobs to workers. Bug: the 'least-loaded' picker never
    updates its load table, so every job goes to worker0."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs

    def on_start(self, ctx):
        ctx.state["dispatched"] = 0
        ctx.state["completed"] = 0
        ctx.state["load"] = {"worker0": 0, "worker1": 0}
        ctx.set_timer("dispatch", 0.5)

    def on_timer(self, ctx, name, payload):
        if ctx.state["dispatched"] >= self.jobs:
            return
        with ctx.procedure("dispatch"):
            load = ctx.state["load"]
            target = min(load, key=load.get)  # least loaded...
            # BUG: forgot  load[target] += 1  (and to write it back),
            # so min() always returns 'worker0'.
            ctx.send(target, {"job": ctx.state["dispatched"]}, tag="job")
            ctx.state["dispatched"] = ctx.state["dispatched"] + 1
        ctx.set_timer("dispatch", 0.4)

    def on_message(self, ctx, src, payload):
        ctx.state["completed"] = ctx.state["completed"] + 1


class Worker(Process):
    def on_start(self, ctx):
        ctx.state["queue"] = 0
        ctx.state["done"] = 0

    def on_message(self, ctx, src, payload):
        ctx.state["queue"] = ctx.state["queue"] + 1
        ctx.set_timer(f"work{payload['job']}", 1.2, payload=src)

    def on_timer(self, ctx, name, payload):
        with ctx.procedure("finish_job"):
            ctx.state["queue"] = ctx.state["queue"] - 1
            ctx.state["done"] = ctx.state["done"] + 1
            ctx.send(payload, {"ack": name}, tag="ack")


def build():
    topo = Topology()
    for name in ("lb", "worker0", "worker1"):
        topo.add_process(name)
    topo.add_bidirectional("lb", "worker0")
    topo.add_bidirectional("lb", "worker1")
    return topo, {"lb": LoadBalancer(jobs=12), "worker0": Worker(),
                  "worker1": Worker()}


# -- 2. debugging it ----------------------------------------------------------------


def main() -> None:
    topology, processes = build()
    session = attach_debugger(topology, processes, seed=3)

    # The symptom: one worker's queue keeps growing.
    session.set_breakpoint("state(queue>=4)@worker0")

    outcome = session.run()
    assert outcome.stopped, "the symptom never appeared?"
    print(f"symptom hit at t={outcome.time:.2f}; everything frozen "
          "consistently:\n")
    for name in ("lb", "worker0", "worker1"):
        print(f"  {name:8s}: {session.inspect(name)}")

    state = session.global_state()
    in_flight = {
        str(channel): len(cs.messages)
        for channel, cs in state.channels.items() if cs.messages
    }
    print(f"\n  in flight: {in_flight}")

    # The frozen picture is the diagnosis: worker1 idle, worker0 drowning,
    # and the balancer's load table still all zeros — it never learned.
    lb = session.inspect("lb")
    assert lb["load"] == {"worker0": 0, "worker1": 0}
    assert session.inspect("worker1")["done"] == 0
    print("\ndiagnosis: lb.load never updated -> min() always picks "
          "worker0; worker1 has done nothing.")


if __name__ == "__main__":
    main()
