"""Snapshot-based deadlock detection: C&L stable properties in anger.

The philosophers deadlock quietly (no errors, no crashes). A periodic
snapshot monitor detects it as a stable property — waits-for cycle plus
empty channels — without ever pausing the program, and never reports it
while forks are still moving.
"""

import pytest

from repro.experiments import build_system
from repro.snapshot import SnapshotMonitor
from repro.workloads import philosophers
from repro.workloads.philosophers import deadlocked, waits_for_cycle


def test_monitor_detects_real_deadlock():
    topo, processes = philosophers.build(
        n=4, meals=3, policy="left-first", think=1.0
    )
    system = build_system(lambda: (topo, processes), 1)
    monitor = SnapshotMonitor(system, interval=3.0, stable=deadlocked)
    records = monitor.run(max_rounds=30)
    assert records[-1].stable_detected, "deadlock never detected"
    # Ground truth from the final direct states.
    states = {name: system.state_of(name) for name in system.user_process_names}
    cycle = waits_for_cycle(states)
    assert cycle is not None and len(cycle) == 4


def test_monitor_never_cries_wolf_on_ordered_policy():
    topo, processes = philosophers.build(
        n=4, meals=3, policy="ordered", think=1.0
    )
    system = build_system(lambda: (topo, processes), 1)
    monitor = SnapshotMonitor(system, interval=3.0, stable=deadlocked)
    records = monitor.run(max_rounds=30)
    assert not any(record.stable_detected for record in records)
    for i in range(4):
        assert system.state_of(f"ph{i}")["meals"] == 3


def test_detection_is_not_premature():
    """Before the deadlock completes (forks still being granted), snapshots
    must not report it: the waits-for data and channel contents come from
    one consistent cut, so a half-formed cycle with a grant in flight never
    counts."""
    topo, processes = philosophers.build(
        n=4, meals=3, policy="left-first", think=1.0
    )
    system = build_system(lambda: (topo, processes), 1)
    monitor = SnapshotMonitor(system, interval=0.6, stable=deadlocked)
    records = monitor.run(max_rounds=60)
    assert records[-1].stable_detected
    detection_time = records[-1].completed_at
    # Every earlier snapshot was honest.
    for record in records[:-1]:
        assert not record.stable_detected
    # The deadlock is real from detection onward: meals never changed after.
    assert all(
        system.state_of(f"ph{i}")["meals"] == 0 for i in range(4)
    )
    del detection_time
