"""The algorithms on the threaded backend: real nondeterminism (E1/E2 cousins).

Exact cross-run equality is impossible under OS scheduling, so these tests
assert what the theorems guarantee for *any* execution: halted cuts are
consistent, money is conserved, channels get closed by markers.
"""

import pytest

from repro.analysis import check_cut_consistency
from repro.halting import HaltingCoordinator
from repro.runtime.threaded import ThreadedSystem
from repro.snapshot import SnapshotCoordinator
from repro.workloads import bank, chatter


@pytest.fixture
def bank_system():
    topo, processes = bank.build(n=3, transfers=15, tick=0.6)
    system = ThreadedSystem(topo, processes, seed=1, time_scale=0.02)
    yield system
    system.shutdown()


def test_threaded_workload_runs_to_completion():
    topo, processes = chatter.build(n=4, budget=10, seed=2)
    system = ThreadedSystem(topo, processes, seed=2, time_scale=0.01)
    try:
        system.start()
        assert system.settle(timeout=30.0), "chatter did not quiesce"
        total_sent = sum(system.state_of(n)["sent"] for n in topo.processes)
        total_received = sum(system.state_of(n)["received"] for n in topo.processes)
        assert total_sent == 4 * 10
        assert total_received == total_sent
    finally:
        system.shutdown()


def test_threaded_halting_yields_consistent_cut(bank_system):
    system = bank_system
    halting = HaltingCoordinator(system)
    system.start()
    # Let the program make progress, then have branch0 spontaneously halt.
    assert system.run_until(
        lambda: system.state_of("branch0").get("transfers_made", 0) >= 3,
        timeout=30.0,
    )
    agent = halting.agents["branch0"]
    system.controller("branch0").defer(lambda: agent.initiate())
    assert system.run_until(system.all_user_processes_halted, timeout=30.0)
    assert system.settle(timeout=30.0)
    state = halting.collect()
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
    assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE
    # Marker discipline: every non-empty buffered channel was closed by the
    # halt marker travelling behind its contents.
    for channel_state in state.channels.values():
        assert channel_state.complete


def test_threaded_snapshot_is_consistent(bank_system):
    system = bank_system
    coordinator = SnapshotCoordinator(system)
    system.start()
    assert system.run_until(
        lambda: system.state_of("branch1").get("transfers_made", 0) >= 3,
        timeout=30.0,
    )
    system.controller("branch1").defer(lambda: coordinator.initiate(["branch1"]))
    assert system.run_until(coordinator.is_complete, timeout=30.0)
    state = coordinator.collect()
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
    assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE
    # The program was not halted: it runs on to completion afterwards.
    assert system.settle(timeout=30.0)
    assert all(
        system.state_of(n)["transfers_made"] == 15
        for n in system.user_process_names
    )
