"""Integration tests for the real-sockets backend.

Each user process is a genuine OS process; every channel — user and
debugger control alike — is a TCP connection. These tests drive the
paper's full debugger loop over that substrate: halt, inspect, collect a
consistent global state, resume; then the degraded loop: SIGKILL a member
mid-run and take the watchdog-bounded partial cut. Finally the shipped
CLI (``repro serve`` / ``repro attach``) is exercised end to end as a
user would, subprocesses and all.
"""

import json
import os
import re
import subprocess
import sys
import time

import pytest

# The real-sockets suite must not leak: every socket and child pipe is
# closed even on SIGKILL paths, enforced by failing on ResourceWarning.
pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

import repro
from repro.distributed.session import DistributedDebugSession
from repro.faults.plan import ChannelFaultSpec, FaultPlan
from repro.observe import Observability

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def ring_tokens(state) -> int:
    """Tokens visible in a token_ring global state: held + in flight."""
    held = sum(1 for snap in state.processes.values()
               if snap.state.get("holding"))
    in_flight = state.total_pending_messages()
    return held + in_flight


# -- the full loop: halt -> inspect -> collect -> resume -----------------------


def test_halt_collect_resume_over_real_sockets():
    with DistributedDebugSession("token_ring",
                                 {"n": 3, "max_hops": 100_000,
                                  "hold_time": 0.5}, seed=3) as session:
        time.sleep(0.6)
        report = session.halt_with_watchdog(timeout=15.0, probe_grace=3.0)
        assert report.complete, report.describe()
        assert set(report.halted) == {"p0", "p1", "p2"}

        # §2.2.4: every process halted via a marker path rooted at d.
        paths = session.halt_paths()
        assert set(paths) == {"p0", "p1", "p2"}
        assert all(path[0] == "d" for path in paths.values())

        # The cut is consistent in the program's own terms: exactly one
        # token exists, held or in flight, never zero or two.
        state = session.collect_global_state(timeout=15.0)
        assert set(state.processes) == {"p0", "p1", "p2"}
        assert all(cs.complete for cs in state.channels.values())
        assert ring_tokens(state) == 1
        assert state.meta["halt_order"]

        # Inspect agrees with the collected cut (the process is frozen, so
        # the two protocol round-trips must see the same state).
        inspected = session.inspect("p1", timeout=10.0)
        assert inspected == state.processes["p1"].state

        # Resume: the program picks up where it froze and makes progress.
        hops_before = max(s.state["last_value"]
                          for s in state.processes.values())
        assert session.resume(timeout=15.0)
        time.sleep(1.0)
        report2 = session.halt_with_watchdog(timeout=15.0, probe_grace=3.0)
        assert report2.complete
        assert report2.generation == report.generation + 1
        state2 = session.collect_global_state(timeout=15.0)
        hops_after = max(s.state["last_value"]
                         for s in state2.processes.values())
        assert hops_after > hops_before
        assert ring_tokens(state2) == 1


def test_sigkill_mid_run_degrades_to_partial_cut():
    with DistributedDebugSession("token_ring",
                                 {"n": 4, "max_hops": 100_000,
                                  "hold_time": 0.5}, seed=5) as session:
        time.sleep(0.6)
        session.kill("p2")
        deadline = time.time() + 5.0
        while session.alive("p2") and time.time() < deadline:
            time.sleep(0.05)
        assert not session.alive("p2")

        report = session.halt_with_watchdog(timeout=8.0, probe_grace=3.0)
        assert report.is_partial
        assert report.dead == ("p2",)
        assert set(report.halted) == {"p0", "p1", "p3"}
        assert "PARTIAL" in report.describe()

        # Partial collection covers survivors only; every included channel
        # is marker-delimited (restorable), none touches the corpse.
        state = session.collect_global_state(timeout=15.0, report=report)
        assert set(state.processes) == {"p0", "p1", "p3"}
        assert all(cs.complete for cs in state.channels.values())
        assert all("p2" not in (c.src, c.dst) for c in state.channels)


def test_fault_plan_crash_inside_the_child_process():
    """Crashes from a FaultPlan execute *inside* the child (os._exit), not
    as a parent-side kill — the wire simply goes quiet, like a real fault."""
    plan = FaultPlan(seed=2).with_crash("p1", after_events=5)
    with DistributedDebugSession("token_ring",
                                 {"n": 3, "max_hops": 100_000,
                                  "hold_time": 0.2}, seed=2,
                                 fault_plan=plan) as session:
        deadline = time.time() + 15.0
        while session.alive("p1") and time.time() < deadline:
            time.sleep(0.05)
        assert not session.alive("p1"), "fault plan never fired in the child"
        report = session.halt_with_watchdog(timeout=8.0, probe_grace=3.0)
        assert report.dead == ("p1",)
        assert set(report.halted) == {"p0", "p2"}


def test_frame_level_fault_injection_on_real_sockets():
    """Wire faults drop frames at the socket framing layer; TCP below is
    untouched. Loss is injected on one *user* channel only (this backend
    has no retransmission layer — §2.1 reliability comes from TCP, so a
    deliberately lossy wire really loses): the token is eventually eaten,
    yet the halt still converges because markers also ride d's clean
    control channels to every process."""
    plan = FaultPlan(seed=9, channels={"p0->p1": ChannelFaultSpec(loss=0.4)})
    with DistributedDebugSession("token_ring",
                                 {"n": 3, "max_hops": 100_000,
                                  "hold_time": 0.2}, seed=9,
                                 fault_plan=plan) as session:
        time.sleep(1.5)
        report = session.halt_with_watchdog(timeout=15.0, probe_grace=3.0)
        assert report.complete, report.describe()
    # After shutdown the children's stats frames are in: some frames were
    # really eaten at the framing layer somewhere in the cluster.
    dropped = sum(
        ch.get("frames_dropped", 0)
        for stats in session.host_stats.values()
        for ch in stats.get("channels", {}).values()
    )
    assert dropped > 0


# -- observability -------------------------------------------------------------


def test_observe_layer_sees_sockets_and_halt_spans():
    observe = Observability()
    with DistributedDebugSession("token_ring",
                                 {"n": 3, "max_hops": 100_000,
                                  "hold_time": 0.5}, seed=7,
                                 observe=observe) as session:
        time.sleep(0.6)
        report = session.halt_with_watchdog(timeout=15.0, probe_grace=3.0)
        assert report.complete
        # Per-socket counters: d's own control channels are real sockets
        # and their sends are in the registry, labelled by kind.
        sent = observe.metrics.snapshot()["messages_sent_total"]
        by_kind = {dict(labels)["kind"]: int(v) for labels, v in sent.items()}
        assert by_kind.get("halt_marker", 0) >= 3  # d -> every process
        # Halt-convergence spans were derived from the debugger's state.
        names = {s.name for s in observe.tracer.spans("halt")}
        assert {"halt.converge", "halt.process"} <= names
        spans = [s for s in observe.tracer.spans("halt")
                 if s.name == "halt.process"]
        assert {s.process for s in spans} == {"p0", "p1", "p2"}


def test_cluster_message_totals_include_children_after_shutdown():
    with DistributedDebugSession("token_ring",
                                 {"n": 3, "max_hops": 100_000,
                                  "hold_time": 0.2}, seed=1) as session:
        time.sleep(0.8)
        report = session.halt_with_watchdog(timeout=15.0, probe_grace=3.0)
        assert report.complete
    totals = session.cluster_message_totals()
    # d sent markers, every child forwarded markers, and the ring moved
    # real user messages — all of it visible in one ledger.
    assert totals.get("user", 0) > 0
    assert totals.get("halt_marker", 0) >= len(session.spec.channels) - 3


# -- the CLI, end to end -------------------------------------------------------


def test_serve_attach_cli_full_session(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    # port=0: the OS picks a free port and serve announces it on stdout —
    # race-free, unlike probing for a free port and hoping it stays free.
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "token_ring", "n=3",
         "max_hops=100000", "hold_time=0.5", "port=0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )

    def attach(*args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "attach", str(port), *args],
            env=env, capture_output=True, text=True, timeout=60,
        )

    try:
        port = None
        deadline = time.time() + 30.0
        while time.time() < deadline and port is None:
            line = serve.stdout.readline()
            if not line:
                break
            match = re.search(r"control port 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
        assert port, f"serve never announced its port: {serve.stderr.read()}"
        time.sleep(0.8)

        result = attach("status")
        assert result.returncode == 0, result.stderr
        status = json.loads(result.stdout)
        assert all(p["alive"] for p in status["processes"].values())

        result = attach("halt")
        assert result.returncode == 0, result.stderr
        halt = json.loads(result.stdout)
        assert halt["complete"] and set(halt["halted"]) == {"p0", "p1", "p2"}

        result = attach("inspect", "p0")
        assert result.returncode == 0
        assert "tokens_seen" in json.loads(result.stdout)["state"]

        result = attach("order")
        order = json.loads(result.stdout)
        assert all(path[0] == "d" for path in order["paths"].values())

        result = attach("resume")
        assert json.loads(result.stdout)["resumed"] is True

        result = attach("kill", "p1")
        assert json.loads(result.stdout)["killed"] == "p1"
        time.sleep(0.5)
        status = json.loads(attach("status").stdout)
        assert status["processes"]["p1"]["alive"] is False
        assert status["processes"]["p0"]["alive"] is True

        result = attach("halt")
        halt = json.loads(result.stdout)
        assert not halt["complete"] and halt["dead"] == ["p1"]

        result = attach("shutdown")
        assert json.loads(result.stdout)["stopping"] is True
        assert serve.wait(timeout=30) == 0
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait(timeout=10)
        serve.stdout.close()
        serve.stderr.close()
