"""Integration tests for seeded chaos campaigns (repro.recovery.chaos).

The claims under test are the campaign's own: every victim recovered
from the last consistent checkpoint, conservation intact at every
persisted cut, workload completed despite the faults, and a byte-
identical deterministic report core for the same seed.
"""

import json
import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

import repro
from repro.faults.plan import FaultPlan
from repro.observe import Observability
from repro.recovery.chaos import (
    DEFAULT_PARAMS,
    ChaosReport,
    default_campaign,
    run_campaign,
)

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def test_default_campaign_recovers_and_completes(tmp_path):
    report = run_campaign(seed=0, store_dir=str(tmp_path), max_wall=45.0)
    assert report.ok, (report.violation, report.completed)
    assert report.completed
    assert not report.violation
    # At least one crash fired and was recovered — from a persisted
    # checkpoint, not the initial state.
    assert report.recovery_victims == [("p1",)]
    assert len(report.restored_from) == 1
    assert report.restored_from[0] is not None
    assert report.checkpoints >= 1
    assert all(e.total_s > 0 for e in report.recoveries)


def test_same_seed_gives_byte_identical_core(tmp_path):
    a = run_campaign(seed=1, store_dir=str(tmp_path / "a"), max_wall=45.0)
    b = run_campaign(seed=1, store_dir=str(tmp_path / "b"), max_wall=45.0)
    assert a.ok and b.ok
    assert a.core_json() == b.core_json()
    # The core is the seed-determined part only; timing fields live in
    # to_dict() but never in the core.
    core = json.loads(a.core_json())
    assert set(core) == {
        "workload", "params", "seed", "plan", "completed", "violation",
        "recovery_victims",
    }


def test_partition_overlapping_a_checkpoint_halt(tmp_path):
    """The hard case: the partition eats halt traffic between d and p1
    while a checkpoint is in flight, then the crash fires. The frozen
    victim must adopt the next halt generation (rehalt) instead of
    wedging, and the campaign still completes with conservation intact."""
    plan = (
        FaultPlan(seed=0)
        .with_partition(("d->p1", "p1->d"), at_time=10.0, duration=15.0)
        .with_crash("p1", after_events=400)
    )
    report = run_campaign(seed=0, plan=plan, store_dir=str(tmp_path),
                          max_wall=45.0)
    assert report.ok, (report.violation, report.completed)
    assert report.recovery_victims == [("p1",)]
    assert report.restored_from[0] is not None


def test_campaign_metrics_flow_into_observability(tmp_path):
    observe = Observability()
    report = run_campaign(seed=2, store_dir=str(tmp_path), max_wall=45.0,
                          observe=observe)
    assert report.ok
    assert report.recoveries
    snapshot = observe.metrics.snapshot()
    assert sum(snapshot["recoveries_total"].values()) == len(report.recoveries)
    assert sum(snapshot["recovered_processes_total"].values()) >= 1
    latency = next(iter(snapshot["recovery_latency"].values()))
    assert latency.count == len(report.recoveries)
    spans = observe.tracer.spans("recovery")
    assert len(spans) == len(report.recoveries)
    assert spans[0].name == "recovery.restart"


def test_default_campaign_contains_crash_and_partition():
    plan = default_campaign(seed=9)
    assert plan.seed == 9
    assert plan.crashed_processes() == ("p1",)
    assert len(plan.partitions) == 1
    assert DEFAULT_PARAMS["n"] >= 3


def test_report_ok_property():
    base = dict(workload="token_ring", params={}, seed=0, plan={})
    assert ChaosReport(completed=True, violation="", **base).ok
    assert not ChaosReport(completed=False, violation="", **base).ok
    assert not ChaosReport(completed=True, violation="lost", **base).ok


def test_chaos_cli_end_to_end(tmp_path):
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "seed=0",
         f"store={tmp_path / 'store'}", f"json={out}", "max_wall=45.0"],
        capture_output=True, text=True, timeout=90,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "chaos OK" in proc.stdout
    assert "recovered ['p1'] from checkpoint" in proc.stdout
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["completed"] is True
    assert data["violation"] == ""
    assert data["recovery_victims"] == [["p1"]]
    assert data["recoveries"][0]["total_s"] > 0


def test_chaos_cli_usage():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "--help"],
        capture_output=True, text=True, timeout=30,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert proc.returncode == 0
    assert "usage: python -m repro chaos" in proc.stdout
