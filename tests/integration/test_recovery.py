"""Integration tests for checkpoint/restart supervision (repro.recovery).

Real OS processes die here — SIGKILL and FaultPlan crashes — and the
:class:`~repro.recovery.supervisor.ClusterSupervisor` rolls the whole
cluster back to the last consistent cut, Theorem-2 style: every
checkpoint is a halted global state, so restoring it is exactly
restoring ``S_h``.
"""

import time

import pytest

# Recovery tears sessions down constantly; leaks would surface here first.
pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

from repro.distributed.session import DistributedDebugSession
from repro.faults.plan import FaultPlan
from repro.recovery.invariants import conservation_violation, validator
from repro.recovery.supervisor import ClusterSupervisor
from repro.util.errors import RecoveryError, SurvivorsOnlyError

PARAMS = {"n": 3, "max_hops": 100_000, "hold_time": 0.2}


def ring_progress(state) -> int:
    return max(s.state.get("last_value", -1) for s in state.processes.values())


# -- the full loop: checkpoint -> kill -> recover -> verify --------------------


def test_recover_restores_the_last_checkpoint(tmp_path):
    sup = ClusterSupervisor(
        "token_ring", PARAMS, seed=11, store=str(tmp_path),
        validate=validator("token_ring", PARAMS),
    )
    with sup:
        session = sup.session
        time.sleep(0.5)
        saved = sup.checkpoint(timeout=10.0, probe_grace=2.0)
        assert saved is not None
        seq, path = saved
        restored_progress = ring_progress(sup.store.load(seq))
        assert restored_progress >= 0

        session.kill("p1")
        deadline = time.time() + 5.0
        while session.alive("p1") and time.time() < deadline:
            time.sleep(0.05)
        assert sup.poll() == ("p1",)

        event = sup.recover()
        assert event.victims == ("p1",)
        assert event.checkpoint_seq == seq
        assert event.incarnation == 1
        assert event.total_s == event.teardown_s + event.restart_s > 0
        assert sup.poll() == ()  # everyone is back

        # The restored incarnation still satisfies the conservation law
        # and makes progress past the restored cut.
        time.sleep(0.5)
        saved2 = sup.checkpoint(timeout=10.0, probe_grace=2.0)
        assert saved2 is not None
        state2 = sup.store.load(saved2[0])
        assert not conservation_violation("token_ring", state2, PARAMS)
        assert ring_progress(state2) > restored_progress


def test_recover_before_any_checkpoint_restarts_initial_state(tmp_path):
    sup = ClusterSupervisor("token_ring", PARAMS, seed=5, store=str(tmp_path))
    with sup:
        sup.session.kill("p2")
        deadline = time.time() + 5.0
        while sup.session.alive("p2") and time.time() < deadline:
            time.sleep(0.05)
        event = sup.recover()
        assert event.checkpoint_seq is None  # the empty cut is consistent too
        assert sup.poll() == ()


def test_recover_guards(tmp_path):
    sup = ClusterSupervisor("token_ring", PARAMS, seed=5, store=str(tmp_path),
                            max_recoveries=0)
    with sup:
        with pytest.raises(RecoveryError, match="no dead processes"):
            sup.recover()
        sup.session.kill("p0")
        deadline = time.time() + 5.0
        while sup.session.alive("p0") and time.time() < deadline:
            time.sleep(0.05)
        with pytest.raises(RecoveryError, match="budget exhausted"):
            sup.recover()


def test_supervisor_requires_a_store():
    with pytest.raises(RecoveryError, match="store"):
        ClusterSupervisor("token_ring", PARAMS)


# -- resume after partial halt -------------------------------------------------


def test_resume_after_partial_halt_raises_survivors_only():
    with DistributedDebugSession("token_ring", PARAMS, seed=9) as session:
        time.sleep(0.4)
        session.kill("p1")
        deadline = time.time() + 5.0
        while session.alive("p1") and time.time() < deadline:
            time.sleep(0.05)
        report = session.halt_with_watchdog(timeout=8.0, probe_grace=2.0)
        assert report.is_partial and report.dead == ("p1",)

        with pytest.raises(SurvivorsOnlyError) as excinfo:
            session.resume(timeout=5.0)
        assert excinfo.value.dead == ("p1",)
        assert "p1" in str(excinfo.value)

        # Partial mode resumes the survivors the exception pointed at.
        assert session.resume(timeout=10.0, allow_partial=True)


# -- fault-plan rewriting across incarnations ----------------------------------


def test_remaining_plan_one_shot_semantics(tmp_path):
    plan = (
        FaultPlan(seed=3)
        .with_crash("p1", after_events=40)
        .with_crash("p2", at_time=6.0)
        .with_crash("p0", at_time=1.0)
        .with_stall("p0", at_time=2.0, duration=5.0)
        .with_stall("p2", at_time=0.5, duration=1.0)
        .with_partition(("p0->p1",), at_time=8.0, duration=2.0)
        .with_partition(("p1->p2",), at_time=1.0, duration=2.0)
    )
    sup = ClusterSupervisor("token_ring", PARAMS, seed=3,
                            fault_plan=plan, store=str(tmp_path))
    rewritten = sup._remaining_plan(("p1",), rollback_virtual=4.0)

    # p1's crash fired (it is the victim) — gone. p0's timed crash is
    # behind the rollback point — gone. p2's is shifted to the new clock.
    assert {c.process for c in rewritten.crashes} == {"p2"}
    assert rewritten.crashes[0].at_time == pytest.approx(2.0)

    # The in-progress stall keeps its remainder; the finished one drops.
    assert len(rewritten.stalls) == 1
    stall = rewritten.stalls[0]
    assert (stall.process, stall.at_time, stall.duration) == ("p0", 0.0, 3.0)

    # The future partition keeps its full width; the finished one drops.
    assert len(rewritten.partitions) == 1
    part = rewritten.partitions[0]
    assert (part.channels, part.at_time, part.duration) == (
        ("p0->p1",), 4.0, 2.0
    )


def test_remaining_plan_keeps_event_counted_crashes_of_survivors(tmp_path):
    plan = FaultPlan(seed=0).with_crash("p2", after_events=500)
    sup = ClusterSupervisor("token_ring", PARAMS, seed=0,
                            fault_plan=plan, store=str(tmp_path))
    rewritten = sup._remaining_plan(("p1",), rollback_virtual=3.0)
    # The restored controller continues the snapshot's local_seq, so an
    # unfired after_events crash carries over verbatim.
    assert rewritten.crashes == plan.crashes


def test_remaining_plan_without_a_plan_is_none(tmp_path):
    sup = ClusterSupervisor("token_ring", PARAMS, store=str(tmp_path))
    assert sup._remaining_plan(("p0",), 1.0) is None
