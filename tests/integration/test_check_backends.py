"""Cross-backend equivalence: one schedule, two substrates, one verdict.

The tentpole claim of the scheduling gate is that a schedule is
backend-neutral: the same decision list drives the DES kernel and a live
``ThreadedSystem`` (real OS threads behind the cooperative step gate)
through the *same* execution — same trace, same halt order, same message
ledger, same invariant verdicts. These tests check that claim directly,
plus the threaded gate's edge cases: timer-vs-delivery races at the
turnstile, crash-fault teardown, and socket/thread hygiene (the module
fails on ResourceWarning).
"""

import dataclasses
import random

import pytest

from repro.check.explorer import explore
from repro.check.minimize import minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.runner import run_schedule, scenarios
from repro.check.scheduler import RandomWalkStrategy, ScriptedStrategy
from repro.faults.plan import FaultPlan

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")


def _channel_ledger(system):
    """Per-channel conserved-message counters, backend-neutral."""
    return {
        str(channel.id): (channel.stats.sent, channel.stats.delivered)
        for channel in system.channels()
    }


def _run_both(decisions, mutation=None):
    scenario = scenarios()["token_ring"]
    factory = MUTATIONS[mutation] if mutation else None
    des = run_schedule(scenario, ScriptedStrategy(decisions), factory,
                       backend="des")
    threaded = run_schedule(scenario, ScriptedStrategy(decisions), factory,
                            backend="threaded")
    return des, threaded


# -- the equivalence suite -----------------------------------------------------


def test_canonical_schedule_is_the_same_execution_on_both_backends():
    des, threaded = _run_both([])
    assert des.record.quiesced and threaded.record.quiesced
    assert threaded.record.trace == des.record.trace
    assert threaded.record.decisions == des.record.decisions
    assert threaded.record.halt_order == des.record.halt_order
    assert threaded.record.halt_paths == des.record.halt_paths
    assert threaded.record.system.message_totals() == \
        des.record.system.message_totals()
    assert _channel_ledger(threaded.record.system) == \
        _channel_ledger(des.record.system)
    assert [v.invariant for v in des.violations] == []
    assert [v.invariant for v in threaded.violations] == []


@pytest.mark.parametrize("walk", [0, 1, 2])
def test_scripted_walks_agree_across_backends(walk):
    # Let a random walk on the DES discover a schedule, then replay its
    # decision list — the portable artifact form — on both substrates.
    scenario = scenarios()["token_ring"]
    probe = run_schedule(
        scenario, RandomWalkStrategy(random.Random(f"equiv|{walk}"))
    )
    assert probe.record.quiesced
    des, threaded = _run_both(list(probe.record.decisions))
    assert threaded.record.trace == des.record.trace == probe.record.trace
    assert threaded.record.halt_order == des.record.halt_order
    assert threaded.record.system.message_totals() == \
        des.record.system.message_totals()
    assert _channel_ledger(threaded.record.system) == \
        _channel_ledger(des.record.system)
    assert [v.invariant for v in threaded.violations] == \
        [v.invariant for v in des.violations] == []


def test_mutation_verdicts_agree_across_backends():
    # A deliberately broken agent must be convicted identically: the bug
    # is in the algorithm, not the substrate.
    des, threaded = _run_both([], mutation="late-halt")
    assert {v.invariant for v in des.violations} == \
        {v.invariant for v in threaded.violations}
    assert des.violations  # the mutation is actually caught


def test_choice_points_enumerate_identically():
    des, threaded = _run_both([])
    assert [(cp.trace_index, cp.enabled, cp.chosen)
            for cp in threaded.record.choice_points] == \
        [(cp.trace_index, cp.enabled, cp.chosen)
         for cp in des.record.choice_points]


# -- exploration and the artifact loop on the threaded backend -----------------


def test_threaded_backend_explores_a_green_scenario():
    report = explore(scenarios()["token_ring"], budget=50, seed=0,
                     backend="threaded")
    assert not report.found
    assert report.schedules_run == 50
    assert report.inconclusive_runs == 0


def test_threaded_violation_minimizes_and_replays():
    scenario = scenarios()["token_ring"]
    factory = MUTATIONS["late-halt"]
    result = run_schedule(scenario, ScriptedStrategy([]), factory,
                          backend="threaded")
    assert result.violated
    invariant = result.violations[0].invariant
    minimized = minimize_schedule(
        scenario, result.record.decisions, invariant, factory,
        backend="threaded",
    )
    assert len(minimized) <= len(result.record.decisions)
    assert schedule_violates(scenario, minimized, invariant, factory,
                             backend="threaded")


# -- threaded-gate edge cases --------------------------------------------------


def test_timer_vs_delivery_race_commits_both_ways():
    # At the turnstile a pending hold-timer races an in-flight token: the
    # gate must expose both, and either commit order must run to clean
    # quiescence with the ledger conserved.
    scenario = scenarios()["token_ring"]
    root = run_schedule(scenario, ScriptedStrategy([]), backend="threaded")
    mixed = [
        (k, cp) for k, cp in enumerate(root.record.choice_points)
        if any(l.startswith("timer:") for l in cp.enabled)
        and any(l.startswith("chan:") for l in cp.enabled)
    ]
    assert mixed, "expected a timer/delivery race in the canonical run"
    k, cp = mixed[0]
    for label in cp.enabled:
        prefix = list(root.record.decisions[:k]) + [label]
        result = run_schedule(scenario, ScriptedStrategy(prefix),
                              backend="threaded")
        assert result.record.quiesced
        assert not result.violated
        for sent, delivered in _channel_ledger(result.record.system).values():
            assert sent == delivered


def test_crash_fault_teardown_matches_the_des():
    # A crash fires through the gate as an internal step; the dead
    # process's staged timers must vanish (no wedged gate, no zombie
    # label), mirroring the DES controller cancelling kernel entries.
    base = scenarios()["token_ring"]
    scenario = dataclasses.replace(
        base,
        name="token_ring_crash",
        twin=False,
        fault_plan=FaultPlan().with_crash("p3", after_events=3),
        invariants=("fifo_per_channel",),
    )
    des = run_schedule(scenario, ScriptedStrategy([]), backend="des")
    threaded = run_schedule(scenario, ScriptedStrategy([]),
                            backend="threaded")
    assert des.record.quiesced and threaded.record.quiesced
    assert "internal:crash:p3" in threaded.record.trace
    assert threaded.record.trace == des.record.trace
    assert not des.violated and not threaded.violated
    assert threaded.record.system.controller("p3").crashed
    assert not any(label.startswith("timer:p3")
                   for label in threaded.record.trace)


def test_timed_crash_fault_is_stageable_too():
    base = scenarios()["token_ring"]
    scenario = dataclasses.replace(
        base,
        name="token_ring_timed_crash",
        twin=False,
        fault_plan=FaultPlan().with_crash("p2", at_time=3.0),
        invariants=("fifo_per_channel",),
    )
    des = run_schedule(scenario, ScriptedStrategy([]), backend="des")
    threaded = run_schedule(scenario, ScriptedStrategy([]),
                            backend="threaded")
    assert threaded.record.trace == des.record.trace
    assert threaded.record.system.controller("p2").crashed


def test_gate_mode_rejects_wall_clock_fault_machinery():
    # Stalls, partitions, and lossy channels run on wall time; the gate
    # cannot stage them, so construction must fail loudly, not silently
    # change semantics.
    from repro.util.errors import ConfigurationError

    base = scenarios()["token_ring"]
    for plan in (
        FaultPlan().with_stall("p1", at_time=1.0, duration=2.0),
        FaultPlan().with_partition(["p0->p1"], at_time=1.0, duration=2.0),
        FaultPlan.lossy(0.5),
    ):
        scenario = dataclasses.replace(
            base, name="bad", twin=False, fault_plan=plan
        )
        with pytest.raises(ConfigurationError):
            run_schedule(scenario, ScriptedStrategy([]), backend="threaded")


def test_reliable_scenario_declares_no_threaded_backend():
    scenario = scenarios()["token_ring_reliable"]
    assert "threaded" not in scenario.backends
    with pytest.raises(ValueError):
        run_schedule(scenario, ScriptedStrategy([]), backend="threaded")
