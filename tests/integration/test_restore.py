"""Integration tests for state restoration (time travel from S_h)."""

import pytest

from repro.analysis import check_cut_consistency
from repro.experiments import run_halting, run_snapshot
from repro.halting import HaltingCoordinator, restore
from repro.network.latency import UniformLatency
from repro.util.errors import HaltingError
from repro.workloads import bank, chatter, token_ring


def test_restored_bank_conserves_money_and_completes():
    builder = lambda: bank.build(n=4, transfers=20)
    _, _, state = run_halting(builder, 7, "branch1", 10)
    assert bank.total_money(state) == 4 * bank.INITIAL_BALANCE

    topo, processes = bank.build(n=4, transfers=20)
    system = restore(state, topo, processes, seed=99,
                     latency=UniformLatency(0.4, 1.6))
    # Immediately after restore (nothing run): the books still balance
    # once in-flight wires land.
    system.run_to_quiescence()
    balances = {n: system.state_of(n)["balance"] for n in system.user_process_names}
    assert bank.total_money(balances) == 4 * bank.INITIAL_BALANCE
    # And the program genuinely continued: every branch finished its quota.
    for name in system.user_process_names:
        assert system.state_of(name)["transfers_made"] == 20


def test_restored_run_continues_causal_history():
    builder = lambda: chatter.build(n=4, budget=20, seed=3)
    _, _, state = run_halting(builder, 3, "p1", 8)
    topo, processes = chatter.build(n=4, budget=20, seed=3)
    system = restore(state, topo, processes, seed=123,
                     latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    # New events continue the captured clocks: every process's final vector
    # dominates its captured vector.
    for name, snapshot in state.processes.items():
        final = system.controller(name).vector.snapshot()
        assert all(f >= c for f, c in zip(final, snapshot.vector))
        assert system.controller(name)._local_seq >= snapshot.local_seq
    sent = sum(system.state_of(n)["sent"] for n in system.user_process_names)
    received = sum(system.state_of(n)["received"] for n in system.user_process_names)
    assert sent == received == 4 * 20


def test_restored_token_ring_token_survives():
    builder = lambda: token_ring.build(n=4, max_hops=30)
    _, _, state = run_halting(builder, 5, "p2", 6)
    topo, processes = token_ring.build(n=4, max_hops=30)
    system = restore(state, topo, processes, seed=77,
                     latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    # The token completed all its hops across the incarnation boundary.
    values = [system.state_of(f"p{i}")["last_value"] for i in range(4)]
    assert max(values) == 30


def test_restore_can_halt_again():
    """Restore, attach fresh debugging machinery, halt again — the restored
    cut composes with everything else."""
    builder = lambda: bank.build(n=3, transfers=25)
    _, _, state = run_halting(builder, 2, "branch0", 8)
    topo, processes = bank.build(n=3, transfers=25)
    system = restore(state, topo, processes, seed=44,
                     latency=UniformLatency(0.4, 1.6))
    halting = HaltingCoordinator(system)
    from repro.experiments import install_trigger

    install_trigger(system, "branch2", state.processes["branch2"].local_seq + 10,
                    lambda: halting.initiate(["branch2"]))
    system.run_to_quiescence()
    assert halting.all_halted()
    second = halting.collect()
    assert bank.total_money(second) == 3 * bank.INITIAL_BALANCE
    report = check_cut_consistency(system.log, second)
    # The log only covers the second incarnation; channel contents include
    # re-injected messages whose sends predate the log, so only the
    # frontier check is meaningful here — run it via bank's invariant
    # (already asserted) and vector domination instead.
    for name, snap in second.processes.items():
        old = state.processes[name]
        assert all(f >= c for f, c in zip(snap.vector, old.vector))


def test_restore_rejects_incomplete_channels():
    """Naive-halt captures (no marker delimiters) cannot be restored —
    their channel contents are indeterminable (E9)."""
    from repro.baselines.naive_halt import NaiveHaltCoordinator
    from repro.debugger.agent import DebuggerProcess
    from repro.experiments import install_trigger
    from repro.runtime.system import System

    topo, processes = bank.build(n=3, transfers=25)
    extended = topo.with_debugger("d")
    staffed = dict(processes)
    staffed["d"] = DebuggerProcess()
    system = System(extended, staffed, seed=6,
                    latency=UniformLatency(0.4, 1.6), never_halt={"d"})
    coordinator = NaiveHaltCoordinator(system, monitor="d")
    install_trigger(system, "branch0", 10, lambda: coordinator.trip("branch0"))
    system.run_to_quiescence()
    naive_state = coordinator.collect()
    if not any(cs.messages for cs in naive_state.channels.values()):
        pytest.skip("no pending messages this seed; nothing indeterminable")
    topo2, processes2 = bank.build(n=3, transfers=25)
    with pytest.raises(HaltingError, match="indeterminable"):
        restore(naive_state, topo2, processes2)


def test_restore_rejects_unknown_processes():
    builder = lambda: bank.build(n=3, transfers=10)
    _, _, state = run_halting(builder, 1, "branch0", 5)
    topo, processes = bank.build(n=2, transfers=10)  # smaller topology
    with pytest.raises(HaltingError, match="not in the topology"):
        restore(state, topo, processes)
