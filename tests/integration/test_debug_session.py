"""Integration tests for the full extended-model debugger (E3, E5, E12)."""

import pytest

from repro.analysis import check_cut_consistency
from repro.debugger import DebugSession
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.network.latency import UniformLatency
from repro.workloads import bank, pipeline, token_ring


def make_session(builder, seed=0, **kwargs):
    topo, processes = builder()
    return DebugSession(topo, processes, seed=seed,
                        latency=UniformLatency(0.4, 1.6), **kwargs)


# -- E3: acyclic topologies --------------------------------------------------


def test_basic_algorithm_fails_on_pipeline():
    """Fig. 2: consumer-initiated halt cannot reach the producer without a
    debugger process."""
    topo, processes = pipeline.build(stages=2, items=40)
    system = build_system(lambda: (topo, processes), seed=1)
    halting = HaltingCoordinator(system)

    fired = []

    def consumer_initiates():
        halting.initiate(["consumer"])
        fired.append(True)

    from repro.experiments import install_trigger
    install_trigger(system, "consumer", 5, consumer_initiates)
    system.run_to_quiescence()
    assert fired
    # Consumer halted; everything upstream kept running to completion.
    assert system.controller("consumer").halted
    assert "producer" in halting.unhalted()
    assert system.state_of("producer")["produced"] == 40


def test_extended_model_halts_pipeline():
    """Fig. 3: with the debugger process the same scenario halts everyone."""
    session = make_session(lambda: pipeline.build(stages=2, items=40), seed=1)
    session.set_breakpoint("enter(consume)@consumer ^5")
    outcome = session.run()
    assert outcome.stopped
    assert outcome.hits
    # The producer halted well before exhausting its items.
    assert session.inspect("producer")["produced"] < 40
    order = session.halting_order()
    assert set(order) == {"producer", "stage1", "stage2", "consumer"}


# -- breakpoint + inspect + resume lifecycle ------------------------------------


def test_breakpoint_inspect_resume_continue():
    session = make_session(lambda: token_ring.build(n=4, max_hops=60), seed=2)
    session.set_breakpoint("enter(receive_token)@p2 ^2")
    outcome = session.run()
    assert outcome.stopped
    assert session.inspect("p2")["tokens_seen"] == 2

    # Resume and hit a later breakpoint in the same session.
    session.set_breakpoint("enter(receive_token)@p2 ^3")
    session.resume()
    outcome2 = session.run()
    assert outcome2.stopped
    assert session.inspect("p2")["tokens_seen"] == 5  # 2 + 3 more


def test_explicit_halt_command():
    session = make_session(lambda: bank.build(n=3, transfers=30), seed=4)
    session.system.run(until=6.0)
    session.halt()
    outcome = session.run()
    assert outcome.stopped
    state = session.global_state()
    assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE


def test_global_state_via_protocol_is_consistent():
    session = make_session(lambda: bank.build(n=4, transfers=25), seed=6)
    session.set_breakpoint("state(transfers_made>=6)@branch2")
    outcome = session.run()
    assert outcome.stopped
    state = session.global_state()
    report = check_cut_consistency(session.system.log, state)
    assert report.consistent, "\n".join(report.violations)
    assert bank.total_money(state) == 4 * bank.INITIAL_BALANCE


# -- E12: repeated halt/resume cycles, stale markers -----------------------------


def test_halt_ids_increase_across_cycles():
    session = make_session(lambda: token_ring.build(n=4, max_hops=200), seed=3)
    generations = []
    for cycle in range(1, 4):
        session.set_breakpoint(f"enter(receive_token)@p1 ^{cycle}")
        outcome = session.run()
        assert outcome.stopped, f"cycle {cycle} did not halt"
        generations.append(session.current_generation())
        # All agents agree on the generation (the paper's claim that every
        # last_halt_id is equal once all processes halt).
        ids = {
            session._halting_agents[name].last_halt_id
            for name in session.system.user_process_names
        }
        assert ids == {generations[-1]}
        session.resume()
    assert generations == sorted(generations)
    assert len(set(generations)) == 3


def test_halting_order_paths_are_prefixes():
    """§2.2.4: the path in each halt marker lists processes that halted
    earlier; every reported path must be consistent with halt times."""
    session = make_session(lambda: bank.build(n=4, transfers=30), seed=8)
    session.set_breakpoint("state(transfers_made>=5)@branch0")
    outcome = session.run()
    assert outcome.stopped
    paths = session.halt_paths()
    notifications = {n.process: n for n in session.agent.halting_order()}
    for process, path in paths.items():
        for earlier in path:
            if earlier == session.debugger_name or earlier not in notifications:
                continue
            assert notifications[earlier].time <= notifications[process].time, (
                f"{earlier} appears in {process}'s halt path but halted later"
            )
