"""Integration: breakpoints drive the Halting Algorithm (E7 scenarios)."""

import pytest

from repro.analysis import check_cut_consistency
from repro.breakpoints import BreakpointCoordinator, parse_predicate
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.workloads import bank, token_ring


def run_with_breakpoint(builder, predicate_text, seed=0, max_events=500_000):
    system = build_system(builder, seed)
    halting = HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint(predicate_text)
    system.run_to_quiescence(max_events=max_events)
    return system, halting, breakpoints, lp_id


def test_simple_predicate_halts_system():
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: token_ring.build(n=4, max_hops=60),
        "enter(receive_token)@p2",
    )
    assert breakpoints.hits_for(lp_id), "breakpoint never fired"
    assert halting.all_halted()
    # The satisfying process halted with its trigger event in its history.
    p2 = system.controller("p2")
    assert p2.halted_snapshot is not None
    assert p2.halted_snapshot.state["tokens_seen"] >= 1


def test_breakpoint_halt_is_consistent():
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: bank.build(n=4, transfers=25),
        "state(transfers_made>=5)@branch1",
        seed=3,
    )
    assert breakpoints.hits_for(lp_id)
    state = halting.collect()
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
    assert bank.total_money(state) == 4 * bank.INITIAL_BALANCE


def test_linked_predicate_fires_in_causal_order():
    # Token visits p1 then (causally) p3: hops are chained by the token.
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: token_ring.build(n=4, max_hops=60),
        "enter(receive_token)@p1 -> enter(receive_token)@p3",
    )
    hits = breakpoints.hits_for(lp_id)
    assert hits
    trail = hits[0].trail
    assert [hit.process for hit in trail] == ["p1", "p3"]
    assert trail[0].time <= trail[1].time
    assert halting.all_halted()


def test_linked_predicate_that_never_fires():
    # The ring only makes 3 hops; a 30-times repetition can't happen.
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: token_ring.build(n=4, max_hops=3),
        "enter(receive_token)@p1 ^30",
    )
    assert not breakpoints.hits_for(lp_id)
    assert not halting.halt_order  # nothing halted
    assert system.state_of("p0")["tokens_seen"] >= 0


def test_disjunctive_predicate_any_branch():
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: token_ring.build(n=4, max_hops=60),
        "enter(receive_token)@p1 | enter(receive_token)@p2",
    )
    hits = breakpoints.hits_for(lp_id)
    assert hits
    assert hits[0].trail[0].process in ("p1", "p2")
    assert halting.all_halted()


def test_repetition_counts_satisfactions():
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: token_ring.build(n=4, max_hops=60),
        "enter(receive_token)@p1 ^3",
    )
    hits = breakpoints.hits_for(lp_id)
    assert hits
    # p1 saw the token exactly 3 times when the breakpoint fired.
    snapshot = system.controller("p1").halted_snapshot
    assert snapshot is not None
    assert snapshot.state["tokens_seen"] == 3


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_multiple_hits_multiple_initiators_still_consistent(seed):
    # A disjunction satisfied at several branches near-simultaneously can
    # initiate halting from several processes; the algorithm tolerates it.
    system, halting, breakpoints, lp_id = run_with_breakpoint(
        lambda: bank.build(n=4, transfers=25),
        "state(transfers_made>=4)@branch0 | state(transfers_made>=4)@branch1 "
        "| state(transfers_made>=4)@branch2",
        seed=seed,
    )
    assert breakpoints.hits_for(lp_id)
    state = halting.collect()
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
