"""The debug control plane over real TCP: conformance and concurrency.

Everything the protocol promises, exercised the way a remote client sees
it — length-prefixed frames through actual sockets against a running
:class:`DebugServer`. The conformance half mirrors the cluster wire tests
(malformed frames, unknown ops, stale sessions, mid-command disconnects:
one-line error replies, server survives). The concurrency half runs many
simultaneous attach sessions against one cluster and checks the shared
observations the protocol guarantees: halt generations agree, a resume by
one session is seen by all, detaching or dropping one session never
affects another.
"""

import json
import socket
import struct
import threading

import pytest

from repro.debugger import (
    DebugClient,
    DebugServer,
    DebuggerService,
    DebugSession,
    DESSurface,
    LiveTarget,
)
from repro.distributed import wire
from repro.network.latency import UniformLatency
from repro.util.errors import ReproError, WireClosed
from repro.workloads import token_ring


def make_service(n=3, max_hops=60, seed=2):
    topo, processes = token_ring.build(n=n, max_hops=max_hops)
    session = DebugSession(topo, processes, seed=seed,
                          latency=UniformLatency(0.4, 1.6))
    return DebuggerService(LiveTarget(DESSurface(session)))


@pytest.fixture
def server():
    with DebugServer(make_service(), port=0) as srv:
        yield srv


def raw_connection(server):
    return socket.create_connection(("127.0.0.1", server.port), timeout=10.0)


# -- conformance over the wire ------------------------------------------------


def test_every_command_round_trips_over_tcp(server):
    """One session walks the whole vocabulary; every reply is one frame
    with a boolean ok, exactly as the in-process suite promises."""
    with DebugClient(server.port, label="conformance") as client:
        assert client.server["backend"] == "des"
        walk = [
            ("help", {}),
            ("ping", {}),
            ("sessions", {}),
            ("status", {}),
            ("break-set", {"predicate": "enter(receive_token)@p1 ^2"}),
            ("break-list", {}),
            ("wait-halt", {"timeout": 5}),
            ("order", {}),
            ("hits", {}),
            ("inspect", {"process": "p1"}),
            ("state", {}),
            ("step", {"process": "p1"}),
            ("resume", {}),
            ("break-clear", {"bp_id": 1}),
            ("spawn", {}),
        ]
        for op, fields in walk:
            reply = client.request(op, **fields)
            assert isinstance(reply, dict), op
            assert reply.get("ok") is True, (op, reply)


def test_unknown_command_and_stale_session_over_tcp(server):
    conn = raw_connection(server)
    try:
        wire.send_frame(conn, {"op": "frobnicate"})
        reply = wire.recv_frame(conn)
        assert reply["ok"] is False and "unknown command" in reply["error"]

        wire.send_frame(conn, {"op": "status", "session": "s999"})
        reply = wire.recv_frame(conn)
        assert reply["ok"] is False and "s999" in reply["error"]
        assert "\n" not in reply["error"]
    finally:
        conn.close()


def test_non_object_frames_get_error_replies(server):
    """The wire codec itself enforces frames-are-objects, so a non-object
    frame is framing corruption: one error reply, then the server drops
    that connection (and only that connection)."""
    for frame in (None, 17, "attach", ["op", "attach"]):
        conn = raw_connection(server)
        try:
            payload = json.dumps(frame).encode("utf-8")
            conn.sendall(struct.pack(">I", len(payload)) + payload)
            reply = wire.recv_frame(conn)
            assert reply["ok"] is False
            assert "JSON object" in reply["error"]
            with pytest.raises((WireClosed, OSError)):
                wire.recv_frame(conn)
        finally:
            conn.close()
    with DebugClient(server.port) as client:
        assert client.request("status")["ok"]


def test_corrupt_frame_kills_only_that_connection(server):
    bad = raw_connection(server)
    try:
        # A length prefix promising more than MAX_FRAME_BYTES: unambiguous
        # framing corruption, the stream cannot be resynchronized.
        bad.sendall(struct.pack(">I", wire.MAX_FRAME_BYTES + 1) + b"xxxx")
        reply = wire.recv_frame(bad)
        assert reply["ok"] is False
        with pytest.raises((WireClosed, OSError)):
            wire.recv_frame(bad)  # server closed the poisoned stream
    finally:
        bad.close()
    # The server keeps serving everyone else.
    with DebugClient(server.port) as client:
        assert client.request("status")["ok"]


def test_mid_command_disconnect_reaps_the_session(server):
    conn = raw_connection(server)
    wire.send_frame(conn, {"op": "attach", "label": "doomed"})
    sid = wire.recv_frame(conn)["session"]
    assert server.service.session_count() == 1

    # Vanish mid-protocol: half a length prefix, then hard close.
    conn.sendall(b"\x00\x00")
    conn.close()

    done = threading.Event()

    def until_reaped():
        import time
        while server.service.session_count() > 0:
            time.sleep(0.01)
        done.set()

    threading.Thread(target=until_reaped, daemon=True).start()
    assert done.wait(5.0), "disconnect did not reap the session"
    assert server.service.reaped["disconnect"] == 1

    # The reaped id is stale for any later client.
    with DebugClient(server.port) as client:
        reply = client._roundtrip({"op": "ping", "session": sid})
        assert reply["ok"] is False


def test_client_refuses_ops_the_server_did_not_offer(server):
    with DebugClient(server.port) as client:
        with pytest.raises(ReproError, match="did not offer"):
            client.request("made-up-op")


# -- concurrency: many sessions, one cluster ----------------------------------


def test_concurrent_sessions_share_every_observation(server):
    """Session A arms and halts; B and C (attached the whole time) observe
    the same generation and halted set; B resumes; A and C see it."""
    with DebugClient(server.port, label="a") as a, \
         DebugClient(server.port, label="b") as b, \
         DebugClient(server.port, label="c") as c:
        a.request("break-set", predicate="enter(receive_token)@p1 ^2")
        halted = a.request("wait-halt", timeout=5)
        assert halted["stopped"] and halted["generation"] == 1

        for observer in (b, c):
            status = observer.request("status")
            assert status["generation"] == 1
            assert status["halted"] == ["p0", "p1", "p2"]

        resumed = b.request("resume")
        assert resumed["resumed"] and resumed["by"] == b.session

        for observer in (a, c):
            assert observer.request("status")["halted"] == []

        # A's attempt to resume the same generation is refused, by name.
        stale = a.request("resume")
        assert stale["ok"] is False
        assert b.session in stale["error"]


def test_many_simultaneous_attaches(server):
    """A burst of threads attach and command concurrently; every session
    gets a distinct id and a working conversation."""
    results = {}
    errors = []

    def one_session(index):
        try:
            with DebugClient(server.port, label=f"burst-{index}") as client:
                for _ in range(5):
                    assert client.ping()["pong"]
                results[index] = client.session
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append((index, exc))

    threads = [threading.Thread(target=one_session, args=(i,))
               for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors, errors
    assert len(set(results.values())) == 12
    assert server.service.session_count() == 0  # all detached cleanly


def test_detach_of_one_session_never_tears_down_another(server):
    survivor = DebugClient(server.port, label="survivor")
    survivor.connect()
    try:
        for _ in range(3):
            doomed = DebugClient(server.port, label="doomed")
            doomed.connect()
            doomed.close()
            assert survivor.ping()["pong"]
        sessions = survivor.request("sessions")["sessions"]
        assert [row["label"] for row in sessions] == ["survivor"]
    finally:
        survivor.close()


def test_shutdown_stops_the_server(server):
    with DebugClient(server.port) as client:
        reply = client.request("shutdown")
        assert reply["ok"] and reply["stopping"]
        client.session = None  # conversation is over; skip detach
    done = threading.Event()

    def until_refused():
        import time
        while True:
            try:
                probe = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=0.2
                )
            except OSError:
                done.set()
                return
            probe.close()
            time.sleep(0.02)

    threading.Thread(target=until_refused, daemon=True).start()
    assert done.wait(5.0), "listener still accepting after shutdown"
