"""Experiment E2 (Theorem 2): the halted state S_h equals the snapshot S_r.

Two runs of the identical workload (same seed): one is halted by the
paper's Halting Algorithm at a local trigger, the twin records a C&L
snapshot at the same trigger. Theorem 2 says the two global states are the
same — here we demand *exact structural equality* (process states, event
counts, logical clocks, per-channel message sequences).
"""

import pytest

from repro.analysis import check_cut_consistency, states_equivalent
from repro.experiments import run_halting, run_snapshot
from repro.workloads import bank, chatter, token_ring


def paired(builder, seed, process, nth, **kwargs):
    _, _, s_h = run_halting(builder, seed, process, nth, **kwargs)
    _, _, s_r = run_snapshot(builder, seed, process, nth, **kwargs)
    return s_h, s_r


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_token_ring_halt_equals_snapshot(seed):
    builder = lambda: token_ring.build(n=4, max_hops=30)
    s_h, s_r = paired(builder, seed, "p1", 10)
    report = states_equivalent(s_h, s_r)
    assert report.equivalent, "\n".join(report.differences)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bank_halt_equals_snapshot(seed):
    builder = lambda: bank.build(n=4, transfers=20)
    s_h, s_r = paired(builder, seed, "branch2", 15)
    report = states_equivalent(s_h, s_r)
    assert report.equivalent, "\n".join(report.differences)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chatter_halt_equals_snapshot(seed):
    builder = lambda: chatter.build(n=5, budget=25, seed=seed)
    s_h, s_r = paired(builder, seed, "p0", 12)
    report = states_equivalent(s_h, s_r)
    assert report.equivalent, "\n".join(report.differences)


def test_multi_initiator_halt_equals_multi_initiator_snapshot():
    builder = lambda: chatter.build(n=5, budget=25, seed=9)
    s_h, s_r = paired(
        builder, 9, "p0", 10, extra_initiators=("p3",)
    )
    report = states_equivalent(s_h, s_r)
    assert report.equivalent, "\n".join(report.differences)


def test_halted_state_is_consistent_cut():
    builder = lambda: bank.build(n=4, transfers=20)
    system, _, s_h = run_halting(builder, 5, "branch0", 8)
    report = check_cut_consistency(system.log, s_h)
    assert report.consistent, "\n".join(report.violations)


def test_snapshot_state_is_consistent_cut():
    builder = lambda: bank.build(n=4, transfers=20)
    system, _, s_r = run_snapshot(builder, 5, "branch0", 8)
    report = check_cut_consistency(system.log, s_r)
    assert report.consistent, "\n".join(report.violations)


def test_bank_money_conserved_at_halt():
    builder = lambda: bank.build(n=4, transfers=20)
    _, _, s_h = run_halting(builder, 11, "branch1", 12)
    assert bank.total_money(s_h) == 4 * bank.INITIAL_BALANCE
