"""Breakpoint detection + halting on the threaded backend.

The same PredicateAgent/HaltingAgent code drives real threads; under
genuine nondeterminism we assert the paper's guarantees (causal trail,
consistent halt), not exact schedules.
"""

import pytest

from repro.analysis import check_cut_consistency
from repro.breakpoints import BreakpointCoordinator
from repro.halting import HaltingCoordinator
from repro.runtime.threaded import ThreadedSystem
from repro.workloads import bank, token_ring


def test_threaded_breakpoint_halts_consistently():
    topo, processes = bank.build(n=3, transfers=20, tick=0.6)
    system = ThreadedSystem(topo, processes, seed=4, time_scale=0.02)
    halting = HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    try:
        lp_id = breakpoints.set_breakpoint("state(transfers_made>=3)@branch1")
        system.start()
        assert system.run_until(system.all_user_processes_halted, timeout=30.0), \
            "breakpoint never halted the system"
        assert system.settle(timeout=30.0)
        assert breakpoints.hits_for(lp_id)
        state = halting.collect()
        report = check_cut_consistency(system.log, state)
        assert report.consistent, "\n".join(report.violations)
        assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE
        assert state.processes["branch1"].state["transfers_made"] >= 3
    finally:
        system.shutdown()


def test_threaded_linked_predicate_trail_is_causal():
    topo, processes = token_ring.build(n=3, max_hops=60, hold_time=0.4)
    system = ThreadedSystem(topo, processes, seed=2, time_scale=0.02)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    try:
        lp_id = breakpoints.set_breakpoint(
            "enter(receive_token)@p1 -> enter(receive_token)@p2"
        )
        system.start()
        assert system.run_until(system.all_user_processes_halted, timeout=30.0)
        assert system.settle(timeout=30.0)
        hits = breakpoints.hits_for(lp_id)
        assert hits
        trail = hits[0].trail
        assert [h.process for h in trail] == ["p1", "p2"]
        by_eid = {e.eid: e for e in system.log}
        opener, closer = by_eid[trail[0].eid], by_eid[trail[1].eid]
        assert opener.happened_before(closer)
    finally:
        system.shutdown()
