"""End-to-end tests for the schedule-exploration checker.

The contract under test, in the paper's terms: on correct implementations
of §2.2 the theorems hold on *every* explored interleaving; on deliberately
broken ones (:mod:`repro.check.mutations`) a violation is found within a
small bounded budget, delta-debugged to a minimal schedule, serialized,
and reproduced deterministically by replay — including through the
``repro check`` CLI, exit codes and all.
"""

import json

import pytest

from repro.check.cli import check_main
from repro.check.explorer import explore
from repro.check.minimize import minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.runner import run_schedule, scenarios
from repro.check.scheduler import RandomWalkStrategy, ScriptedStrategy

import random


# -- stock scenarios: the theorems hold on every explored schedule --------------


@pytest.mark.parametrize("name", ["token_ring", "pipeline",
                                  "token_ring_reliable"])
def test_stock_scenario_survives_bounded_exploration(name):
    report = explore(scenarios()[name], budget=60, seed=0, dfs_depth=8)
    assert not report.found, report.violation.violations[0].describe()
    assert report.schedules_run > 1          # actually explored
    assert report.inconclusive_runs == 0     # every schedule quiesced


def test_exploration_uses_sleep_sets():
    report = explore(scenarios()["pipeline"], budget=120, seed=0,
                     dfs_depth=10)
    assert report.dfs_nodes > 0
    assert report.slept_branches > 0  # the reduction actually pruned


# -- determinism: same decisions, same run, byte for byte -----------------------


def test_scripted_replay_is_byte_identical():
    scenario = scenarios()["token_ring"]
    probe = run_schedule(scenario, RandomWalkStrategy(random.Random(42)))
    decisions = list(probe.record.decisions)
    first = run_schedule(scenario, ScriptedStrategy(decisions))
    second = run_schedule(scenario, ScriptedStrategy(decisions))
    assert first.report_json() == second.report_json()
    assert first.record.trace == probe.record.trace


def test_same_walk_seed_same_schedule():
    scenario = scenarios()["pipeline"]
    one = run_schedule(scenario, RandomWalkStrategy(random.Random("s|7")))
    two = run_schedule(scenario, RandomWalkStrategy(random.Random("s|7")))
    assert one.record.decisions == two.record.decisions
    assert one.report_json() == two.report_json()


def test_different_schedules_still_satisfy_but_differ():
    """Exploration is not a no-op: distinct decision lists produce distinct
    executions (different traces), all of which satisfy the theorems."""
    scenario = scenarios()["token_ring"]
    traces = set()
    for seed in range(6):
        result = run_schedule(
            scenario, RandomWalkStrategy(random.Random(seed)))
        assert not result.violated and not result.inconclusive
        traces.add(tuple(result.record.trace))
    assert len(traces) > 1


# -- mutation smoke: broken rules are caught, minimized, replayed ---------------


def test_skip_forward_mutation_caught_within_budget():
    scenario = scenarios()["token_ring"]
    report = explore(scenario, budget=20, seed=0,
                     agent_factory=MUTATIONS["skip-forward"],
                     mutation="skip-forward")
    assert report.found
    violation = report.violation.violations[0]
    assert violation.invariant == "halt_convergence"


def test_late_halt_mutation_caught_and_minimized():
    scenario = scenarios()["token_ring"]
    factory = MUTATIONS["late-halt"]
    report = explore(scenario, budget=20, seed=0, agent_factory=factory,
                     mutation="late-halt")
    assert report.found
    violation = report.violation.violations[0]
    minimal = minimize_schedule(
        scenario, report.violation.record.decisions,
        violation.invariant, factory,
    )
    # Minimized schedule still violates the same invariant...
    assert schedule_violates(scenario, minimal, violation.invariant, factory)
    # ...and is 1-minimal: removing any single decision un-violates.
    for i in range(len(minimal)):
        candidate = minimal[:i] + minimal[i + 1:]
        assert not schedule_violates(
            scenario, candidate, violation.invariant, factory)


def test_stock_agents_pass_the_schedules_that_damn_the_mutants():
    """The checker's verdicts discriminate: a schedule on which a mutant
    violates is re-run with the genuine agent and found clean."""
    scenario = scenarios()["token_ring"]
    factory = MUTATIONS["late-halt"]
    report = explore(scenario, budget=20, seed=0, agent_factory=factory,
                     mutation="late-halt")
    assert report.found
    decisions = list(report.violation.record.decisions)
    stock = run_schedule(scenario, ScriptedStrategy(decisions))
    assert not stock.violated


# -- the CLI, exit codes and artifacts ------------------------------------------


def test_cli_mutation_smoke_writes_artifact_and_replays(tmp_path, capsys):
    artifact_path = str(tmp_path / "counterexample.json")
    code = check_main(["token_ring", "--mutate", "late-halt",
                       "--budget", "20", "--artifact", artifact_path])
    assert code == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "minimized schedule" in out

    with open(artifact_path) as handle:
        data = json.load(handle)
    assert data["kind"] == "repro-check-schedule"
    assert data["scenario"] == "token_ring"
    assert data["mutation"] == "late-halt"

    # Replay against the same mutated build reproduces it: exit 0.
    assert check_main(["--replay", artifact_path]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_cli_replay_mismatch_exits_2(tmp_path, capsys):
    artifact_path = str(tmp_path / "counterexample.json")
    assert check_main(["token_ring", "--mutate", "skip-forward",
                       "--budget", "10", "--artifact", artifact_path]) == 1
    capsys.readouterr()
    # Strip the mutation: the stock agent does not violate, so the
    # artifact no longer reproduces — replay must say so, loudly.
    with open(artifact_path) as handle:
        data = json.load(handle)
    data["mutation"] = None
    with open(artifact_path, "w") as handle:
        json.dump(data, handle)
    assert check_main(["--replay", artifact_path]) == 2
    assert "did NOT reproduce" in capsys.readouterr().err


def test_cli_stock_run_exits_0(capsys):
    assert check_main(["token_ring", "--budget", "25"]) == 0
    assert "no violation" in capsys.readouterr().out


def test_cli_usage_errors_exit_2(capsys):
    assert check_main(["no_such_scenario"]) == 2
    assert check_main(["--mutate", "no_such_mutation"]) == 2
    assert check_main(["pipeline", "--mutate", "late-halt"]) == 2
    capsys.readouterr()


def test_cli_list_names_scenarios_and_mutations(capsys):
    assert check_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("token_ring", "pipeline", "token_ring_reliable",
                 "skip-forward", "late-halt"):
        assert name in out
