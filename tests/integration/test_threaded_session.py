"""End-to-end debugging on the threaded backend via ThreadedDebugSession."""

import pytest

from repro.analysis import check_cut_consistency
from repro.debugger.threaded_session import ThreadedDebugSession
from repro.workloads import bank, pipeline, token_ring


def test_breakpoint_halt_inspect_resume_on_threads():
    topo, processes = bank.build(n=3, transfers=12, tick=0.6)
    with ThreadedDebugSession(topo, processes, seed=5) as session:
        session.set_breakpoint("state(transfers_made>=3)@branch0")
        assert session.run_until_stopped(timeout=30.0)
        assert session.breakpoint_hits()
        state = session.inspect("branch0")
        assert state["transfers_made"] >= 3
        order = session.halting_order()
        assert set(order) == {"branch0", "branch1", "branch2"}
        # Consistency of the frozen cut, from the shared oracle.
        halted = {
            name: session.system.controller(name).halted_snapshot
            for name in session.system.user_process_names
        }
        assert all(snap is not None for snap in halted.values())
        balances = {name: snap.state["balance"] for name, snap in halted.items()}
        buffered = sum(
            env.payload.payload
            for name in halted
            for envs in session.system.controller(name).halt_buffers.values()
            for env in envs
        )
        assert sum(balances.values()) + buffered == 3 * bank.INITIAL_BALANCE

        # Resume and let it finish.
        assert session.resume(timeout=15.0)
        assert session.wait_quiet(timeout=30.0)
        assert session.inspect("branch0")["transfers_made"] == 12


def test_extended_model_halts_threaded_pipeline():
    """Fig. 3 on real threads: consumer breakpoint freezes the producer."""
    topo, processes = pipeline.build(stages=1, items=50, tick=0.5)
    with ThreadedDebugSession(topo, processes, seed=2) as session:
        session.set_breakpoint("enter(consume)@consumer ^3")
        assert session.run_until_stopped(timeout=30.0)
        produced = session.inspect("producer")["produced"]
        assert produced < 50, "producer should be frozen mid-stream"
        paths = session.halt_paths()
        assert set(paths) == {"producer", "stage1", "consumer"}


def test_explicit_halt_on_threads():
    topo, processes = token_ring.build(n=3, max_hops=500, hold_time=0.4)
    with ThreadedDebugSession(topo, processes, seed=7) as session:
        session.start()
        session.system.run_until(
            lambda: session.system.state_of("p0").get("tokens_seen", 0) >= 1,
            timeout=30.0,
        )
        session.halt()
        assert session.run_until_stopped(timeout=30.0)
        report = check_cut_consistency(
            session.system.log,
            _assemble(session),
        )
        assert report.consistent, "\n".join(report.violations)


def _assemble(session):
    from repro.snapshot.state import ChannelState, GlobalState

    processes = {}
    channels = {}
    for name in session.system.user_process_names:
        controller = session.system.controller(name)
        processes[name] = controller.halted_snapshot
        for channel_id, envelopes in controller.halt_buffers.items():
            if channel_id.src == session.debugger_name:
                continue
            channels[channel_id] = ChannelState(
                channel=channel_id,
                messages=tuple(env.payload for env in envelopes),
                complete=channel_id in controller.closed_channels,
            )
    return GlobalState(origin="halting", processes=processes, channels=channels)
