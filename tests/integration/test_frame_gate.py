"""The distributed frame gate: delivery ordering over real sockets.

A :class:`~repro.distributed.framegate.FrameStager` proxies every
user-process channel of a live cluster; a
:class:`~repro.check.gate.FrameGate` turns its held buffers into the
gate's enabled/commit surface. These tests run a real token-ring cluster
(one OS process per member) behind the stager and check the three
properties the gate needs: frames actually park (the cluster cannot make
user-level progress without commits), commits release exactly one frame
in explorer-chosen order, and teardown (release_all) hands the wire back
so the normal halt/collect/shutdown path still works afterwards.

Everything runs under hard timeouts — a wedged proxy must fail the test,
not hang CI — and the module fails on ResourceWarning: the stager owns
real sockets and threads and must not leak them.
"""

import time

import pytest

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

from repro.check.gate import FrameGate
from repro.distributed.framegate import FrameStager
from repro.distributed.session import DistributedDebugSession
from repro.util.errors import ReproError


def _wait_for(condition, timeout, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(poll)
    return condition()


def test_frame_gate_stages_and_orders_real_cluster_deliveries():
    stager = FrameStager()
    gate = FrameGate(stager, settle=0.2)
    with DistributedDebugSession(
        "token_ring", {"n": 3, "max_hops": 100_000, "hold_time": 0.05},
        seed=11, frame_stager=stager,
    ) as session:
        # The ring's first user frame must park at the proxy instead of
        # reaching its destination.
        assert _wait_for(lambda: stager.held_count() > 0, timeout=15.0)

        # The gate's view: quiet window, then one label per held channel,
        # all of them real edges of the ring.
        labels = gate.enabled()
        assert labels
        edges = {"p0->p1", "p1->p2", "p2->p0"}
        assert all(label[len("chan:"):] in edges for label in labels)

        # Commit a few deliveries in gate order. Each release lets the
        # destination advance the token one hop, whose next send parks at
        # the proxy again — so the enabled set keeps regenerating.
        committed = []
        for _ in range(4):
            labels = gate.enabled()
            if not labels:
                break
            gate.commit(labels[0])
            committed.append(labels[0])
        assert len(committed) >= 2
        assert gate.now == float(len(committed))

        # Releasing a channel with nothing held is a usage error.
        with pytest.raises(ReproError):
            stager.release("p0->p1" if "chan:p0->p1" not in
                           gate.enabled() else "does->not-exist")

        # Teardown: the gate steps aside and the cluster gets its wire
        # back — the full halt/collect loop must still work, marker
        # frames included (they flood over the same user channels).
        gate.close()
        report = session.halt_with_watchdog(timeout=20.0, probe_grace=3.0)
        assert report.complete, report.describe()
        state = session.collect_global_state(timeout=15.0)
        held = sum(1 for snap in state.processes.values()
                   if snap.state.get("holding"))
        assert held + state.total_pending_messages() == 1
    stager.close()


def test_doctored_ports_map_keeps_the_debugger_direct():
    stager = FrameStager()
    try:
        real = {"d": 4000, "p0": 4001, "p1": 4002}
        doctored = stager.doctor(real, keep={"d"})
        assert doctored["d"] == 4000
        proxy_port = doctored["p0"]
        assert proxy_port not in (4000, 4001, 4002)
        assert doctored["p1"] == proxy_port  # one listener serves them all
    finally:
        stager.close()
