"""The docs must not lie: execute every Python snippet in docs/*.md.

Each document's fenced ``python`` blocks run cumulatively in one shared
namespace, top to bottom — so a snippet may use names an earlier snippet
in the same file defined, exactly as a reader following along would.
A block preceded by an ``<!-- doc-skip -->`` HTML comment is display-only
(fragments shown for shape, not for running) and is skipped.
"""

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"
DOCS = sorted(DOCS_DIR.glob("*.md"))

_FENCE = re.compile(
    r"(?P<skip><!--\s*doc-skip\s*-->\s*\n)?```python\n(?P<code>.*?)```",
    re.DOTALL,
)


def python_snippets(path: Path):
    """Yield ``(line_number, code)`` for each runnable snippet in a doc."""
    text = path.read_text(encoding="utf-8")
    for match in _FENCE.finditer(text):
        if match.group("skip"):
            continue
        line = text[: match.start("code")].count("\n") + 1
        yield line, match.group("code")


def test_docs_exist():
    names = {doc.name for doc in DOCS}
    assert {"TUTORIAL.md", "FAULTS.md", "ARCHITECTURE.md",
            "OBSERVABILITY.md", "CHECKING.md", "RECORDING.md",
            "DEBUGGER.md"} <= names


@pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
def test_doc_snippets_execute(doc, capsys):
    blocks = list(python_snippets(doc))
    if not blocks:
        pytest.skip(f"{doc.name} has no runnable python snippets")
    namespace = {"__name__": f"docsnippets_{doc.stem.lower()}"}
    for line, code in blocks:
        try:
            exec(compile(code, f"{doc.name}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{doc.name} snippet starting at line {line} raised "
                f"{type(exc).__name__}: {exc}"
            )
