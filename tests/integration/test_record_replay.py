"""The record/replay bridge, end to end on a real cluster.

One live token-ring run is recorded once (module-scoped fixture — the
cluster spawns real OS processes) and then examined from every angle:
the artifact's shape, the DES replay's fidelity (identical per-channel
frame sequences, halting order, and invariant verdicts), perturbation
around the recorded schedule (clean for the stock agent; the injected
late-halt bug must be found and minimized), and the CLI surfaces
(``repro record``, ``repro check --from-trace``, ``--replay`` of a
trace-seeded artifact, the backend-aware ``--list``, and
``--backend distributed`` driving a real-socket cluster per schedule).

Everything runs under hard timeouts, and the module fails on
ResourceWarning: recorders own sockets and threads and must not leak.
"""

import json

import pytest

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

from repro.check.cli import check_main
from repro.check.minimize import minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.runner import run_schedule, scenarios
from repro.check.scheduler import ScriptedStrategy
from repro.record import (
    TraceArtifact,
    explore_from_trace,
    record_run,
    replay_trace,
    trace_scenario,
)

WORKLOAD = "token_ring"
PARAMS = {"n": 3, "max_hops": 100_000, "hold_time": 0.05}


@pytest.fixture(scope="module")
def recorded():
    """One live recording, shared by every test in the module."""
    return record_run(WORKLOAD, PARAMS, seed=11, min_frames=10)


# -- the artifact --------------------------------------------------------------


def test_recording_captures_ring_traffic_with_causal_metadata(recorded):
    assert isinstance(recorded, TraceArtifact)
    assert recorded.workload == WORKLOAD
    assert recorded.user_frame_count() >= 10
    ring_edges = {"p0->p1", "p1->p2", "p2->p0"}
    assert set(recorded.channels()) <= ring_edges
    # Every user frame carries its piggybacked (lamport, vector) clocks.
    users = [f for f in recorded.frames if f.kind == "user"]
    assert users and all(f.clock is not None for f in users)
    lamports = [f.clock[0] for f in users]
    assert all(l >= 0 for l in lamports)
    # Halt metadata: the live run converged and reported its order.
    assert sorted(recorded.meta["halt_order"]) == ["p0", "p1", "p2"]
    assert recorded.meta["debugger"] == "d"
    # Per-channel frame indices ascend: the tap's total order is strict.
    for frames in recorded.channel_sequences().values():
        indices = [f.index for f in frames]
        assert indices == sorted(indices)


# -- replay fidelity -----------------------------------------------------------


def test_replay_is_faithful_frame_for_frame(recorded):
    report, result = replay_trace(recorded)
    assert report.fidelity_ok, report.summary()
    # Identical per-channel frame sequences...
    assert report.channel_mismatches == []
    assert report.missing_markers == []
    # ...identical halting order...
    assert report.halt_order_replayed == report.halt_order_recorded
    # ...and every invariant holds on the recorded interleaving.
    assert report.verdicts and all(report.verdicts.values())
    # The reconstructed decision list is scripted-replayable: same trace,
    # zero divergences.
    assert report.scripted_identical and report.scripted_divergences == 0
    assert not result.violated


def test_replayed_schedule_is_an_ordinary_checker_schedule(recorded):
    report, _ = replay_trace(recorded)
    scenario = trace_scenario(recorded)
    again = run_schedule(scenario, ScriptedStrategy(list(report.decisions)))
    assert again.record.quiesced
    assert not again.violated
    assert list(again.record.halt_order) == report.halt_order_recorded


# -- perturbation --------------------------------------------------------------


def test_stock_agent_survives_the_trace_neighborhood(recorded):
    scenario = trace_scenario(recorded)
    report, _ = replay_trace(recorded)
    sweep = explore_from_trace(scenario, list(report.decisions),
                               radius=1, budget=15, seed=0)
    assert not sweep.found, sweep.summary()
    assert sweep.schedules_run == 15


def test_sharded_sweep_merges_exactly_like_sequential(recorded, tmp_path):
    """``jobs=2`` workers rebuild the trace scenario from the artifact
    file and shard the candidate plan; the merged report must be the
    sequential sweep's, clean and violating alike."""
    from repro.record.store import save_trace

    trace_path = str(tmp_path / "trace.json")
    save_trace(recorded, trace_path)
    scenario = trace_scenario(recorded)
    report, _ = replay_trace(recorded)

    clean = [
        explore_from_trace(scenario, list(report.decisions),
                           radius=1, budget=15, seed=0, jobs=jobs,
                           trace_path=trace_path)
        for jobs in (1, 2)
    ]
    assert not clean[0].found and not clean[1].found
    assert clean[1].schedules_run == clean[0].schedules_run == 15
    assert clean[1].inconclusive == clean[0].inconclusive

    mutated_report, _ = replay_trace(
        recorded, agent_factory=MUTATIONS["late-halt"])
    hits = [
        explore_from_trace(scenario, list(mutated_report.decisions),
                           radius=2, budget=80, seed=0, jobs=jobs,
                           trace_path=trace_path, mutation="late-halt")
        for jobs in (1, 2)
    ]
    assert hits[0].found and hits[1].found
    assert hits[1].schedules_run == hits[0].schedules_run
    assert hits[1].found_by == hits[0].found_by
    assert hits[1].distance == hits[0].distance
    assert hits[1].decisions == hits[0].decisions
    assert hits[1].violation.report_json() == hits[0].violation.report_json()


def test_sharded_sweep_requires_a_trace_path(recorded):
    scenario = trace_scenario(recorded)
    report, _ = replay_trace(recorded)
    with pytest.raises(ValueError):
        explore_from_trace(scenario, list(report.decisions),
                           budget=5, jobs=2)


def test_seeded_sweep_finds_and_minimizes_injected_late_halt(recorded):
    factory = MUTATIONS["late-halt"]
    scenario = trace_scenario(recorded)
    report, _ = replay_trace(recorded, agent_factory=factory)
    sweep = explore_from_trace(scenario, list(report.decisions),
                               radius=2, budget=80, seed=0,
                               agent_factory=factory)
    assert sweep.found, sweep.summary()
    violation = sweep.violation.violations[0]
    assert violation.invariant == "halting_order_prefix"
    minimal = minimize_schedule(scenario, sweep.decisions,
                                violation.invariant, factory)
    assert len(minimal) <= len(sweep.decisions)
    assert schedule_violates(scenario, minimal, violation.invariant, factory)
    # The deviation damns the mutant, not the trace: the stock agent
    # passes the very same schedule.
    assert not schedule_violates(scenario, minimal, violation.invariant, None)


# -- the CLI surfaces ----------------------------------------------------------


def test_record_cli_writes_artifact_and_from_trace_sweep_runs(
        recorded, tmp_path, capsys):
    from repro.record.store import save_trace

    trace_path = str(tmp_path / "trace.json")
    save_trace(recorded, trace_path)

    # Clean sweep: exit 0, replay summary printed.
    assert check_main(["--from-trace", trace_path,
                       "--radius", "1", "--budget", "10"]) == 0
    out = capsys.readouterr().out
    assert "FAITHFUL" in out and "no violation" in out

    # Mutated sweep: exit 1, trace-seeded artifact written and replayable.
    artifact_path = str(tmp_path / "counterexample.json")
    code = check_main(["--from-trace", trace_path, "--radius", "2",
                       "--budget", "80", "--mutate", "late-halt",
                       "--artifact", artifact_path])
    assert code == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "minimized schedule" in out
    with open(artifact_path) as handle:
        data = json.load(handle)
    assert data["from_trace"] == trace_path
    assert data["mutation"] == "late-halt"
    assert check_main(["--replay", artifact_path]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_record_cli_records_a_live_run(tmp_path, capsys):
    from repro.record.cli import record_main
    from repro.record.store import load_trace

    path = str(tmp_path / "live.json")
    code = record_main([WORKLOAD, "n=3", "max_hops=100000",
                        "hold_time=0.05", "--frames", "8", "--seed", "3",
                        "--out", path, "--no-verify"])
    assert code == 0
    assert "recorded" in capsys.readouterr().out
    back = load_trace(path)
    assert back.workload == WORKLOAD and back.seed == 3
    assert back.user_frame_count() >= 8


def test_list_prints_backends_and_skip_reasons(capsys):
    assert check_main(["--list", "--backend", "distributed"]) == 0
    out = capsys.readouterr().out
    assert "backends: des, distributed" in out
    assert "skipped under --backend distributed" in out


def test_cli_usage_errors(tmp_path, capsys):
    assert check_main(["--from-trace", str(tmp_path / "missing.json")]) == 2
    assert check_main(["--from-trace", "x.json", "token_ring"]) == 2
    assert check_main(["--from-trace", "x.json",
                       "--backend", "threaded"]) == 2
    from repro.record.cli import record_main
    assert record_main([]) == 2
    assert record_main(["not_a_workload"]) == 2
    assert record_main([WORKLOAD, "--out", "a", "--store", "b"]) == 2


# -- the distributed checker backend -------------------------------------------


def test_distributed_backend_explores_live_scenario_end_to_end(capsys):
    assert check_main(["token_ring_live", "--backend", "distributed",
                       "--budget", "2"]) == 0
    assert "no violation" in capsys.readouterr().out


def test_distributed_run_record_reports_cluster_state():
    scenario = scenarios()["token_ring_live"]
    result = run_schedule(scenario, backend="distributed")
    record = result.record
    assert record.backend == "distributed"
    assert record.all_halted
    assert sorted(record.halt_order) == ["p0", "p1", "p2"]
    assert not result.violated
