"""Integration: halting on networks that lose frames and kill processes.

Three claims, end to end:

1. a lost HALT_MARKER is retransmitted and halting converges (without the
   reliable layer the same loss strands the downstream processes — pinned
   in ``tests/unit/test_lossy_channels.py``);
2. a crash during a halt degrades to a watchdog-bounded *partial* halt
   whose report names exactly the crashed processes, and the surviving
   cut is consistent;
3. both behaviours hold on the threaded backend, where the watchdog is
   wall-clock and shutdown must stay clean.
"""

import time

import pytest

from repro.analysis.consistency import check_cut_consistency
from repro.core.api import build_workload
from repro.debugger.session import DebugSession
from repro.debugger.threaded_session import ThreadedDebugSession
from repro.events.event import EventKind
from repro.faults.plan import ChannelFaultSpec, FaultPlan
from repro.network.message import MessageKind
from repro.util.errors import FaultError, RuntimeStateError


# -- lost halt markers are recovered (Lemma 2.2 by construction) ----------------


def test_lost_halt_marker_is_retransmitted_and_halting_converges():
    found = None
    for seed in range(30):
        topology, processes = build_workload("token_ring", n=4,
                                             max_hops=400, hold_time=0.5)
        plan = FaultPlan.lossy(0.5, seed=seed)
        session = DebugSession(topology, processes, seed=seed,
                               fault_plan=plan, reliable=True)
        session.system.run(until=10.0)
        session.halt()
        outcome = session.run(max_events=4_000_000)
        assert outcome.stopped, f"halting did not converge (seed {seed})"
        marker_frame_drops = [
            event for event in session.system.log.of_kind(EventKind.MESSAGE_DROPPED)
            if event.detail == MessageKind.HALT_MARKER.value
        ]
        if marker_frame_drops:
            found = (seed, session)
            break
    assert found is not None, "no seed in range dropped a halt-marker frame"
    seed, session = found
    # The marker frame was eaten by the wire, yet every process halted and
    # the cut is consistent — the retransmission carried Lemma 2.2.
    verdict = check_cut_consistency(session.system.log, session.global_state())
    assert verdict.consistent, verdict.violations


def test_raw_wire_same_loss_strands_halting():
    """Control arm: the exact configuration above minus the reliable layer
    fails to converge — the robustness layer is doing the work."""
    stranded = 0
    for seed in range(10):
        topology, processes = build_workload("token_ring", n=4,
                                             max_hops=400, hold_time=0.5)
        plan = FaultPlan.lossy(0.5, seed=seed)
        session = DebugSession(topology, processes, seed=seed,
                               fault_plan=plan, reliable=False)
        session.system.run(until=10.0)
        session.halt()
        outcome = session.run(max_events=500_000)
        if not outcome.stopped:
            stranded += 1
    assert stranded > 0


# -- crash-mid-halt: watchdog-bounded partial cuts ------------------------------


def test_crash_mid_halt_yields_partial_report_naming_the_dead():
    topology, processes = build_workload("token_ring", n=4,
                                         max_hops=400, hold_time=0.5)
    plan = FaultPlan(seed=7).with_crash("p1", at_time=10.0)
    session = DebugSession(topology, processes, seed=7,
                           fault_plan=plan, reliable=True)
    session.system.run(until=25.0)
    started = session.system.kernel.now
    report = session.halt_with_watchdog(timeout=150.0, probe_grace=40.0)
    assert report.is_partial
    assert report.dead == ("p1",)
    assert set(report.halted) == {"p0", "p2", "p3"}
    assert report.unresolved == ()
    # Bounded: the watchdog fired within timeout + grace, no hang.
    assert report.time <= started + 150.0 + 40.0 + 1e-9
    assert "PARTIAL" in report.describe()


def test_partial_global_state_is_consistent_and_flagged():
    topology, processes = build_workload("bank", n=4, transfers=30)
    plan = FaultPlan(seed=3).with_crash("branch2", at_time=8.0)
    session = DebugSession(topology, processes, seed=3,
                           fault_plan=plan, reliable=True)
    session.system.run(until=15.0)
    report = session.halt_with_watchdog()
    assert report.dead == ("branch2",)
    with pytest.raises(Exception):
        session.global_state()  # full cut impossible: a member is dead
    state = session.global_state(allow_partial=True)
    assert state.meta["partial"] is True
    assert state.meta["missing"] == ["branch2"]
    assert set(state.processes) == {"branch0", "branch1", "branch3"}
    verdict = check_cut_consistency(session.system.log, state)
    assert verdict.consistent, verdict.violations


def test_crash_after_events_trigger():
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=400, hold_time=0.5)
    plan = FaultPlan(seed=5).with_crash("p2", after_events=10)
    session = DebugSession(topology, processes, seed=5,
                           fault_plan=plan, reliable=True)
    session.system.run(until=60.0)
    assert session.system.controller("p2").crashed
    crash_events = session.system.log.of_kind(EventKind.PROCESS_CRASHED)
    assert [event.process for event in crash_events] == ["p2"]
    report = session.halt_with_watchdog()
    assert report.dead == ("p2",)


def test_fault_free_watchdog_halt_is_complete():
    topology, processes = build_workload("token_ring", n=4,
                                         max_hops=500, hold_time=0.5)
    session = DebugSession(topology, processes, seed=9)
    session.system.run(until=10.0)
    report = session.halt_with_watchdog()
    assert report.complete and not report.is_partial
    assert set(report.halted) == {"p0", "p1", "p2", "p3"}
    assert report.dead == () and report.unresolved == ()


def test_stall_is_transparent_to_halting():
    """A stalled (not crashed) process halts late but halts — no false
    death verdict as long as the stall ends within the watchdog window."""
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=400, hold_time=0.5)
    plan = FaultPlan(seed=2).with_stall("p1", at_time=9.0, duration=30.0)
    session = DebugSession(topology, processes, seed=2,
                           fault_plan=plan, reliable=True)
    session.system.run(until=10.0)
    report = session.halt_with_watchdog(timeout=150.0)
    assert report.complete
    verdict = check_cut_consistency(session.system.log, session.global_state())
    assert verdict.consistent, verdict.violations


def test_heartbeats_suspect_exactly_the_crashed():
    topology, processes = build_workload("token_ring", n=4,
                                         max_hops=500, hold_time=0.5)
    plan = FaultPlan(seed=6).with_crash("p3", at_time=40.0)
    session = DebugSession(topology, processes, seed=6,
                           fault_plan=plan, reliable=True)
    monitor = session.enable_heartbeats(interval=5.0, miss_threshold=3)
    session.system.run(until=30.0)
    assert session.suspected_processes() == []  # everyone alive so far
    session.system.run(until=100.0)
    assert session.suspected_processes() == ["p3"]
    assert monitor.alive(session.system.kernel.now) == ["p0", "p1", "p2"]


def test_fault_plan_rejects_unknown_and_debugger_targets():
    topology, processes = build_workload("token_ring", n=3, max_hops=10)
    with pytest.raises(FaultError):
        DebugSession(topology, processes, seed=1,
                     fault_plan=FaultPlan(seed=1).with_crash("ghost", at_time=1.0))
    topology, processes = build_workload("token_ring", n=3, max_hops=10)
    with pytest.raises(FaultError):
        DebugSession(topology, processes, seed=1,
                     fault_plan=FaultPlan(seed=1).with_crash("d", at_time=1.0))


# -- threaded backend -----------------------------------------------------------


def test_threaded_crash_mid_halt_partial_report():
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=400, hold_time=0.01)
    plan = FaultPlan(seed=5).with_crash("p1", at_time=0.2)
    session = ThreadedDebugSession(topology, processes, seed=5,
                                   time_scale=0.02,
                                   fault_plan=plan, reliable=True)
    with session:
        time.sleep(0.5)
        report = session.halt_with_watchdog(timeout=4.0, probe_grace=2.0)
    assert report.is_partial
    assert report.dead == ("p1",)
    assert set(report.halted) == {"p0", "p2"}
    assert tuple(session.system.crashed_process_names()) == ("p1",)


def test_threaded_reliable_halt_under_loss_converges():
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=400, hold_time=0.01)
    plan = FaultPlan.lossy(0.3, seed=8)
    session = ThreadedDebugSession(topology, processes, seed=8,
                                   time_scale=0.02,
                                   fault_plan=plan, reliable=True)
    with session:
        time.sleep(0.3)
        report = session.halt_with_watchdog(timeout=10.0, probe_grace=3.0)
        assert report.complete, report.describe()
    dropped = sum(c.stats.frames_dropped for c in session.system.channels())
    assert dropped > 0  # the wire really lost frames; halting still converged


def test_threaded_shutdown_reports_stuck_threads():
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=50, hold_time=0.01)
    session = ThreadedDebugSession(topology, processes, seed=4, time_scale=0.02)
    session.start()
    # Wedge one process thread: its mailbox loop is busy sleeping, so it
    # can never see the stop sentinel within the shutdown deadline.
    session.system.controller("p0").defer(lambda: time.sleep(3.0), label="wedge")
    time.sleep(0.1)
    with pytest.raises(RuntimeStateError, match="p0"):
        session.system.shutdown(timeout=0.3)
    time.sleep(3.2)  # let the wedged thread drain before the next test
