"""The parallel explorer: determinism, merge correctness, dedup, replay.

The contract under test: for a fixed ``(scenario, budget, seed)``, every
worker count produces the *same* exploration — same schedule count, same
violation set, same minimized artifact — because all frontier, dedup, and
stop decisions are made in the parent in canonical task order. ``-j 1``
runs the identical code in-process, so equality with ``-j 2`` exercises
the real worker-pool protocol, not a shortcut.
"""

import pytest

from repro.check.cli import check_main
from repro.check.fingerprint import FingerprintTable
from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios


def _explore(name, jobs, budget=60, **kwargs):
    return explore_parallel(
        scenarios()[name], budget=budget, seed=0, jobs=jobs, **kwargs
    )


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("name", sorted(scenarios()))
def test_jobs_do_not_change_a_clean_exploration(name, jobs):
    sequential = _explore(name, jobs=1)
    parallel = _explore(name, jobs=jobs)
    assert sequential.violation is None and parallel.violation is None
    assert parallel.schedules_run == sequential.schedules_run
    assert parallel.inconclusive_runs == sequential.inconclusive_runs
    assert parallel.deduped_nodes == sequential.deduped_nodes
    assert parallel.distinct_states == sequential.distinct_states


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("mutation", ["skip-forward", "late-halt"])
def test_jobs_find_the_same_violation(mutation, jobs):
    sequential = _explore("token_ring", jobs=1, mutation=mutation)
    parallel = _explore("token_ring", jobs=jobs, mutation=mutation)
    assert sequential.violation is not None
    assert parallel.violation is not None
    seq_names = [v.invariant for v in sequential.violation.violations]
    par_names = [v.invariant for v in parallel.violation.violations]
    assert par_names == seq_names
    # Not just the same invariant: the same counterexample schedule.
    assert parallel.violation.record.decisions == \
        sequential.violation.record.decisions
    assert parallel.found_by == sequential.found_by


def test_dedup_skips_subtrees_without_changing_the_outcome():
    deduped = _explore("token_ring", jobs=1, budget=150)
    full = _explore("token_ring", jobs=1, budget=150, dedup=False)
    assert deduped.violation is None and full.violation is None
    assert deduped.deduped_nodes > 0
    assert full.deduped_nodes == 0
    # Dedup trades re-exploration of equivalent subtrees for nothing else:
    # both runs spend the whole budget.
    assert deduped.schedules_run == full.schedules_run


def test_report_summary_names_the_parallel_facts():
    report = _explore("token_ring", jobs=2, budget=40)
    text = report.summary()
    assert "jobs=2" in text
    assert "schedules/s" in text
    assert "distinct states" in text


def test_fingerprint_table_counts_cross_worker_hits():
    table = FingerprintTable()
    assert table.record("s1", origin=1)
    assert not table.record("s1", origin=7)
    assert table.hits == 1 and table.origin_of("s1") == 1


@pytest.mark.parametrize("mutation", ["skip-forward", "late-halt"])
def test_cli_parallel_artifact_is_byte_identical_to_sequential(
    tmp_path, capsys, mutation
):
    """The whole CLI path — explore, minimize, serialize — must emit the
    same bytes at every worker count, for every stock mutation."""
    artifacts = {}
    for jobs in (1, 2, 4):
        path = str(tmp_path / f"j{jobs}.json")
        assert check_main(["token_ring", "--mutate", mutation,
                           "--budget", "60", "--artifact", path,
                           "-j", str(jobs)]) == 1
        with open(path, "rb") as fp:
            artifacts[jobs] = fp.read()
    capsys.readouterr()
    assert artifacts[2] == artifacts[1]
    assert artifacts[4] == artifacts[1]
    # And the parallel run's artifact replays: the recorded violation
    # reproduces under the deterministic scripted scheduler.
    assert check_main(["--replay", str(tmp_path / "j4.json")]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out


@pytest.mark.parametrize("jobs", [2, 4])
def test_level_order_merges_identically_at_any_worker_count(jobs):
    sequential = _explore("token_ring", jobs=1, budget=80, order="level")
    parallel = _explore("token_ring", jobs=jobs, budget=80, order="level")
    assert sequential.violation is None and parallel.violation is None
    assert parallel.schedules_run == sequential.schedules_run
    assert parallel.distinct_states == sequential.distinct_states
    assert parallel.deduped_nodes == sequential.deduped_nodes
    assert parallel.dropped_nodes == sequential.dropped_nodes
    assert sequential.order == "level"


def test_level_frontier_bound_drops_overflow_deterministically():
    limited = _explore("token_ring", jobs=1, budget=100, order="level",
                       frontier_limit=4)
    parallel = _explore("token_ring", jobs=2, budget=100, order="level",
                        frontier_limit=4)
    # The bound bites (overflow children are dropped and counted), and
    # drop decisions happen at merge time, so they are worker-invariant.
    assert limited.dropped_nodes > 0
    assert parallel.dropped_nodes == limited.dropped_nodes
    assert parallel.schedules_run == limited.schedules_run
    assert parallel.distinct_states == limited.distinct_states
    assert "order=level" in limited.summary()


def test_level_order_finds_the_same_violation_as_dfs_order_does_not_mask():
    report = _explore("token_ring", jobs=2, budget=60,
                      mutation="late-halt", order="level")
    assert report.violation is not None
    twin = _explore("token_ring", jobs=1, budget=60,
                    mutation="late-halt", order="level")
    assert twin.violation is not None
    assert report.violation.record.decisions == \
        twin.violation.record.decisions


def test_engine_accounting_shows_the_resident_engine_ran():
    report = _explore("token_ring", jobs=1, budget=80)
    eng = report.engine
    assert eng["builds"] >= 1
    assert eng["oneshot_runs"] == 0
    # Every schedule ran on the rewound resident world...
    assert eng["resident_runs"] == report.schedules_run
    # ...and child prefixes actually restored branch-point snapshots
    # instead of replaying every prefix from the root.
    assert eng["snapshot_captures"] > 0
    assert eng["snapshot_restores"] > 0
    # Lease accounting: a clean full-budget run merges every task it
    # dispatched.
    assert report.leases > 0
    assert report.lease_tasks == report.schedules_run
    assert f"{report.leases} leases" in report.summary()


def test_rejects_unknown_order():
    with pytest.raises(ValueError):
        _explore("token_ring", jobs=1, order="widest-first")


def test_cli_rejects_bad_order_and_frontier_limit(capsys):
    assert check_main(["token_ring", "--order", "sideways"]) == 2
    assert "unknown order" in capsys.readouterr().err
    assert check_main(["token_ring", "--frontier-limit", "0"]) == 2
    assert "--frontier-limit" in capsys.readouterr().err


def test_cli_rejects_bad_jobs(capsys):
    assert check_main(["token_ring", "-j", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
