"""The parallel explorer: determinism, merge correctness, dedup, replay.

The contract under test: for a fixed ``(scenario, budget, seed)``, every
worker count produces the *same* exploration — same schedule count, same
violation set, same minimized artifact — because all frontier, dedup, and
stop decisions are made in the parent in canonical task order. ``-j 1``
runs the identical code in-process, so equality with ``-j 2`` exercises
the real worker-pool protocol, not a shortcut.
"""

import pytest

from repro.check.cli import check_main
from repro.check.fingerprint import FingerprintTable
from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios


def _explore(name, jobs, budget=60, **kwargs):
    return explore_parallel(
        scenarios()[name], budget=budget, seed=0, jobs=jobs, **kwargs
    )


@pytest.mark.parametrize("name", sorted(scenarios()))
def test_jobs_do_not_change_a_clean_exploration(name):
    sequential = _explore(name, jobs=1)
    parallel = _explore(name, jobs=2)
    assert sequential.violation is None and parallel.violation is None
    assert parallel.schedules_run == sequential.schedules_run
    assert parallel.inconclusive_runs == sequential.inconclusive_runs
    assert parallel.deduped_nodes == sequential.deduped_nodes
    assert parallel.distinct_states == sequential.distinct_states


@pytest.mark.parametrize("mutation", ["skip-forward", "late-halt"])
def test_jobs_find_the_same_violation(mutation):
    sequential = _explore("token_ring", jobs=1, mutation=mutation)
    parallel = _explore("token_ring", jobs=2, mutation=mutation)
    assert sequential.violation is not None
    assert parallel.violation is not None
    seq_names = [v.invariant for v in sequential.violation.violations]
    par_names = [v.invariant for v in parallel.violation.violations]
    assert par_names == seq_names
    # Not just the same invariant: the same counterexample schedule.
    assert parallel.violation.record.decisions == \
        sequential.violation.record.decisions
    assert parallel.found_by == sequential.found_by


def test_dedup_skips_subtrees_without_changing_the_outcome():
    deduped = _explore("token_ring", jobs=1, budget=150)
    full = _explore("token_ring", jobs=1, budget=150, dedup=False)
    assert deduped.violation is None and full.violation is None
    assert deduped.deduped_nodes > 0
    assert full.deduped_nodes == 0
    # Dedup trades re-exploration of equivalent subtrees for nothing else:
    # both runs spend the whole budget.
    assert deduped.schedules_run == full.schedules_run


def test_report_summary_names_the_parallel_facts():
    report = _explore("token_ring", jobs=2, budget=40)
    text = report.summary()
    assert "jobs=2" in text
    assert "schedules/s" in text
    assert "distinct states" in text


def test_fingerprint_table_counts_cross_worker_hits():
    table = FingerprintTable()
    assert table.record("s1", origin=1)
    assert not table.record("s1", origin=7)
    assert table.hits == 1 and table.origin_of("s1") == 1


def test_cli_parallel_artifact_is_byte_identical_to_sequential(
    tmp_path, capsys
):
    seq_path = str(tmp_path / "seq.json")
    par_path = str(tmp_path / "par.json")
    assert check_main(["token_ring", "--mutate", "late-halt",
                       "--budget", "60", "--artifact", seq_path,
                       "-j", "1"]) == 1
    assert check_main(["token_ring", "--mutate", "late-halt",
                       "--budget", "60", "--artifact", par_path,
                       "-j", "2"]) == 1
    capsys.readouterr()
    with open(seq_path, "rb") as fp:
        seq_bytes = fp.read()
    with open(par_path, "rb") as fp:
        par_bytes = fp.read()
    assert par_bytes == seq_bytes
    # And the parallel run's artifact replays: the recorded violation
    # reproduces under the deterministic scripted scheduler.
    assert check_main(["--replay", par_path]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out


def test_cli_rejects_bad_jobs(capsys):
    assert check_main(["token_ring", "-j", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
