"""End-to-end observability: sessions on both backends, the quickstart's
trace artifact, and the exact-count contract between the live registry
and the offline overhead analysis."""

import json
import pathlib
import subprocess
import sys

from repro.analysis import message_overhead
from repro.debugger import DebugSession
from repro.debugger.threaded_session import ThreadedDebugSession
from repro.observe import Observability, validate_chrome_trace
from repro.workloads import bank

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _registry_by_kind(observe):
    sent = observe.metrics.snapshot()["messages_sent_total"]
    return {dict(labels)["kind"]: int(v) for labels, v in sent.items()}


def test_quickstart_emits_validating_trace(tmp_path):
    """The README's quickstart, run as a user would, with a trace path."""
    trace_path = tmp_path / "halt_trace.json"
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py"),
         str(trace_path)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "CONSISTENT" in result.stdout
    document = json.loads(trace_path.read_text(encoding="utf-8"))
    validate_chrome_trace(document)
    names = {e["name"] for e in document["traceEvents"] if e["ph"] != "M"}
    assert {"halt.converge", "halt.process", "lp.detection"} <= names


def test_des_session_registry_matches_overhead_exactly(tmp_path):
    observe = Observability()
    topology, processes = bank.build(n=4, transfers=30)
    session = DebugSession(topology, processes, seed=42, observe=observe)
    session.set_breakpoint("state(balance<600)@branch0")
    outcome = session.run()
    assert outcome.stopped

    assert _registry_by_kind(observe) == dict(
        message_overhead(session.system).by_kind)

    document = session.chrome_trace(str(tmp_path / "des.json"))
    validate_chrome_trace(document)
    assert "Halting order" in session.halt_narrative()
    assert "messages_sent_total" in session.metrics_text()


def test_threaded_session_registry_matches_overhead_exactly(tmp_path):
    observe = Observability()
    topology, processes = bank.build(n=3, transfers=12)
    with ThreadedDebugSession(topology, processes, seed=7,
                              observe=observe) as session:
        report = session.halt_with_watchdog(timeout=20.0)
        assert report.complete

        assert _registry_by_kind(observe) == dict(
            message_overhead(session.system).by_kind)

        document = session.chrome_trace(str(tmp_path / "threaded.json"))
        validate_chrome_trace(document)
        assert "Halting order" in session.halt_narrative()

        # Halt spans carry the convergence umbrella on this backend too.
        names = {s.name for s in observe.tracer.spans("halt")}
        assert {"halt.converge", "halt.process"} <= names
