"""Integration tests for the §4 baselines (E9, E10 scenarios)."""

from repro.analysis import check_cut_consistency, drift_between, states_equivalent
from repro.baselines.central_hub import build_hubbed_system
from repro.baselines.naive_halt import NaiveHaltCoordinator
from repro.experiments import build_system, install_trigger, run_snapshot
from repro.network.latency import UniformLatency
from repro.runtime.system import System
from repro.workloads import bank, chatter


def run_naive(builder, seed, trigger_process, trigger_event):
    topo, processes = builder()
    extended = topo.with_debugger("d")
    from repro.debugger.agent import DebuggerProcess

    staffed = dict(processes)
    staffed["d"] = DebuggerProcess()
    system = System(
        extended, staffed, seed=seed,
        latency=UniformLatency(0.4, 1.6), never_halt={"d"},
    )
    coordinator = NaiveHaltCoordinator(system, monitor="d")
    install_trigger(
        system, trigger_process, trigger_event,
        lambda: coordinator.trip(trigger_process),
    )
    system.run_to_quiescence()
    return system, coordinator


def test_naive_halt_stops_everything_eventually():
    system, coordinator = run_naive(
        lambda: bank.build(n=4, transfers=25), 3, "branch1", 10
    )
    assert coordinator.all_halted()
    state = coordinator.collect()
    assert state.origin == "naive"
    # Even the naive stop yields a *causally* consistent cut...
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
    # ...and conserves money (consistency implies it).
    assert bank.total_money(state) == 4 * bank.INITIAL_BALANCE


def test_naive_halt_drifts_past_reference_cut():
    """E9's core shape: naive halting inspects states *after* the
    interesting point; marker halting inspects the point itself."""
    builder = lambda: bank.build(n=4, transfers=25)
    _, _, reference = run_snapshot(builder, 3, "branch1", 10)
    _, naive = run_naive(builder, 3, "branch1", 10)
    drift = drift_between(reference, naive.collect())
    assert drift.total > 0, "naive halting shows no drift?! latency too low"
    assert drift.maximum > 0
    # The marker-based halt has exactly zero drift (Theorem 2) — re-check.
    from repro.experiments import run_halting

    _, _, halted = run_halting(builder, 3, "branch1", 10)
    assert drift_between(reference, halted).total == 0


def test_naive_channels_are_indeterminable():
    _, coordinator = run_naive(lambda: bank.build(n=4, transfers=25), 7, "branch0", 12)
    state = coordinator.collect()
    assert all(not cs.complete for cs in state.channels.values())


def test_hubbed_system_runs_same_program():
    topo, processes = chatter.build(n=4, budget=15, seed=5)
    system, hub = build_hubbed_system(topo, processes, seed=5,
                                      latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    # Every process finished its budget; all traffic went through the hub.
    for name in topo.processes:
        assert system.state_of(name)["sent"] == 15
    total_received = sum(system.state_of(n)["received"] for n in topo.processes)
    assert len(hub.records) == total_received
    assert all(r.src != "hub" and r.dst != "hub" for r in hub.records)


def test_hub_doubles_message_hops():
    topo, processes = chatter.build(n=4, budget=15, seed=5)
    direct = System(topo, {n: p for n, p in processes.items()}, seed=5,
                    latency=UniformLatency(0.4, 1.6))
    direct.run_to_quiescence()
    direct_hops = direct.message_totals()["user"]

    topo2, processes2 = chatter.build(n=4, budget=15, seed=5)
    hubbed, _ = build_hubbed_system(topo2, processes2, seed=5,
                                    latency=UniformLatency(0.4, 1.6))
    hubbed.run_to_quiescence()
    hub_hops = hubbed.message_totals()["user"]
    assert hub_hops == 2 * direct_hops


def test_hub_detects_message_sequences_centrally():
    topo, processes = chatter.build(n=4, budget=15, seed=5)
    system, hub = build_hubbed_system(topo, processes, seed=5,
                                      latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    first = hub.records[0]
    # A trivially-satisfiable two-step pattern anchored on real traffic.
    match = hub.detect_sequence([(first.src, None, "chat"), (None, None, "chat")])
    assert match is not None
    assert match[0].seq < match[1].seq
