"""Deferred breakpoints end to end: set before the target exists.

The interactive lifecycle the ISSUE names, driven through the real
service: a breakpoint registered against a held (unspawned) cluster parks
PENDING, arms the instant ``spawn`` runs, and fires/halts exactly as a
breakpoint set after spawn would (§3.6 markers do not care when they were
requested). Plus the edges: clear-while-pending sticks across spawn,
duplicates collapse, and — via the recovery supervisor's incarnation hook
— breakpoints survive the cluster that armed them being killed and
replaced.
"""

import time

import pytest

from repro.breakpoints import BreakpointRegistry, BreakpointState
from repro.debugger import (
    DebugSession,
    DebuggerService,
    DESSurface,
    DistributedSurface,
    HeldTarget,
)
from repro.network.latency import UniformLatency
from repro.recovery.supervisor import ClusterSupervisor
from repro.workloads import token_ring


def des_factory():
    topo, processes = token_ring.build(n=3, max_hops=60)
    session = DebugSession(topo, processes, seed=2,
                          latency=UniformLatency(0.4, 1.6))
    return DESSurface(session)


def attach(service):
    return service.handle({"op": "attach"})["session"]


# -- pre-spawn set, post-spawn fire -------------------------------------------


def test_breakpoint_set_before_spawn_fires_after_spawn():
    service = DebuggerService(HeldTarget(des_factory))
    sid = attach(service)

    reply = service.handle({"op": "break-set", "session": sid,
                            "predicate": "enter(receive_token)@p1 ^2"})
    assert reply["state"] == "pending"
    bp_id = reply["bp_id"]

    spawned = service.handle({"op": "spawn", "session": sid})
    assert [r["bp_id"] for r in spawned["armed"]] == [bp_id]

    halted = service.handle({"op": "wait-halt", "session": sid, "timeout": 5})
    assert halted["stopped"]
    assert halted["halted"] == ["p0", "p1", "p2"]
    fired = [r for r in halted["fired"] if r["bp_id"] == bp_id]
    assert fired and fired[0]["state"] == "fired"
    assert fired[0]["history"] == ["pending", "bound", "armed", "fired"]

    # The fired halt is a real §2.2 halt: inspectable, ordered, resumable.
    inspect = service.handle({"op": "inspect", "session": sid,
                              "process": "p1"})
    assert inspect["ok"] and inspect["state"]["tokens_seen"] == 2
    order = service.handle({"op": "order", "session": sid})
    assert set(order["order"]) == {"p0", "p1", "p2"}


def test_deferred_equals_immediate():
    """The same predicate set pre-spawn and post-spawn halts at the same
    virtual state — deferral changes when markers are issued, not what
    they detect (both are issued before the first user event runs)."""

    def halt_state(defer):
        service = DebuggerService(HeldTarget(des_factory))
        sid = attach(service)
        frame = {"op": "break-set", "session": sid,
                 "predicate": "enter(receive_token)@p2 ^3"}
        if defer:
            service.handle(frame)
            service.handle({"op": "spawn", "session": sid})
        else:
            service.handle({"op": "spawn", "session": sid})
            service.handle(frame)
        reply = service.handle({"op": "wait-halt", "session": sid,
                                "timeout": 5})
        assert reply["stopped"]
        return service.handle({"op": "inspect", "session": sid,
                               "process": "p2"})["state"]

    assert halt_state(defer=True) == halt_state(defer=False)


def test_clear_while_pending_sticks_across_spawn():
    service = DebuggerService(HeldTarget(des_factory))
    sid = attach(service)
    reply = service.handle({"op": "break-set", "session": sid,
                            "predicate": "enter(receive_token)@p1"})
    service.handle({"op": "break-clear", "session": sid,
                    "bp_id": reply["bp_id"]})

    spawned = service.handle({"op": "spawn", "session": sid})
    assert spawned["armed"] == []
    halted = service.handle({"op": "wait-halt", "session": sid, "timeout": 5})
    # Nothing armed, so the ring just runs out of hops without stopping.
    assert halted["ok"] and halted["stopped"] is False
    listing = service.handle({"op": "break-list", "session": sid})
    assert listing["breakpoints"][0]["history"] == ["pending", "cleared"]


def test_duplicate_pending_registrations_arm_once():
    service = DebuggerService(HeldTarget(des_factory))
    sid = attach(service)
    first = service.handle({"op": "break-set", "session": sid,
                            "predicate": "enter(receive_token)@p1 ^2"})
    second = service.handle({"op": "break-set", "session": sid,
                             "predicate": "enter(receive_token)@p1 ^2"})
    assert first["bp_id"] == second["bp_id"]

    spawned = service.handle({"op": "spawn", "session": sid})
    assert len(spawned["armed"]) == 1
    # Exactly one linked predicate was armed on the session underneath.
    surface = service.target.surface()
    assert len(surface.session._breakpoints) == 1


# -- surviving a recovery incarnation -----------------------------------------


def test_pending_and_armed_breakpoints_survive_recovery(tmp_path):
    """Kill a member, let the supervisor replace the cluster, and check
    the registry re-armed on the new incarnation: the armed record gets a
    fresh lp_id, the pending one (naming a process that never exists)
    stays pending, and the cleared one stays cleared."""
    registry = BreakpointRegistry()
    incarnations = []

    def rearm(session):
        incarnations.append(session)
        registry.rearm(DistributedSurface(session))

    params = {"n": 3, "max_hops": 100_000, "hold_time": 0.2}
    sup = ClusterSupervisor("token_ring", params, seed=11,
                            store=str(tmp_path), on_incarnation=rearm)
    with sup:
        armed = registry.register("enter(receive_token)@p1",
                                  surface=DistributedSurface(sup.session))
        pending = registry.register("enter(receive_token)@p9")
        cleared = registry.register("state(last_value>3)@p0",
                                    surface=DistributedSurface(sup.session))
        registry.clear(cleared.bp_id,
                       surface=DistributedSurface(sup.session))
        first_lp = armed.lp_id
        assert armed.state is BreakpointState.ARMED

        sup.session.kill("p1")
        deadline = time.time() + 5.0
        while sup.session.alive("p1") and time.time() < deadline:
            time.sleep(0.05)
        event = sup.recover()
        assert event.incarnation == 1

        # The hook ran at initial launch (registry still empty — a no-op)
        # and again on the replacement session, where it re-armed.
        assert len(incarnations) == 2
        assert armed.state is BreakpointState.ARMED
        assert armed.lp_id is not None and armed.history.count("armed") == 2
        assert pending.state is BreakpointState.PENDING
        assert cleared.state is BreakpointState.CLEARED

        # The re-armed predicate is live on the new cluster: it fires.
        session = sup.session
        stopped = session.run_until_stopped(timeout=15.0)
        assert stopped, "re-armed breakpoint never halted the new cluster"
        hits = {hit.marker.lp_id for hit in session.breakpoint_hits()}
        assert armed.lp_id in hits
        assert first_lp == 1  # old id belonged to the dead incarnation
