"""Every example in examples/ must run clean — they are the documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 11
