"""Conformance: the socket backend agrees with the DES backend.

The distributed backend runs the *same* agents over a completely
different substrate — OS processes and TCP instead of a simulated
kernel. No shared event log exists across backends, so agreement is
checked on substrate-independent facts:

* workload conservation laws hold in the collected global state
  (tokens, pipeline items, chatter messages — nothing invented, nothing
  lost by the cut);
* every collected channel is marker-delimited (``complete``);
* every §2.2.4 halt path starts at ``d`` and walks real edges of the
  extended topology;
* the halt generation costs exactly ``|channels|`` halt markers on both
  backends — each process forwards on all outgoing channels exactly
  once, a count the paper's algorithm fixes independently of timing.
"""

import time

import pytest

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

from repro.analysis.metrics import message_overhead
from repro.debugger.session import DebugSession
from repro.distributed.session import DistributedDebugSession
from repro.distributed.spec import build_user_program
from repro.util.ids import ChannelId

WORKLOADS = {
    "token_ring": {"n": 4, "max_hops": 100_000, "hold_time": 0.5},
    "pipeline": {"stages": 2, "items": 100_000, "tick": 0.5},
    "infrequent": {"cluster_size": 2, "budget": 100_000, "tick": 0.5},
}


def conservation_violation(workload: str, state) -> str:
    """Empty string if the workload's conservation law holds in ``state``."""
    states = {name: snap.state for name, snap in state.processes.items()}
    pending = state.total_pending_messages()
    if workload == "token_ring":
        held = sum(1 for s in states.values() if s.get("holding"))
        total = held + pending
        return "" if total == 1 else f"{total} tokens (held {held} + {pending} in flight)"
    if workload == "pipeline":
        produced = states["producer"]["produced"]
        consumed = states["consumer"]["consumed"]
        total = consumed + pending
        return "" if produced == total else (
            f"produced {produced} != consumed {consumed} + {pending} in flight"
        )
    if workload == "infrequent":
        sent = sum(s.get("sent", 0) for s in states.values())
        received = sum(s.get("received", 0) for s in states.values())
        total = received + pending
        return "" if sent == total else (
            f"sent {sent} != received {received} + {pending} in flight"
        )
    raise AssertionError(f"no conservation law for {workload}")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_distributed_halt_is_consistent_and_marker_exact(workload):
    params = WORKLOADS[workload]
    with DistributedDebugSession(workload, params, seed=13) as session:
        time.sleep(0.8)
        report = session.halt_with_watchdog(timeout=20.0, probe_grace=3.0)
        assert report.complete, report.describe()
        state = session.collect_global_state(timeout=20.0)

        # 1. Nothing invented, nothing lost across the cut.
        violation = conservation_violation(workload, state)
        assert not violation, violation

        # 2. Every channel in the cut is marker-delimited.
        assert all(cs.complete for cs in state.channels.values())
        assert set(state.processes) == set(session.spec.user_names)

        # 3. Halt paths are rooted at d and walk real extended-topology
        #    edges (§2.2.4's halting-order evidence).
        edges = {ChannelId.parse(c) for c in session.spec.channels}
        paths = session.halt_paths()
        assert set(paths) == set(session.spec.user_names)
        for process, path in paths.items():
            assert path[0] == session.debugger_name
            assert path[-1] == process
            for src, dst in zip(path, path[1:]):
                assert ChannelId(src, dst) in edges, (
                    f"{process} claims marker hop {src}->{dst}, "
                    "not an extended-topology channel"
                )
    # 4. Marker economics, counted across the whole cluster after the
    #    children reported their final channel stats.
    totals = session.cluster_message_totals()
    assert totals.get("halt_marker", 0) == len(session.spec.channels)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_des_backend_agrees_on_marker_count_and_conservation(workload):
    params = WORKLOADS[workload]
    topology, processes = build_user_program(workload, params)
    extended_channels = len(topology.with_debugger("d").channels)
    # The same count the distributed run is held to above.
    from repro.distributed.spec import ClusterSpec

    assert extended_channels == len(
        ClusterSpec.plan(workload, params, seed=13).channels
    )

    session = DebugSession(topology, processes, seed=13)
    session.system.run(until=20.0)
    session.halt()
    outcome = session.run()
    assert outcome.stopped
    state = session.global_state()

    violation = conservation_violation(workload, state)
    assert not violation, violation
    assert set(state.processes) == set(topology.processes)
    assert message_overhead(session.system).by_kind.get(
        "halt_marker", 0
    ) == extended_channels

    paths = session.halt_paths()
    edges = set(topology.with_debugger("d").channels)
    for process, path in paths.items():
        assert path[0] == "d" and path[-1] == process
        for src, dst in zip(path, path[1:]):
            assert ChannelId(src, dst) in edges


def test_crash_fault_conformance_conservation_after_recovery(tmp_path):
    """The same event-counted crash names the same victim on both
    substrates (local event counts are substrate-independent), and on the
    distributed backend the recovery supervisor then rolls the cluster
    back to a consistent cut where the conservation law holds again."""
    import time as _time

    from repro.debugger.session import DebugSession as _DES
    from repro.faults.plan import FaultPlan
    from repro.recovery.invariants import (
        conservation_violation as law_violation,
        validator,
    )
    from repro.recovery.supervisor import ClusterSupervisor

    params = {"n": 3, "max_hops": 100_000, "hold_time": 0.2}
    plan = FaultPlan(seed=21).with_crash("p1", after_events=60)

    # DES reference run: the plan deterministically kills p1 and only p1.
    topology, processes = build_user_program("token_ring", params)
    des = _DES(topology, processes, seed=21, fault_plan=plan)
    des.system.run(until=120.0)
    assert des.system.crashed_process_names() == ("p1",)

    # Distributed run under supervision: same victim, then recovery, and
    # the post-recovery cut satisfies the same conservation law the DES
    # states are held to.
    sup = ClusterSupervisor(
        "token_ring", params, seed=21, fault_plan=plan,
        store=str(tmp_path), validate=validator("token_ring", params),
    )
    with sup:
        deadline = _time.time() + 20.0
        while not sup.poll() and _time.time() < deadline:
            _time.sleep(0.05)
        assert sup.poll() == ("p1",), "fault plan victim differs across backends"

        event = sup.recover()
        assert event.victims == ("p1",)
        _time.sleep(0.4)
        saved = sup.checkpoint(timeout=10.0, probe_grace=2.0)
        assert saved is not None
        state = sup.store.load(saved[0])
        assert set(state.processes) == {"p0", "p1", "p2"}
        assert not law_violation("token_ring", state, params)
        assert all(cs.complete for cs in state.channels.values())
