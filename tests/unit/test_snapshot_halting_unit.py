"""Unit-level tests of the snapshot and halting algorithms on tiny systems."""

import pytest

from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator, HaltMarker
from repro.network.latency import FixedLatency
from repro.network.topology import ring
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.snapshot import SnapshotCoordinator
from repro.util.errors import HaltingError, SnapshotError
from repro.workloads import token_ring


class Idle(Process):
    """Does nothing — for marker-flow-only scenarios."""


def idle_ring(n=3, seed=0):
    names = [f"p{i}" for i in range(n)]
    topo = ring(names)
    return System(topo, {name: Idle() for name in names},
                  seed=seed, latency=FixedLatency(1.0))


class TestHaltMarker:
    def test_extended_by_appends(self):
        marker = HaltMarker(halt_id=1)
        extended = marker.extended_by("a").extended_by("b")
        assert extended.path == ("a", "b")
        assert extended.halt_id == 1

    def test_str(self):
        assert "fresh" in str(HaltMarker(halt_id=2))
        assert "a -> b" in str(HaltMarker(halt_id=2, path=("a", "b")))


class TestHaltingOnIdleRing:
    def test_markers_flood_and_all_halt(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        assert coordinator.all_halted()
        assert coordinator.halt_order[0] == "p0"
        # Ring flood order is the ring order.
        assert coordinator.halt_order == ["p0", "p1", "p2"]

    def test_halt_paths_record_route(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        report = coordinator.halting_order_report()
        assert report["p1"] == ("p0",)
        assert report["p2"] == ("p0", "p1")

    def test_all_last_halt_ids_equal(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0", "p2"])  # simultaneous initiation
        system.run_to_quiescence()
        ids = {agent.last_halt_id for agent in coordinator.agents.values()}
        assert ids == {1}

    def test_stale_marker_ignored_after_resume(self):
        """E12: markers from generation 1 left in channels must not re-halt
        processes resumed into generation 2."""
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run(max_events=2)  # p1 not yet halted
        # Inject a stale duplicate of generation 1 toward p1.
        agent = coordinator.agents["p0"]
        system.run_to_quiescence()
        assert coordinator.all_halted()
        coordinator.resume_all()
        # Old marker re-sent (simulating a late duplicate from gen 1).
        from repro.network.message import MessageKind

        system.controller("p0").send_control(
            system.outgoing_channels("p0")[0],
            MessageKind.HALT_MARKER,
            HaltMarker(halt_id=1, path=("p0",)),
        )
        system.run_to_quiescence()
        assert not system.controller("p1").halted
        assert agent.last_halt_id == 1

    def test_initiate_while_halted_rejected(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        with pytest.raises(HaltingError):
            coordinator.agents["p0"].initiate()

    def test_collect_before_done_raises(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        # No run: only p0 halted so far.
        with pytest.raises(HaltingError, match="not all processes halted"):
            coordinator.collect()
        partial = coordinator.collect(require_all=False)
        assert set(partial.processes) == {"p0"}

    def test_resume_all_clears_halted(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p1"])
        system.run_to_quiescence()
        coordinator.resume_all()
        assert not system.controller("p0").halted
        assert coordinator.halt_order == []

    def test_second_generation_after_resume(self):
        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        coordinator.resume_all()
        coordinator.initiate(["p1"])
        system.run_to_quiescence()
        assert coordinator.all_halted()
        ids = {agent.last_halt_id for agent in coordinator.agents.values()}
        assert ids == {2}


class TestSnapshotOnIdleRing:
    def test_snapshot_completes_with_empty_channels(self):
        system = idle_ring()
        coordinator = SnapshotCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        assert coordinator.is_complete()
        state = coordinator.collect()
        assert state.total_pending_messages() == 0
        assert set(state.processes) == {"p0", "p1", "p2"}

    def test_collect_before_complete_raises(self):
        system = idle_ring()
        coordinator = SnapshotCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        with pytest.raises(SnapshotError, match="incomplete"):
            coordinator.collect()

    def test_repeated_generations(self):
        system = idle_ring()
        coordinator = SnapshotCoordinator(system)
        system.start()
        for expected_gen in (1, 2, 3):
            coordinator.initiate(["p0"])
            system.run_to_quiescence()
            state = coordinator.collect()
            assert state.generation == expected_gen

    def test_initiate_with_stale_id_rejected(self):
        system = idle_ring()
        coordinator = SnapshotCoordinator(system)
        system.start()
        coordinator.initiate(["p0"])
        system.run_to_quiescence()
        with pytest.raises(SnapshotError):
            coordinator.agents["p0"].initiate(1)  # id 1 already used

    def test_snapshot_does_not_perturb_logical_behaviour(self):
        """§5's "minimal change" claim, testable half: a snapshot may shift
        *timing* (markers occupy FIFO channels ahead of later data — that is
        physical), but the program's logical history — which events, in
        which per-process order, with which payloads — is unchanged."""
        def run(with_snapshot):
            system = build_system(lambda: token_ring.build(n=3, max_hops=20), 4)
            if with_snapshot:
                coordinator = SnapshotCoordinator(system)
                install_trigger(system, "p1", 5,
                                lambda: coordinator.initiate(["p1"]))
            system.run_to_quiescence()
            return [
                (e.process, e.kind.value, e.detail, e.local_seq)
                for e in system.log
            ], {n: system.state_of(n) for n in system.user_process_names}

        plain_events, plain_states = run(False)
        observed_events, observed_states = run(True)
        assert plain_events == observed_events
        assert plain_states == observed_states


class TestHaltedChannelContents:
    def test_buffered_messages_and_closed_channels(self):
        system = build_system(lambda: token_ring.build(n=4, max_hops=50), 2)
        coordinator = HaltingCoordinator(system)
        install_trigger(system, "p2", 6, lambda: coordinator.initiate(["p2"]))
        system.run_to_quiescence()
        state = coordinator.collect()
        # Every buffered channel was terminated by its halt marker.
        for channel_state in state.channels.values():
            assert channel_state.complete
        # Process states carry the §2.2.4 path metadata.
        for snap in state.processes.values():
            assert "halt_path" in snap.meta


class TestRehaltAdoptsNewerGeneration:
    """A frozen process that sees a newer-generation marker (its earlier
    notification or resume was lost — e.g. a partition ate it) must adopt
    the generation instead of crashing on a double halt."""

    def test_marker_at_frozen_process_rehalt(self):
        from repro.network.message import Envelope, MessageKind
        from repro.util.ids import ChannelId

        system = idle_ring()
        coordinator = HaltingCoordinator(system)
        system.start()
        coordinator.initiate(["p0"], halt_id=1)
        system.run_to_quiescence()
        agent = coordinator.agents["p1"]
        controller = system.controller("p1")
        assert controller.halted
        snap_before = controller.halted_snapshot
        assert snap_before.meta["halt_id"] == 1
        assert controller.closed_channels

        notified = []
        agent.notify_on_halt(lambda a: notified.append(a.controller.name))
        envelope = Envelope(
            channel=ChannelId("p0", "p1"), kind=MessageKind.HALT_MARKER,
            payload=HaltMarker(halt_id=2, path=("p0",)),
            send_time=0.0, seq=999,
        )
        agent.on_control(envelope)

        # Still frozen, same snapshot object (it ran nothing in between),
        # but the generation metadata moved on and it re-notified.
        assert controller.halted
        assert agent.last_halt_id == 2
        assert controller.halted_snapshot is snap_before
        assert snap_before.meta["halt_id"] == 2
        assert snap_before.meta["halt_path"] == ["p0", "p1"]
        assert notified == ["p1"]
        # Generation-1 channel closures are stale; only the channel that
        # delivered the new marker is drained for generation 2 so far.
        assert controller.closed_channels == {ChannelId("p0", "p1")}

    def test_rehalt_requires_a_halted_controller(self):
        from repro.util.errors import RuntimeStateError

        system = idle_ring()
        system.start()
        controller = system.controller("p0")
        with pytest.raises(RuntimeStateError, match="not halted"):
            controller.rehalt(halt_id=1)
