"""Round-trip coverage for every registered payload type.

The wire protocol's :data:`WIRE_DATACLASSES` table is the complete list of
payloads allowed across process boundaries. These tests keep it honest:

* every registered type has a sample here and survives
  ``decode(json(encode(x))) == x`` exactly — adding a type to the registry
  without adding a sample fails the coverage test;
* trace serialization (the lossy archival path) accepts the same payloads
  without crashing, degrading unrepresentable ones to ``__repr__`` stubs;
* event logs and global states built from those payloads round-trip
  through their dict forms.
"""

import json

import pytest

from repro.breakpoints.detector import PredicateMarker, StageHit
from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
)
from repro.debugger.commands import (
    BreakpointHit,
    HaltNotification,
    PingCommand,
    PongNotice,
    ResumeCommand,
    SatisfactionNotice,
    StateReport,
    StateRequest,
    StepCommand,
    StepReport,
    UnwatchCommand,
    WatchCommand,
)
from repro.distributed.protocol import (
    WIRE_DATACLASSES,
    decode_payload,
    encode_payload,
)
from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.halting.markers import HaltMarker
from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.snapshot.chandy_lamport import SnapshotMarker
from repro.snapshot.state import ChannelState, GlobalState
from repro.trace.serialize import (
    event_from_dict,
    event_to_dict,
    log_from_dict,
    log_to_dict,
    state_from_dict,
    state_to_dict,
)
from repro.util.ids import ChannelId

_SP = SimplePredicate(process="p0", kind=EventKind.STATE_CHANGE, detail="hops",
                      state=StateQuery(key="hops", op=">=", value=3), repeat=2)
_SP2 = SimplePredicate(process="p1", kind=EventKind.RECEIVE)
_DP = DisjunctivePredicate(terms=(_SP, _SP2))
_LP = LinkedPredicate(stages=(_DP, DisjunctivePredicate(terms=(_SP2,))))
_HIT = StageHit(stage_index=0, process="p0", eid=7, lamport=9, time=1.5,
                term=str(_SP))
_SNAPSHOT = ProcessStateSnapshot(
    process="p1", state={"holding": True, "hops": 4}, local_seq=11,
    lamport=17, vector=(3, 11, 0), vector_index=1, time=6.25,
    terminated=False, meta={"note": "sample"},
)
_MARKER = PredicateMarker(lp_id=2, residual=_LP, stage_index=1,
                          trail=(_HIT,), route=("p1", "p2"), halt=False)

#: One representative instance per registered wire type. The coverage test
#: below fails if the registry gains a type without a sample here.
WIRE_SAMPLES = {
    "UserMessage": UserMessage(payload={"token": 5}, tag="token",
                               lamport=3, vector=(1, 0, 2)),
    "HaltMarker": HaltMarker(halt_id=4, path=("d", "p0", "p1")),
    "SnapshotMarker": SnapshotMarker(snapshot_id=6),
    "PredicateMarker": _MARKER,
    "StageHit": _HIT,
    "LinkedPredicate": _LP,
    "DisjunctivePredicate": _DP,
    "ConjunctivePredicate": ConjunctivePredicate(terms=(_SP, _SP2)),
    "SimplePredicate": _SP,
    "StateQuery": StateQuery(key="balance", op="<", value=0),
    "ProcessStateSnapshot": _SNAPSHOT,
    "ResumeCommand": ResumeCommand(generation=2),
    "StateRequest": StateRequest(request_id=9, include_channels=False),
    "WatchCommand": WatchCommand(watch_id=1, term_index=0, term=_SP),
    "UnwatchCommand": UnwatchCommand(watch_id=1),
    "StepCommand": StepCommand(step_id=5, channel="p0->p1"),
    "PingCommand": PingCommand(ping_id=31),
    "StateReport": StateReport(
        request_id=9, process="p1", snapshot=_SNAPSHOT, halted=True,
        pending={"p0->p1": (UserMessage(payload=1),)},
        closed_channels=("p0->p1",),
    ),
    "BreakpointHit": BreakpointHit(process="p2", marker=_MARKER, time=8.0),
    "HaltNotification": HaltNotification(process="p2", halt_id=4,
                                         path=("d", "p2"), time=8.5),
    "PongNotice": PongNotice(ping_id=31, process="p0", halted=False,
                             time=2.0),
    "StepReport": StepReport(step_id=5, process="p1", delivered=True,
                             channel="p0->p1", detail="wire(+7)",
                             remaining=2, time=9.25),
    "SatisfactionNotice": SatisfactionNotice(watch_id=1, term_index=0,
                                             hit=_HIT, vector=(4, 1, 0),
                                             vector_index=0),
}


def test_every_registered_wire_type_has_a_sample():
    assert set(WIRE_SAMPLES) == set(WIRE_DATACLASSES)


@pytest.mark.parametrize("name", sorted(WIRE_DATACLASSES))
def test_wire_payload_roundtrips_exactly(name):
    sample = WIRE_SAMPLES[name]
    encoded = encode_payload(sample)
    over_the_wire = json.loads(json.dumps(encoded))
    assert decode_payload(over_the_wire) == sample


@pytest.mark.parametrize("name", sorted(WIRE_DATACLASSES))
def test_trace_serialization_never_chokes_on_wire_payloads(name):
    """The archival path is lossy by contract but must accept anything the
    wire carries: dataclass payloads degrade to ``__repr__`` stubs."""
    event = Event(
        eid=1, process="p0", kind=EventKind.SEND, time=1.0, lamport=1,
        vector=(1,), vector_index=0, message=WIRE_SAMPLES[name],
        channel=ChannelId.parse("p0->p1"), detail="x", local_seq=1,
    )
    data = json.loads(json.dumps(event_to_dict(event)))
    back = event_from_dict(data)
    assert back.eid == event.eid and back.kind is event.kind
    assert back.message is not None  # recorded as *something*, never dropped


def test_event_log_roundtrip_preserves_order_and_clocks():
    log = EventLog()
    for i in range(4):
        log.append(Event(
            eid=i, process=f"p{i % 2}", kind=EventKind.STATE_CHANGE,
            time=float(i), lamport=i + 1, vector=(i, 2 * i),
            vector_index=i % 2, message={"step": i}, channel=None,
            detail=None, local_seq=i,
        ))
    back = log_from_dict(json.loads(json.dumps(log_to_dict(log))))
    assert [e.eid for e in back] == [e.eid for e in log]
    assert [(e.lamport, e.vector) for e in back] == \
        [(e.lamport, e.vector) for e in log]


def test_global_state_roundtrip_with_buffered_channel_messages():
    state = GlobalState(
        origin="halting",
        processes={"p1": _SNAPSHOT},
        channels={
            ChannelId.parse("p0->p1"): ChannelState(
                channel=ChannelId.parse("p0->p1"),
                messages=(UserMessage(payload={"token": 5}, tag="token",
                                      lamport=3, vector=(1, 0)),),
                complete=True,
            ),
        },
        generation=4,
        meta={"halt_order": ["p1"]},
    )
    back = state_from_dict(json.loads(json.dumps(state_to_dict(state))))
    assert back.origin == state.origin
    assert back.generation == state.generation
    assert back.processes["p1"].state == _SNAPSHOT.state
    channel = ChannelId.parse("p0->p1")
    assert back.channels[channel].complete
    assert back.channels[channel].messages[0].payload == {"token": 5}
    assert back.channels[channel].messages[0].vector == (1, 0)
