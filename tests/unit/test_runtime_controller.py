"""Unit tests for the runtime layer: context, controller, system mechanics."""

import pytest

from repro.events.event import EventKind
from repro.network.latency import FixedLatency
from repro.network.topology import Topology, ring
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.util.errors import ConfigurationError, RuntimeStateError, TopologyError
from repro.util.ids import ChannelId


class Echo(Process):
    """Replies to every message; used to poke the controller mechanics."""

    def on_start(self, ctx):
        ctx.state["received"] = 0

    def on_message(self, ctx, src, payload):
        ctx.state["received"] = ctx.state["received"] + 1
        if payload == "ping":
            ctx.send(src, "pong", tag="pong")


class Scripted(Process):
    """Runs a user-supplied start script against its context."""

    def __init__(self, script=None):
        self.script = script or (lambda ctx: None)

    def on_start(self, ctx):
        self.script(ctx)


def pair_system(a=None, b=None, seed=0):
    topo = ring(["a", "b"], bidirectional=True)
    return System(
        topo,
        {"a": a or Echo(), "b": b or Echo()},
        seed=seed,
        latency=FixedLatency(1.0),
    )


class TestSystemConstruction:
    def test_missing_process_rejected(self):
        topo = ring(["a", "b"])
        with pytest.raises(ConfigurationError, match="no Process supplied"):
            System(topo, {"a": Echo()})

    def test_extra_process_rejected(self):
        topo = ring(["a", "b"])
        with pytest.raises(ConfigurationError, match="unknown names"):
            System(topo, {"a": Echo(), "b": Echo(), "ghost": Echo()})

    def test_double_start_rejected(self):
        system = pair_system()
        system.start()
        with pytest.raises(ConfigurationError):
            system.start()


class TestEventsAndState:
    def test_state_changes_recorded(self):
        system = pair_system(a=Scripted(lambda ctx: ctx.state.__setitem__("k", 1)))
        system.run_to_quiescence()
        events = system.log.find(
            process="a", kind=EventKind.STATE_CHANGE, detail="k"
        )
        assert len(events) == 1
        assert events[0].attrs["value"] == 1

    def test_state_update_and_delete(self):
        def script(ctx):
            ctx.state.update({"x": 1, "y": 2})
            del ctx.state["x"]

        system = pair_system(a=Scripted(script))
        system.run_to_quiescence()
        changes = system.log.find(process="a", kind=EventKind.STATE_CHANGE)
        assert len(changes) == 3
        assert changes[-1].attrs["deleted"] is True
        assert "x" not in system.state_of("a")

    def test_procedure_entry_exit_events(self):
        def script(ctx):
            with ctx.procedure("setup"):
                ctx.mark("inside")

        system = pair_system(a=Scripted(script))
        system.run_to_quiescence()
        kinds = [
            e.kind for e in system.log.for_process("a")
            if e.detail in ("setup", "inside")
        ]
        assert kinds == [
            EventKind.PROCEDURE_ENTRY,
            EventKind.STATE_CHANGE,
            EventKind.PROCEDURE_EXIT,
        ]

    def test_send_receive_events_match(self):
        system = pair_system(a=Scripted(lambda ctx: ctx.send("b", "ping", tag="ping")))
        system.run_to_quiescence()
        sends = system.log.find(process="a", kind=EventKind.SEND)
        receives = system.log.find(process="b", kind=EventKind.RECEIVE)
        assert len(sends) == 1 and len(receives) == 1
        assert sends[0].message == receives[0].message == "ping"
        assert sends[0].happened_before(receives[0])

    def test_send_to_nonneighbor_rejected(self):
        system = pair_system(a=Scripted(lambda ctx: ctx.send("ghost", 1)))
        with pytest.raises(TopologyError):
            system.run_to_quiescence()


class TestTimers:
    def test_timer_fires_with_payload(self):
        seen = []

        class Timed(Process):
            def on_start(self, ctx):
                ctx.set_timer("tick", 2.0, payload={"n": 1})

            def on_timer(self, ctx, name, payload):
                seen.append((name, payload, ctx.now))

        system = pair_system(a=Timed())
        system.run_to_quiescence()
        assert seen == [("tick", {"n": 1}, 2.0)]

    def test_timer_cancel(self):
        fired = []

        class Canceller(Process):
            def on_start(self, ctx):
                ctx.set_timer("doomed", 5.0)
                ctx.set_timer("alive", 1.0)

            def on_timer(self, ctx, name, payload):
                fired.append(name)
                if name == "alive":
                    assert ctx.cancel_timer("doomed")
                    assert not ctx.cancel_timer("doomed")

        system = pair_system(a=Canceller())
        system.run_to_quiescence()
        assert fired == ["alive"]

    def test_timer_rearm_replaces(self):
        fired = []

        class Rearm(Process):
            def on_start(self, ctx):
                ctx.set_timer("t", 10.0, payload="old")
                ctx.set_timer("t", 1.0, payload="new")

            def on_timer(self, ctx, name, payload):
                fired.append(payload)

        system = pair_system(a=Rearm())
        system.run_to_quiescence()
        assert fired == ["new"]


class TestTermination:
    def test_terminated_process_ignores_traffic(self):
        class Quitter(Process):
            def on_start(self, ctx):
                ctx.state["msgs"] = 0
                ctx.terminate()

            def on_message(self, ctx, src, payload):
                ctx.state["msgs"] = ctx.state["msgs"] + 1

        system = pair_system(
            a=Scripted(lambda ctx: ctx.send("b", "hello")), b=Quitter()
        )
        system.run_to_quiescence()
        assert system.state_of("b")["msgs"] == 0
        events = system.log.find(process="b", kind=EventKind.PROCESS_TERMINATED)
        assert len(events) == 1

    def test_actions_after_terminate_rejected(self):
        def script(ctx):
            ctx.terminate()
            ctx.send("b", "zombie")

        system = pair_system(a=Scripted(script))
        with pytest.raises(RuntimeStateError):
            system.run_to_quiescence()


class TestHaltMechanics:
    def test_halt_freezes_and_buffers(self):
        system = pair_system(
            a=Scripted(lambda ctx: ctx.send("b", "ping", tag="ping"))
        )
        controller = system.controller("b")
        controller.halt(reason="test")
        system.run_to_quiescence()
        assert system.state_of("b")["received"] == 0
        buffered = controller.halt_buffers[ChannelId("a", "b")]
        assert len(buffered) == 1

    def test_resume_replays_buffered(self):
        system = pair_system(
            a=Scripted(lambda ctx: ctx.send("b", "ping", tag="ping"))
        )
        controller = system.controller("b")
        controller.halt()
        system.run_to_quiescence()
        controller.resume()
        system.run_to_quiescence()
        assert system.state_of("b")["received"] == 1
        # The echo reply went out after resume and reached "a".
        pongs = system.log.find(process="a", kind=EventKind.RECEIVE, detail="pong")
        assert len(pongs) == 1

    def test_double_halt_rejected(self):
        system = pair_system()
        controller = system.controller("a")
        system.start()
        controller.halt()
        with pytest.raises(RuntimeStateError):
            controller.halt()

    def test_resume_unhalted_rejected(self):
        system = pair_system()
        system.start()
        with pytest.raises(RuntimeStateError):
            system.controller("a").resume()

    def test_halted_timers_deferred_to_resume(self):
        fired = []

        class Timed(Process):
            def on_start(self, ctx):
                ctx.set_timer("tick", 2.0)

            def on_timer(self, ctx, name, payload):
                fired.append(ctx.now)

        system = pair_system(a=Timed())
        controller = system.controller("a")
        system.start()
        controller.halt()
        system.run_to_quiescence()
        assert fired == []
        controller.resume()
        system.run_to_quiescence()
        assert len(fired) == 1

    def test_capture_state_deep_copies(self):
        system = pair_system()
        system.start()
        controller = system.controller("a")
        controller.ctx.state["nested"] = {"inner": [1, 2]}
        snapshot = controller.capture_state()
        controller.ctx.state["nested"]["inner"].append(3)
        assert snapshot.state["nested"]["inner"] == [1, 2]


class TestDynamicChannels:
    def test_create_and_use_channel(self):
        topo = Topology().add_process("a").add_process("b")
        topo.add_channel("b", "a")

        def script(ctx):
            ctx.create_channel("b")
            ctx.send("b", "hi")

        system = System(topo, {"a": Scripted(script), "b": Echo()},
                        latency=FixedLatency(1.0))
        system.run_to_quiescence()
        assert system.state_of("b")["received"] == 1
        created = system.log.find(process="a", kind=EventKind.CHANNEL_CREATED)
        assert len(created) == 1

    def test_destroy_channel_blocks_new_sends(self):
        def script(ctx):
            ctx.send("b", "first")
            ctx.destroy_channel("b")
            ctx.send("b", "second")  # must fail

        system = pair_system(a=Scripted(script))
        with pytest.raises(TopologyError):
            system.run_to_quiescence()

    def test_destroyed_channel_delivers_in_flight(self):
        def script(ctx):
            ctx.send("b", "flying")
            ctx.destroy_channel("b")

        system = pair_system(a=Scripted(script))
        system.run_to_quiescence()
        assert system.state_of("b")["received"] == 1


class TestMessageTotals:
    def test_totals_by_kind(self):
        system = pair_system(a=Scripted(lambda ctx: ctx.send("b", "ping", tag="ping")))
        system.run_to_quiescence()
        totals = system.message_totals()
        assert totals["user"] == 2  # ping + pong
