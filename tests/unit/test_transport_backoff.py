"""Unit tests for the transport's seeded retry machinery (Backoff, dial)."""

import socket
import threading
import time

import pytest

from repro.distributed.transport import Backoff, dial
from repro.util.errors import RetryBudgetExceeded


# -- Backoff -------------------------------------------------------------------


def test_same_seed_reproduces_the_same_schedule():
    a = Backoff(seed="s1", base=0.05, factor=2.0, cap=1.0)
    b = Backoff(seed="s1", base=0.05, factor=2.0, cap=1.0)
    assert [a.next_delay() for _ in range(8)] == [
        b.next_delay() for _ in range(8)
    ]


def test_different_seeds_diverge():
    a = Backoff(seed="s1")
    b = Backoff(seed="s2")
    assert [a.next_delay() for _ in range(4)] != [
        b.next_delay() for _ in range(4)
    ]


def test_delays_grow_but_never_exceed_the_cap():
    backoff = Backoff(seed=7, base=0.05, factor=2.0, cap=0.4, jitter=0.0)
    delays = [backoff.next_delay() for _ in range(6)]
    assert delays[0] == pytest.approx(0.05)
    assert delays == sorted(delays)
    assert all(d <= 0.4 for d in delays)
    assert delays[-1] == pytest.approx(0.4)


def test_jitter_only_shortens():
    backoff = Backoff(seed=3, base=0.1, factor=1.0, cap=0.1, jitter=0.5)
    for _ in range(32):
        delay = backoff.next_delay()
        assert 0.05 <= delay <= 0.1


def test_retry_budget_exhausts():
    backoff = Backoff(seed=0, retries=3)
    assert not backoff.exhausted
    for _ in range(3):
        backoff.next_delay()
    assert backoff.exhausted
    with pytest.raises(RetryBudgetExceeded):
        backoff.next_delay()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base": 0.0},
        {"base": -0.1},
        {"factor": 0.5},
        {"cap": 0.01, "base": 0.05},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ],
)
def test_rejects_nonsense_parameters(kwargs):
    with pytest.raises(ValueError):
        Backoff(seed=0, **kwargs)


# -- dial ----------------------------------------------------------------------


def _free_port() -> int:
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def test_dial_raises_the_last_oserror_at_the_deadline():
    port = _free_port()  # nobody listens here
    with pytest.raises(OSError):
        dial(port, deadline=time.monotonic() + 0.3, retry_interval=0.02)


def test_dial_raises_once_the_retry_budget_is_spent():
    port = _free_port()
    backoff = Backoff(seed=1, base=0.01, cap=0.02, retries=2)
    with pytest.raises(OSError):
        dial(port, deadline=time.monotonic() + 30.0, backoff=backoff)
    assert backoff.exhausted


def test_dial_connects_once_a_late_listener_appears():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    accepted = []

    def serve() -> None:
        time.sleep(0.15)  # the peer binds late, as during a recovery restart
        listener.listen(1)
        conn, _ = listener.accept()
        accepted.append(conn)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    sock = dial(port, deadline=time.monotonic() + 5.0, retry_interval=0.02,
                seed="late-listener")
    try:
        assert sock.getpeername()[1] == port
    finally:
        sock.close()
        thread.join(timeout=5.0)
        for conn in accepted:
            conn.close()
        listener.close()
