"""Unit tests for the socket wire format and the payload registry.

The frame layer (:mod:`repro.distributed.wire`) and the payload codec
(:mod:`repro.distributed.protocol`) are the trust boundary of the
distributed backend: everything a peer can do to us arrives through
``recv_frame`` + ``decode_payload``. These tests pin the framing rules,
the round-trip exactness, and — most importantly — that the registry
refuses to instantiate anything it was not explicitly told about.
"""

import socket
import struct
import threading

import pytest

from repro.distributed import wire
from repro.distributed.protocol import (
    WIRE_DATACLASSES,
    decode_payload,
    encode_payload,
    envelope_from_wire,
    envelope_to_wire,
)
from repro.halting.markers import HaltMarker
from repro.network.message import Envelope, MessageKind
from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.util.codec import TAG
from repro.util.errors import WireClosed, WireError
from repro.util.ids import ChannelId


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


# -- framing -------------------------------------------------------------------


def test_frame_round_trip(pair):
    a, b = pair
    obj = {"frame": "ctl", "op": "ready", "n": 3, "names": ["p0", "p1"]}
    wire.send_frame(a, obj)
    assert wire.recv_frame(b) == obj


def test_frames_are_fifo(pair):
    a, b = pair
    for i in range(20):
        wire.send_frame(a, {"i": i})
    assert [wire.recv_frame(b)["i"] for i in range(20)] == list(range(20))


def test_oversize_send_refused(pair):
    a, _ = pair
    huge = {"blob": "x" * (wire.MAX_FRAME_BYTES + 1)}
    with pytest.raises(WireError, match="exceeds"):
        wire.send_frame(a, huge)


def test_oversize_announcement_refused(pair):
    a, b = pair
    # A corrupt/hostile peer announces a frame larger than the cap; the
    # reader must bail out instead of trying to allocate it.
    a.sendall(struct.pack(">I", wire.MAX_FRAME_BYTES + 1))
    with pytest.raises(WireError, match="corrupt or hostile"):
        wire.recv_frame(b)


def test_clean_eof_between_frames_is_wire_closed(pair):
    a, b = pair
    wire.send_frame(a, {"ok": 1})
    a.close()
    assert wire.recv_frame(b) == {"ok": 1}
    with pytest.raises(WireClosed):
        wire.recv_frame(b)


def test_eof_mid_frame_is_wire_error(pair):
    a, b = pair
    a.sendall(struct.pack(">I", 100) + b'{"partial"')
    a.close()
    with pytest.raises(WireError, match="mid-frame"):
        wire.recv_frame(b)


def test_non_json_and_non_object_frames_refused(pair):
    a, b = pair
    raw = b"\xff\xfe not json"
    a.sendall(struct.pack(">I", len(raw)) + raw)
    with pytest.raises(WireError, match="undecodable"):
        wire.recv_frame(b)
    a.sendall(struct.pack(">I", 7) + b'[1,2,3]')
    with pytest.raises(WireError, match="JSON object"):
        wire.recv_frame(b)


def test_large_frame_survives_chunked_reads(pair):
    a, b = pair
    obj = {"blob": "y" * 300_000}
    writer = threading.Thread(target=wire.send_frame, args=(a, obj))
    writer.start()
    assert wire.recv_frame(b) == obj
    writer.join()


# -- payload codec -------------------------------------------------------------


def test_registered_dataclass_round_trips():
    marker = HaltMarker(halt_id=3, path=("d", "p0"))
    assert decode_payload(encode_payload(marker)) == marker


def test_nested_snapshot_round_trips_exactly():
    snapshot = ProcessStateSnapshot(
        process="p1",
        state={"balance": 17, "log": [1, 2, 3], "who": ("a", "b")},
        local_seq=9,
        lamport=12,
        vector=(1, 2, 3),
        vector_index=1,
        time=4.25,
        terminated=False,
        meta={"halt_id": 2},
    )
    decoded = decode_payload(encode_payload(snapshot))
    assert decoded == snapshot
    # Exactness matters: tuples stay tuples, ints stay ints.
    assert isinstance(decoded.state["who"], tuple)
    assert isinstance(decoded.vector, tuple)


def test_unregistered_dataclass_refused_both_ways():
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class Rogue:
        cmd: str

    with pytest.raises(WireError, match="not registered"):
        encode_payload(Rogue(cmd="rm -rf /"))
    # Decoding a frame that *names* an unregistered class must refuse too:
    # registration is the security boundary (this is why it is not pickle).
    forged = {TAG: "dc", "type": "Rogue", "fields": {"cmd": "boom"}}
    with pytest.raises(WireError, match="unregistered dataclass"):
        decode_payload(forged)
    assert "Rogue" not in WIRE_DATACLASSES


def test_malformed_fields_and_unknown_tags_refused():
    with pytest.raises(WireError, match="malformed HaltMarker"):
        decode_payload({TAG: "dc", "type": "HaltMarker",
                        "fields": {"no_such_field": 1}})
    with pytest.raises(WireError, match="unregistered enum"):
        decode_payload({TAG: "enum", "type": "Sneaky", "value": 1})
    with pytest.raises(WireError, match="unknown wire tag"):
        decode_payload({TAG: "zip", "data": "?"})


# -- envelopes -----------------------------------------------------------------


def test_envelope_round_trips_over_a_real_socket(pair):
    a, b = pair
    envelope = Envelope(
        channel=ChannelId("p0", "p1"),
        kind=MessageKind.USER,
        payload=UserMessage(payload={"token": 5}, lamport=7, vector=(1, 0, 2)),
        send_time=1.5,
        seq=42,
        clock=(7, (1, 0, 2)),
    )
    wire.send_frame(a, envelope_to_wire(envelope))
    frame = wire.recv_frame(b)
    assert frame["frame"] == "env"
    rebuilt = envelope_from_wire(frame)
    assert rebuilt == envelope
    assert rebuilt.clock == (7, (1, 0, 2))


def test_control_envelope_round_trips():
    envelope = Envelope(
        channel=ChannelId("d", "p2"),
        kind=MessageKind.HALT_MARKER,
        payload=HaltMarker(halt_id=1, path=("d",)),
        send_time=0.25,
        seq=1,
        clock=None,
    )
    rebuilt = envelope_from_wire(envelope_to_wire(envelope))
    assert rebuilt == envelope
    assert rebuilt.kind is MessageKind.HALT_MARKER


def test_malformed_envelope_frame_refused():
    good = envelope_to_wire(
        Envelope(
            channel=ChannelId("p0", "p1"),
            kind=MessageKind.USER,
            payload=UserMessage(payload=1),
            send_time=0.0,
            seq=0,
            clock=None,
        )
    )
    missing = dict(good)
    del missing["channel"]
    with pytest.raises(WireError, match="malformed envelope"):
        envelope_from_wire(missing)
    bad_kind = dict(good)
    bad_kind["kind"] = "no-such-kind"
    with pytest.raises(WireError, match="malformed envelope"):
        envelope_from_wire(bad_kind)
