"""Unit tests for the fault-injection subsystem (plans and injectors)."""

import pytest

from repro.faults.injection import ChannelFaultInjector, injector_for
from repro.faults.plan import ChannelFaultSpec, CrashSpec, FaultPlan, StallSpec
from repro.util.errors import FaultError
from repro.util.ids import ChannelId


# -- plan validation ------------------------------------------------------------


@pytest.mark.parametrize("field", ["loss", "duplicate", "reorder", "ack_loss"])
@pytest.mark.parametrize("bad", [-0.1, 1.5, "high", float("nan")])
def test_spec_rejects_non_probabilities(field, bad):
    with pytest.raises(FaultError):
        ChannelFaultSpec(**{field: bad})


def test_spec_rejects_bad_reorder_delay():
    with pytest.raises(FaultError):
        ChannelFaultSpec(reorder_delay=(-1.0, 2.0))
    with pytest.raises(FaultError):
        ChannelFaultSpec(reorder_delay=(3.0, 1.0))


def test_crash_spec_requires_exactly_one_trigger():
    with pytest.raises(FaultError):
        CrashSpec(process="p0")
    with pytest.raises(FaultError):
        CrashSpec(process="p0", at_time=1.0, after_events=3)
    with pytest.raises(FaultError):
        CrashSpec(process="p0", at_time=-1.0)
    with pytest.raises(FaultError):
        CrashSpec(process="p0", after_events=0)
    CrashSpec(process="p0", at_time=1.0)
    CrashSpec(process="p0", after_events=1)


def test_stall_spec_validation():
    with pytest.raises(FaultError):
        StallSpec(process="p0", at_time=-1.0, duration=1.0)
    with pytest.raises(FaultError):
        StallSpec(process="p0", at_time=0.0, duration=0.0)


def test_plan_rejects_duplicate_crashes():
    with pytest.raises(FaultError):
        FaultPlan(crashes=(
            CrashSpec(process="p0", at_time=1.0),
            CrashSpec(process="p0", at_time=2.0),
        ))


def test_ack_loss_defaults_to_loss():
    assert ChannelFaultSpec(loss=0.3).effective_ack_loss == 0.3
    assert ChannelFaultSpec(loss=0.3, ack_loss=0.0).effective_ack_loss == 0.0
    assert ChannelFaultSpec().is_noop
    assert not ChannelFaultSpec(ack_loss=0.1).is_noop


def test_spec_for_falls_back_to_defaults():
    plan = FaultPlan(
        channel_defaults=ChannelFaultSpec(loss=0.1),
        channels={"a->b": ChannelFaultSpec(loss=0.9)},
    )
    assert plan.spec_for(ChannelId("a", "b")).loss == 0.9
    assert plan.spec_for(ChannelId("b", "a")).loss == 0.1


# -- serialization --------------------------------------------------------------


def test_plan_json_round_trip():
    plan = (
        FaultPlan(
            seed=42,
            channel_defaults=ChannelFaultSpec(loss=0.2, duplicate=0.1),
            channels={"a->b": ChannelFaultSpec(reorder=0.5, ack_loss=0.05)},
        )
        .with_crash("p1", at_time=30.0)
        .with_crash("p2", after_events=7)
        .with_stall("p3", at_time=5.0, duration=12.0)
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_from_malformed_json():
    with pytest.raises(FaultError):
        FaultPlan.from_json("not json {")
    with pytest.raises(FaultError):
        FaultPlan.from_dict({"crashes": [{"bogus": 1}]})


# -- injector determinism -------------------------------------------------------


def _decisions(injector, n=200):
    return [
        (injector.drop_frame(True), injector.duplicates(True),
         injector.extra_delay(True), injector.drop_ack(True))
        for _ in range(n)
    ]


def test_equal_plans_inject_identical_faults():
    plan = FaultPlan(seed=9, channel_defaults=ChannelFaultSpec(
        loss=0.3, duplicate=0.2, reorder=0.4))
    cid = ChannelId("a", "b")
    assert _decisions(injector_for(plan, cid)) == _decisions(injector_for(plan, cid))


def test_different_seeds_inject_different_faults():
    spec = ChannelFaultSpec(loss=0.3, duplicate=0.2, reorder=0.4)
    cid = ChannelId("a", "b")
    a = _decisions(injector_for(FaultPlan(seed=1, channel_defaults=spec), cid))
    b = _decisions(injector_for(FaultPlan(seed=2, channel_defaults=spec), cid))
    assert a != b


def test_control_traffic_does_not_perturb_user_stream():
    """Drawing control-class decisions between user draws must not change
    the user-frame fault pattern (the E2-comparability property)."""
    plan = FaultPlan(seed=5, channel_defaults=ChannelFaultSpec(loss=0.3))
    cid = ChannelId("a", "b")
    plain = injector_for(plan, cid)
    baseline = [plain.drop_frame(True) for _ in range(100)]

    mixed = injector_for(plan, cid)
    interleaved = []
    for _ in range(100):
        mixed.drop_frame(False)  # control frame decided in between
        interleaved.append(mixed.drop_frame(True))
    assert interleaved == baseline


def test_decisions_use_independent_streams():
    """Enabling duplication must not change which frames are lost."""
    cid = ChannelId("a", "b")
    loss_only = injector_for(
        FaultPlan(seed=3, channel_defaults=ChannelFaultSpec(loss=0.3)), cid)
    both = injector_for(
        FaultPlan(seed=3,
                  channel_defaults=ChannelFaultSpec(loss=0.3, duplicate=0.5)),
        cid)
    drops_a, drops_b = [], []
    for _ in range(100):
        drops_a.append(loss_only.drop_frame(True))
        loss_only.duplicates(True)
        drops_b.append(both.drop_frame(True))
        both.duplicates(True)
    assert drops_a == drops_b


def test_noop_injector_decides_nothing():
    injector = injector_for(FaultPlan(seed=1), ChannelId("a", "b"))
    assert injector.is_noop
    assert not injector.drop_frame(True)
    assert injector.duplicates(True) == 0
    assert injector.extra_delay(True) == 0.0
    assert not injector.drop_ack(True)


def test_duplicates_are_capped():
    injector = ChannelFaultInjector(
        ChannelId("a", "b"), ChannelFaultSpec(duplicate=1.0), seed=0)
    assert injector.duplicates(True) == 4


def test_reorder_delay_within_bounds():
    spec = ChannelFaultSpec(reorder=1.0, reorder_delay=(0.5, 3.0))
    injector = ChannelFaultInjector(ChannelId("a", "b"), spec, seed=0)
    for _ in range(100):
        assert 0.5 <= injector.extra_delay(True) <= 3.0


# -- plan composition edge cases ------------------------------------------------


def test_crash_and_stall_compose_on_the_same_process():
    """A process may stall *and* later crash — distinct fault kinds are
    not mutually exclusive, only duplicate crashes are."""
    plan = (FaultPlan(seed=4)
            .with_stall("p1", at_time=1.0, duration=2.0)
            .with_crash("p1", after_events=10))
    assert plan.crashed_processes() == ("p1",)
    assert [s.process for s in plan.stalls] == ["p1"]
    # The composed plan still round-trips.
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_overlapping_partition_windows_are_all_reported():
    plan = (FaultPlan(seed=0)
            .with_partition(("a->b",), at_time=1.0, duration=4.0)
            .with_partition(("a->b", "b->a"), at_time=3.0, duration=4.0))
    from repro.util.ids import ChannelId as _Cid
    assert plan.partition_windows(_Cid("a", "b")) == ((1.0, 5.0), (3.0, 7.0))
    assert plan.partition_windows(_Cid("b", "a")) == ((3.0, 7.0),)
    assert plan.partition_windows(_Cid("b", "c")) == ()


def test_partition_spec_validation():
    with pytest.raises(FaultError):
        FaultPlan().with_partition((), at_time=1.0, duration=1.0)
    with pytest.raises(FaultError):
        FaultPlan().with_partition(("a->b",), at_time=-0.5, duration=1.0)
    with pytest.raises(FaultError):
        FaultPlan().with_partition(("a->b",), at_time=1.0, duration=0.0)
    with pytest.raises(FaultError):
        FaultPlan().with_partition(("not a channel",), at_time=0.0,
                                   duration=1.0)


def test_identically_built_plans_serialize_identically():
    """Same builder calls + same seed => byte-identical to_dict, the
    property chaos campaigns lean on for reproducible reports."""
    import json as _json

    def build(seed):
        return (FaultPlan(seed=seed)
                .with_partition(("d->p1", "p1->d"), at_time=2.0, duration=3.0)
                .with_stall("p0", at_time=1.0, duration=0.5)
                .with_crash("p1", after_events=40))

    a = _json.dumps(build(7).to_dict(), sort_keys=True)
    b = _json.dumps(build(7).to_dict(), sort_keys=True)
    assert a == b
    assert build(7) == build(7)
    assert build(7) != build(8)
