"""Unit tests for the EDL abstract-event recognizer."""

import pytest

from repro.debugger import DebugSession
from repro.debugger.edl import EDLRecognizer
from repro.network.latency import UniformLatency
from repro.workloads import token_ring


def make_session(max_hops=60, seed=2):
    topo, processes = token_ring.build(n=3, max_hops=max_hops)
    return DebugSession(topo, processes, seed=seed,
                        latency=UniformLatency(0.4, 1.6))


class TestEDLRecognizer:
    def test_repeated_occurrences_via_rearm(self):
        session = make_session()
        recognizer = EDLRecognizer(session)
        recognizer.define("p1_gets_token", "enter(receive_token)@p1")
        # Poll in chunks so re-arming happens while the program runs.
        for _ in range(6):
            session.run(until=session.system.kernel.now + 10.0)
            recognizer.poll()
        session.run()
        recognizer.poll()
        count = recognizer.count("p1_gets_token")
        assert count >= 3
        occurrences = recognizer.occurrences_of("p1_gets_token")
        assert [o.occurrence for o in occurrences] == list(range(1, count + 1))

    def test_program_never_halts(self):
        session = make_session(max_hops=20)
        recognizer = EDLRecognizer(session)
        recognizer.define("hop", "enter(receive_token)@p2")
        outcome = session.run()
        assert not outcome.stopped
        # Ring ran to completion.
        total = sum(
            session.inspect(f"p{i}")["tokens_seen"] for i in range(3)
        )
        assert total == 21

    def test_multi_stage_abstract_event(self):
        session = make_session()
        recognizer = EDLRecognizer(session)
        recognizer.define(
            "round_trip",
            "enter(receive_token)@p1 -> enter(receive_token)@p2 -> enter(receive_token)@p0",
        )
        session.run()
        recognizer.poll()
        assert recognizer.count("round_trip") >= 1
        occurrence = recognizer.last_occurrence("round_trip")
        assert [h.process for h in occurrence.trail] == ["p1", "p2", "p0"]
        assert occurrence.completed_at > 0

    def test_duplicate_definition_rejected(self):
        session = make_session()
        recognizer = EDLRecognizer(session)
        recognizer.define("x", "recv@p0")
        with pytest.raises(ValueError, match="already defined"):
            recognizer.define("x", "recv@p1")

    def test_definitions_rendering(self):
        session = make_session()
        recognizer = EDLRecognizer(session)
        recognizer.define("x", "recv@p0 -> send@p1")
        assert recognizer.definitions() == {"x": "recv@p0 -> send@p1"}

    def test_edl_coexists_with_halting_breakpoint(self):
        """Monitoring predicates (halt=False) and a real breakpoint share
        the same agents without interfering."""
        session = make_session()
        recognizer = EDLRecognizer(session)
        recognizer.define("hop", "enter(receive_token)@p1")
        session.set_breakpoint("enter(receive_token)@p2 ^3")
        outcome = session.run()
        assert outcome.stopped  # the breakpoint halted the ring
        recognizer.poll()
        assert recognizer.count("hop") >= 1
        # The breakpoint's own hit was not consumed as an abstract event.
        assert session.inspect("p2")["tokens_seen"] == 3
