"""Unit tests for path-expression compilation and detection."""

import pytest

from repro.breakpoints import compile_path_expression
from repro.breakpoints.detector import BreakpointCoordinator
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.util.errors import PredicateError, PredicateSyntaxError
from repro.workloads import token_ring


class TestCompilation:
    def test_single_term(self):
        lps = compile_path_expression("enter(f)@p1")
        assert len(lps) == 1
        assert str(lps[0]) == "enter(f)@p1"

    def test_sequence(self):
        lps = compile_path_expression("enter(f)@p1 ; exit(f)@p2 ; timer(t)@p3")
        assert len(lps) == 1
        assert len(lps[0]) == 3

    def test_term_alternation_becomes_disjunction(self):
        lps = compile_path_expression("recv@p1 | recv@p2")
        assert len(lps) == 1
        assert len(lps[0]) == 1
        assert len(lps[0].first.terms) == 2

    def test_structured_alternation_splits(self):
        lps = compile_path_expression("(mark(a1)@p ; mark(a2)@q) | (mark(b1)@r ; mark(b2)@s)")
        assert len(lps) == 2
        assert all(len(lp) == 2 for lp in lps)

    def test_mixed_alternation(self):
        # One operand structured -> path alternation (two LPs).
        lps = compile_path_expression("(mark(a1)@p ; mark(a2)@q) | mark(b1)@r")
        assert len(lps) == 2
        lengths = sorted(len(lp) for lp in lps)
        assert lengths == [1, 2]

    def test_repetition(self):
        lps = compile_path_expression("(recv@p1 ; send@p2) {3}")
        assert len(lps) == 1
        assert len(lps[0]) == 6

    def test_repetition_of_alternation_cross_product(self):
        lps = compile_path_expression("((mark(a)@p ; mark(b)@q) | (mark(c)@r ; mark(d)@s)) {2}")
        assert len(lps) == 4
        assert all(len(lp) == 4 for lp in lps)

    def test_nested_groups(self):
        lps = compile_path_expression("mark(a)@p ; ((mark(b)@q ; mark(c)@r) | mark(d)@s) ; mark(e)@t")
        assert len(lps) == 2
        assert sorted(len(lp) for lp in lps) == [3, 4]

    def test_dsl_features_pass_through(self):
        lps = compile_path_expression("state(balance<100)@b0 ; recv(wire)@b1^2")
        assert len(lps) == 1
        assert lps[0].stages[1].terms[0].repeat == 2


class TestCompilationErrors:
    @pytest.mark.parametrize("bad", [
        "mark(a)@p ;",      # trailing sequence
        "; mark(a)@p",      # leading sequence
        "mark(a)@p {0}",    # zero repetition
        "mark(a)@p {x}",    # non-numeric repetition
        "(mark(a)@p",       # unbalanced
        "mark(a)@p)",       # unbalanced
        "mark(a)@p }",      # stray brace
    ])
    def test_rejects(self, bad):
        with pytest.raises(PredicateSyntaxError):
            compile_path_expression(bad)

    def test_alternative_explosion_bounded(self):
        blowup = " ; ".join("((mark(a)@p ; mark(b)@q) | (mark(c)@r ; mark(d)@s))" for _ in range(8))
        with pytest.raises(PredicateError, match="alternatives"):
            compile_path_expression(blowup)


class TestDetection:
    def test_path_breakpoint_fires_first_matching_alternative(self):
        system = build_system(lambda: token_ring.build(n=4, max_hops=60), 1)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        lp_ids = breakpoints.set_path_breakpoint(
            "(enter(receive_token)@p1 ; enter(receive_token)@p3) | "
            "(enter(receive_token)@p2 ; enter(receive_token)@p0)"
        )
        assert len(lp_ids) == 2
        system.run_to_quiescence()
        hits = [h for h in breakpoints.hits if h.lp_id in lp_ids]
        assert hits
        assert system.all_user_processes_halted()

    def test_repetition_path_on_ring(self):
        system = build_system(lambda: token_ring.build(n=4, max_hops=60), 2)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        lp_ids = breakpoints.set_path_breakpoint(
            "(enter(receive_token)@p1 ; enter(receive_token)@p2) {2}"
        )
        system.run_to_quiescence()
        hits = [h for h in breakpoints.hits if h.lp_id in lp_ids]
        assert hits
        trail = hits[0].trail
        assert [h.process for h in trail] == ["p1", "p2", "p1", "p2"]
