"""§3.2's interprocess SPs on channel/process lifecycle events."""

import pytest

from repro.breakpoints import BreakpointCoordinator
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.workloads import election


class Reconfigurer(Process):
    """Opens a channel to a new peer mid-run, uses it, then closes it."""

    def on_start(self, ctx):
        ctx.state["phase"] = "boot"
        ctx.set_timer("reconfigure", 2.0)

    def on_timer(self, ctx, name, payload):
        if name == "reconfigure":
            ctx.create_channel("c")
            ctx.state["phase"] = "linked"
            ctx.send("c", "hello", tag="hello")
            ctx.set_timer("teardown", 3.0)
        elif name == "teardown":
            ctx.destroy_channel("c")
            ctx.state["phase"] = "unlinked"


class Sink(Process):
    def on_start(self, ctx):
        ctx.state["got"] = 0

    def on_message(self, ctx, src, payload):
        ctx.state["got"] = ctx.state["got"] + 1


def build_reconfig():
    # Strongly-connected base (a<->b, b<->c) so halt markers always have a
    # path even after the dynamic a->c link is torn down.
    topo = Topology().add_process("a").add_process("b").add_process("c")
    topo.add_bidirectional("a", "b")
    topo.add_bidirectional("b", "c")
    return topo, {"a": Reconfigurer(), "b": Sink(), "c": Sink()}


def test_breakpoint_on_channel_creation():
    system = build_system(build_reconfig, 1)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint("chan_created@a")
    system.run_to_quiescence()
    hits = breakpoints.hits_for(lp_id)
    assert hits
    # Halted right at the creation: the hello message was never sent...
    # actually creation and send are in the same handler, so the halt (a
    # deferred action) lands after the handler: the message is in flight.
    snapshot = system.controller("a").halted_snapshot
    assert snapshot is not None
    assert snapshot.state["phase"] == "linked"


def test_breakpoint_on_channel_destruction():
    system = build_system(build_reconfig, 2)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint("chan_destroyed@a")
    system.run_to_quiescence()
    assert breakpoints.hits_for(lp_id)
    snapshot = system.controller("a").halted_snapshot
    assert snapshot.state["phase"] == "unlinked"
    # The dynamic channel delivered before teardown.
    assert system.controller("c").halted_snapshot.state["got"] == 1


def test_breakpoint_on_process_termination():
    system = build_system(lambda: election.build(n=4, seed=3), 3)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint(
        "terminated@e0 | terminated@e1 | terminated@e2 | terminated@e3"
    )
    system.run_to_quiescence()
    hits = breakpoints.hits_for(lp_id)
    assert hits
    # The first terminator triggered the halt; the others froze mid-protocol
    # (termination events and halts race, but at least one process must be
    # frozen un-terminated or the halt came after the whole election).
    frozen = [
        system.controller(f"e{i}") for i in range(4)
    ]
    assert all(c.halted or c.terminated for c in frozen)
