"""Unit tests for the (ablation-only) lossy-channel mode."""

import pytest

from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.network.latency import UniformLatency
from repro.runtime.system import System
from repro.workloads import chatter, token_ring


def test_zero_loss_is_default_and_loses_nothing():
    system = build_system(lambda: chatter.build(n=3, budget=10, seed=1), 1)
    system.run_to_quiescence()
    assert all(c.stats.dropped == 0 for c in system.channels())
    sent = sum(system.state_of(n)["sent"] for n in system.user_process_names)
    received = sum(system.state_of(n)["received"] for n in system.user_process_names)
    assert sent == received


def test_loss_drops_messages_and_is_counted():
    topo, processes = chatter.build(n=3, budget=30, seed=2)
    system = System(topo, processes, seed=2,
                    latency=UniformLatency(0.4, 1.6), loss_probability=0.3)
    system.run_to_quiescence()
    dropped = sum(c.stats.dropped for c in system.channels())
    assert dropped > 0
    sent = sum(system.state_of(n)["sent"] for n in system.user_process_names)
    received = sum(system.state_of(n)["received"] for n in system.user_process_names)
    assert received == sent - dropped


def test_loss_does_not_perturb_latency_draws():
    """Enabling loss must not change *when* surviving messages arrive —
    losses have their own RNG stream."""
    def run(loss):
        topo, processes = token_ring.build(n=3, max_hops=10)
        system = System(topo, processes, seed=5,
                        latency=UniformLatency(0.4, 1.6),
                        loss_probability=loss)
        system.run(until=4.0)
        from repro.events.event import EventKind

        return [
            (e.process, round(e.time, 9))
            for e in system.log.of_kind(EventKind.RECEIVE)
        ]

    baseline = run(0.0)
    # A loss probability so small that (for this seed) nothing drops early:
    lossy = run(1e-12)
    assert baseline == lossy


def test_lost_marker_strands_downstream_processes():
    """The behaviour A4 measures, pinned as a unit test: on a ring, one
    dropped halt marker leaves the rest of the ring running."""
    found = None
    for seed in range(20):
        topo, processes = token_ring.build(n=5, max_hops=200)
        system = System(topo, processes, seed=seed,
                        latency=UniformLatency(0.4, 1.6),
                        loss_probability=0.35)
        coordinator = HaltingCoordinator(system)
        install_trigger(system, "p0", 4, lambda c=coordinator: c.initiate(["p0"]))
        system.run_to_quiescence(max_events=300_000)
        unhalted = coordinator.unhalted()
        if unhalted:
            found = (seed, unhalted, system)
            break
    assert found is not None, "no marker loss in 20 seeds at p=0.35?"
    _, unhalted, system = found
    # The initiator itself always halts (its own halt needs no channel).
    assert "p0" not in unhalted
