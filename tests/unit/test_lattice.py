"""Unit tests for the consistent-cut lattice and Possibly/Definitely."""

import pytest

from repro.analysis import CutLattice, state_predicate
from repro.analysis.lattice import PossiblyResult
from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.experiments import build_system, run_halting, run_snapshot
from repro.network.latency import FixedLatency
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.util.errors import AnalysisError
from repro.workloads import bank


def tiny_exchange(seed=0):
    """a sets x=1, sends to b; b sets y=1 on receipt. Three cut chains."""

    class A(Process):
        def on_start(self, ctx):
            ctx.state["x"] = 1
            ctx.send("b", "go")

    class B(Process):
        def on_message(self, ctx, src, payload):
            ctx.state["y"] = 1

    topo = Topology().add_process("a").add_process("b")
    topo.add_channel("a", "b")
    system = System(topo, {"a": A(), "b": B()}, seed=seed,
                    latency=FixedLatency(1.0))
    system.run_to_quiescence()
    return system


class TestLatticeBasics:
    def test_bottom_and_top_consistent(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        assert lattice.is_consistent(lattice.bottom)
        assert lattice.is_consistent(lattice.top)

    def test_orphan_cut_rejected(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        # b's receive included, a's send excluded -> inconsistent.
        a_index = lattice.processes.index("a")
        b_index = lattice.processes.index("b")
        cut = [0, 0]
        cut[b_index] = lattice.top[b_index]  # all of b (includes receive)
        cut[a_index] = 1                      # only a's creation event
        assert not lattice.is_consistent(tuple(cut))

    def test_out_of_range_cut(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        too_far = tuple(n + 1 for n in lattice.top)
        assert not lattice.is_consistent(too_far)
        with pytest.raises(AnalysisError):
            lattice.is_consistent((0,))

    def test_enumeration_covers_all_consistent_cuts(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        enumerated = set(lattice.enumerate_cuts())
        # Brute-force ground truth.
        import itertools

        brute = {
            cut
            for cut in itertools.product(
                *(range(n + 1) for n in lattice.top)
            )
            if lattice.is_consistent(cut)
        }
        assert enumerated == brute
        assert lattice.count_cuts() == len(brute)

    def test_max_cuts_guard(self):
        system = build_system(lambda: bank.build(n=4, transfers=12), 1)
        system.run_to_quiescence()
        lattice = CutLattice(system.log, max_cuts=50)
        with pytest.raises(AnalysisError, match="max_cuts"):
            lattice.count_cuts()

    def test_state_replay(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        states = lattice.state_at(lattice.top)
        assert states["a"]["x"] == 1
        assert states["b"]["y"] == 1
        assert lattice.state_at(lattice.bottom) == {"a": {}, "b": {}}


class TestSnapshotSitsInLattice:
    def test_recorded_cut_is_a_lattice_element(self):
        builder = lambda: bank.build(n=3, transfers=8)
        system, _, state = run_snapshot(builder, 4, "branch1", 6)
        lattice = CutLattice(
            system.log, processes=sorted(state.processes)
        )
        cut = lattice.cut_of_state(state)
        assert lattice.is_consistent(cut)

    def test_halted_cut_is_a_lattice_element(self):
        builder = lambda: bank.build(n=3, transfers=8)
        system, _, state = run_halting(builder, 4, "branch1", 6)
        lattice = CutLattice(system.log, processes=sorted(state.processes))
        assert lattice.is_consistent(lattice.cut_of_state(state))


class TestPossiblyDefinitely:
    def test_definitely_for_stable_fact(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        # y==1 is stable once set; at the top it holds, so every observation
        # ends inside it -> Definitely.
        result = lattice.definitely(
            state_predicate(**{"b.y": lambda v: v == 1})
        )
        assert result.holds

    def test_possibly_but_not_definitely(self):
        """x==1 and y is still unset: true on some observations (before the
        message lands), avoidable on none? Actually avoidable by jumping
        straight... no — x=1 happens before the send; every observation
        passes through (x set, y unset). Use the *opposite* transient:
        y==1 while a has executed nothing after its send — unavoidable? We
        build a genuinely avoidable transient with two independent setters.
        """

        class Setter(Process):
            def on_start(self, ctx):
                ctx.state["v"] = 1

        topo = Topology().add_process("a").add_process("b")
        topo.add_channel("a", "b")  # unused channel, just shape
        system = System(topo, {"a": Setter(), "b": Setter()}, seed=0,
                        latency=FixedLatency(1.0))
        system.run_to_quiescence()
        lattice = CutLattice(system.log)
        # "a has set v but b has not": possible (order a first), avoidable
        # (order b first).
        transient = state_predicate(
            **{"a.v": lambda v: v == 1, "b.v": lambda v: v is None}
        )
        assert lattice.possibly(transient).holds
        assert not lattice.definitely(transient).holds

    def test_possibly_false_for_impossible(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        # y set while a's x is still unset would be an orphan effect.
        impossible = state_predicate(
            **{"b.y": lambda v: v == 1, "a.x": lambda v: v is None}
        )
        result = lattice.possibly(impossible)
        assert not result.holds
        assert result.witness is None

    def test_possibly_witness_is_consistent(self):
        system = tiny_exchange()
        lattice = CutLattice(system.log)
        result = lattice.possibly(
            state_predicate(**{"a.x": lambda v: v == 1})
        )
        assert result.holds
        assert lattice.is_consistent(result.witness)

    def test_state_predicate_validation(self):
        with pytest.raises(AnalysisError):
            state_predicate(balance=lambda v: True)  # no process.key form


class TestMoneyConservationAcrossEntireLattice:
    def test_every_aligned_consistent_cut_conserves_money(self):
        """The classic: balances alone fluctuate across cuts, but balances
        + in-transit is invariant at every consistent cut *aligned to
        handler boundaries*. (Mid-handler cuts can catch money between the
        debit event and the send event of one atomic handler step; the
        paper's algorithms only ever stop at handler boundaries, which in
        the DES are exactly the virtual-time boundaries between a process's
        events.)"""
        builder = lambda: bank.build(n=3, transfers=5)
        system = build_system(builder, 2)
        system.run_to_quiescence()
        log = system.log
        lattice = CutLattice(log, max_cuts=200_000)
        # Precompute per-channel cumulative wire amounts.
        from repro.events.event import EventKind as EK

        def in_transit(cut):
            total = 0
            for channel, send_prefix in lattice._send_prefix.items():
                src = lattice._index[channel.src]
                dst = lattice._index[channel.dst]
                src_events = lattice._events[src]
                dst_events = lattice._events[dst]
                sent = [
                    e.message for e in src_events[:cut[src]]
                    if e.kind is EK.SEND and e.channel == channel
                ]
                received = [
                    e.message for e in dst_events[:cut[dst]]
                    if e.kind is EK.RECEIVE and e.channel == channel
                ]
                total += sum(sent) - sum(received)
            return total

        def aligned(cut):
            for i, k in enumerate(cut):
                events = lattice._events[i]
                if 0 < k < len(events) and events[k - 1].time == events[k].time:
                    return False
            return True

        checked = 0
        skipped = 0
        for cut in lattice.enumerate_cuts():
            if not aligned(cut):
                skipped += 1
                continue
            states = lattice.state_at(cut)
            balances = sum(s.get("balance", 1000) for s in states.values())
            assert balances + in_transit(cut) == 3 * 1000, f"cut {cut}"
            checked += 1
            if checked >= 2000:
                break
        assert checked > 100
        assert skipped > 0  # mid-handler cuts exist and were excluded
