"""``repro serve`` / ``repro attach`` must fail *well*.

The satellite contract: ``serve`` on an already-in-use port and ``attach``
to a dead endpoint exit with a clear error and a nonzero status — they
never hang and never leave child processes behind. These are subprocess
tests because exit codes and stderr are the actual interface.
"""

import os
import socket
import subprocess
import sys
import time

import pytest

import repro
from repro.distributed.control import ControlServer

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def run_cli(*args: str, timeout: float = 30.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


@pytest.fixture()
def occupied_port():
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    yield blocker.getsockname()[1]
    blocker.close()


def closed_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# -- serve ---------------------------------------------------------------------


def test_serve_on_in_use_port_exits_2_with_clear_error(occupied_port):
    started = time.monotonic()
    result = run_cli("serve", "token_ring", "n=3", f"port={occupied_port}")
    elapsed = time.monotonic() - started
    assert result.returncode == 2
    assert f"cannot listen on 127.0.0.1:{occupied_port}" in result.stderr
    assert "Traceback" not in result.stderr
    # Graceful means prompt: the bind is attempted before any child is
    # spawned, so the failure must not eat the cluster startup timeout.
    assert elapsed < 20.0


def test_serve_unknown_workload_exits_2():
    result = run_cli("serve", "no_such_workload")
    assert result.returncode == 2
    assert "unknown workload" in result.stderr


def test_serve_bad_argument_exits_2():
    result = run_cli("serve", "token_ring", "not-a-kv-pair")
    assert result.returncode == 2
    assert "key=value" in result.stderr


def test_serve_without_workload_prints_usage():
    result = run_cli("serve")
    assert result.returncode == 2
    assert "usage" in result.stdout


# -- attach --------------------------------------------------------------------


def test_attach_to_dead_endpoint_exits_2_quickly():
    port = closed_port()
    started = time.monotonic()
    result = run_cli("attach", str(port), "status")
    elapsed = time.monotonic() - started
    assert result.returncode == 2
    assert f"cannot connect to 127.0.0.1:{port}" in result.stderr
    assert "Traceback" not in result.stderr
    assert elapsed < 15.0  # refused, not hung


def test_attach_bad_port_exits_2():
    result = run_cli("attach", "not-a-port")
    assert result.returncode == 2
    assert "not a port number" in result.stderr


def test_attach_help_exits_0():
    result = run_cli("attach", "--help")
    assert result.returncode == 0
    assert "usage" in result.stdout


def test_attach_to_peer_that_closes_mid_frame_exits_2():
    """A server that dies between accept and reply must not hang attach."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    import threading

    def accept_and_slam():
        conn, _ = listener.accept()
        conn.recv(4)
        conn.close()

    thread = threading.Thread(target=accept_and_slam, daemon=True)
    thread.start()
    result = run_cli("attach", str(port), "status")
    listener.close()
    assert result.returncode == 2
    assert "connection failed" in result.stderr


# -- command dispatch (in-process, no cluster needed) --------------------------


def test_unknown_op_is_an_error_response_not_a_crash():
    server = ControlServer.__new__(ControlServer)
    server.session = None
    server._stopping = False
    response = server.handle({"op": "frobnicate"})
    assert response == {"ok": False, "error": "unknown command 'frobnicate'"}


def test_inspect_and_kill_require_a_process_argument():
    server = ControlServer.__new__(ControlServer)
    server.session = None
    server._stopping = False
    assert "requires a process" in server.handle({"op": "inspect"})["error"]
    assert "requires a process" in server.handle({"op": "kill"})["error"]


def test_handler_turns_exceptions_into_error_frames():
    class ExplodingSession:
        def halt_with_watchdog(self, timeout, probe_grace):
            raise RuntimeError("boom")

    server = ControlServer.__new__(ControlServer)
    server.session = ExplodingSession()
    server._stopping = False
    response = server.handle({"op": "halt"})
    assert response["ok"] is False
    assert "boom" in response["error"]
