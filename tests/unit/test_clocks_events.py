"""Unit tests for logical clocks, events, and the event log."""

import pytest

from repro.events.clocks import ClockFrame, LamportClock, VectorClock, concurrent, vector_less
from repro.events.event import Event, EventKind
from repro.events.log import EventLog


def make_event(eid, process, vector, vector_index, kind=EventKind.SEND,
               detail=None, local_seq=0, lamport=0):
    return Event(
        eid=eid, process=process, kind=kind, time=float(eid),
        lamport=lamport or eid, vector=vector, vector_index=vector_index,
        detail=detail, local_seq=local_seq or eid,
    )


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_merge_jumps_ahead(self):
        clock = LamportClock()
        clock.tick()
        assert clock.merge(10) == 11
        assert clock.merge(3) == 12  # max(11,3)+1


class TestVectorClock:
    def test_tick_own_component(self):
        clock = VectorClock(owner_index=1, size=3)
        assert clock.tick() == (0, 1, 0)
        assert clock.tick() == (0, 2, 0)

    def test_merge(self):
        clock = VectorClock(owner_index=0, size=3)
        clock.tick()  # (1,0,0)
        assert clock.merge((0, 5, 2)) == (2, 5, 2)

    def test_arity_mismatch(self):
        clock = VectorClock(owner_index=0, size=2)
        with pytest.raises(ValueError):
            clock.merge((1, 2, 3))

    def test_bad_owner_index(self):
        with pytest.raises(ValueError):
            VectorClock(owner_index=3, size=3)


class TestVectorOrder:
    def test_less(self):
        assert vector_less((1, 0), (1, 1))
        assert not vector_less((1, 1), (1, 1))
        assert not vector_less((2, 0), (1, 1))

    def test_concurrent(self):
        assert concurrent((1, 0), (0, 1))
        assert not concurrent((1, 0), (1, 1))

    def test_arity_check(self):
        with pytest.raises(ValueError):
            vector_less((1,), (1, 2))


class TestClockFrame:
    def test_indices(self):
        frame = ClockFrame(["a", "b", "c"])
        assert frame.index_of("b") == 1
        clock = frame.clock_for("c")
        assert clock.owner_index == 2

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            ClockFrame(["a", "a"])


class TestEvent:
    def test_five_tuple(self):
        event = make_event(1, "p", (1, 0), 0)
        p, s, ss, m, c = event.five_tuple
        assert p == "p"
        assert m is None and c is None

    def test_happened_before_via_vectors(self):
        a = make_event(1, "p", (1, 0), 0)
        b = make_event(2, "q", (1, 1), 1)
        c = make_event(3, "p", (2, 0), 0)
        assert a.happened_before(b)
        assert not b.happened_before(a)
        assert b.concurrent_with(c)

    def test_cross_execution_comparison_rejected(self):
        a = make_event(1, "p", (1, 0), 0)
        b = make_event(2, "q", (1, 1, 0), 1)
        with pytest.raises(ValueError):
            a.happened_before(b)


class TestEventLog:
    def build_log(self):
        log = EventLog()
        log.append(make_event(1, "p", (1, 0), 0, detail="x"))
        log.append(make_event(2, "q", (0, 1), 1, kind=EventKind.RECEIVE))
        log.append(make_event(3, "p", (2, 0), 0, kind=EventKind.TIMER, detail="t"))
        return log

    def test_append_requires_increasing_eids(self):
        log = self.build_log()
        with pytest.raises(ValueError):
            log.append(make_event(2, "p", (3, 0), 0))

    def test_filters(self):
        log = self.build_log()
        assert len(log.for_process("p")) == 2
        assert len(log.of_kind(EventKind.RECEIVE)) == 1
        assert len(log.find(process="p", kind=EventKind.TIMER)) == 1
        assert len(log.find(detail="x")) == 1
        assert log.where(lambda e: e.eid > 1) == log.events[1:]

    def test_causal_past(self):
        log = EventLog()
        a = make_event(1, "p", (1, 0), 0)
        b = make_event(2, "q", (1, 1), 1)
        log.append(a)
        log.append(b)
        assert log.causal_past(b) == (a,)
        assert log.causal_past(a) == ()

    def test_concurrent_pairs(self):
        log = self.build_log()
        pairs = list(log.concurrent_pairs())
        # events 2 (q) and 3 (p, vector (2,0)) are concurrent
        assert any({a.eid, b.eid} == {2, 3} for a, b in pairs)

    def test_matches_in_order(self):
        log = EventLog()
        a = make_event(1, "p", (1, 0), 0)
        b = make_event(2, "q", (1, 1), 1)
        log.append(a)
        log.append(b)
        assert log.matches_in_order([a, b])
        assert not log.matches_in_order([b, a])
        assert log.matches_in_order([a])  # trivially
