"""Unit tests for DebugSession edge cases and the gather watch path."""

import pytest

from repro.debugger import DebugSession
from repro.network.latency import UniformLatency
from repro.util.errors import HaltingError, PredicateError, ReproError
from repro.workloads import bank, mutex, token_ring


def make_session(builder=None, seed=1, **kwargs):
    topo, processes = (builder or (lambda: bank.build(n=3, transfers=20)))()
    return DebugSession(topo, processes, seed=seed,
                        latency=UniformLatency(0.4, 1.6), **kwargs)


class TestSessionValidation:
    def test_debugger_name_collision_rejected(self):
        topo, processes = bank.build(n=3, transfers=5)
        topo2 = topo.with_debugger("branchx")  # fine
        del topo2
        with pytest.raises(ReproError, match="already contains"):
            # name a user process 'd' and collide
            from repro.network.topology import Topology
            from repro.workloads.bank import BankBranch

            bad = Topology().add_process("d").add_process("x")
            bad.add_bidirectional("d", "x")
            DebugSession(bad, {"d": BankBranch(1), "x": BankBranch(1)})

    def test_predicate_on_unknown_process(self):
        session = make_session()
        with pytest.raises(PredicateError, match="unknown"):
            session.set_breakpoint("recv@ghost")

    def test_predicate_on_debugger_rejected(self):
        session = make_session()
        with pytest.raises(PredicateError, match="debugger"):
            session.set_breakpoint("recv@d")

    def test_global_state_requires_full_halt(self):
        session = make_session()
        session.run(until=3.0)
        with pytest.raises(HaltingError, match="requires all"):
            session.global_state()

    def test_custom_debugger_name(self):
        topo, processes = bank.build(n=3, transfers=10)
        session = DebugSession(topo, processes, seed=2,
                               latency=UniformLatency(0.4, 1.6),
                               debugger_name="monitor")
        session.set_breakpoint("state(transfers_made>=2)@branch0")
        outcome = session.run()
        assert outcome.stopped
        assert session.debugger_name == "monitor"
        assert "monitor" in session.system.controllers


class TestSessionBehaviour:
    def test_run_without_breakpoints_completes(self):
        session = make_session()
        outcome = session.run()
        assert not outcome.stopped
        assert outcome.hits == []
        for name in session.system.user_process_names:
            assert session.inspect(name)["transfers_made"] == 20

    def test_clear_breakpoint_prevents_halt(self):
        session = make_session()
        lp_id = session.set_breakpoint("state(transfers_made>=2)@branch0")
        # Let the arming marker land, then clear before it can fire...
        # (state change >=2 requires a couple of timer ticks; clear at t=0
        # races the marker, so run a tiny slice first.)
        session.clear_breakpoint(lp_id)
        outcome = session.run()
        assert not outcome.stopped

    def test_hits_are_consumed_per_run(self):
        session = make_session(lambda: token_ring.build(n=3, max_hops=100))
        session.set_breakpoint("enter(receive_token)@p1 ^1")
        first = session.run()
        assert len(first.hits) == 1
        session.set_breakpoint("enter(receive_token)@p1 ^1")
        session.resume()
        second = session.run()
        assert len(second.hits) == 1  # only the new hit, not the old one

    def test_inspect_while_running(self):
        session = make_session()
        session.run(until=5.0)
        state = session.inspect("branch1")
        assert "balance" in state

    def test_describe_halt_mentions_everyone(self):
        session = make_session()
        session.set_breakpoint("state(transfers_made>=2)@branch2")
        outcome = session.run()
        assert outcome.stopped
        text = session.describe_halt()
        for name in session.system.user_process_names:
            assert name in text

    def test_watch_conjunction_notices_flow(self):
        session = make_session(lambda: mutex.build(n=3, entries=3))
        watch_id = session.watch_conjunction(
            "mark(cs_enter)@m0 & mark(cs_enter)@m1"
        )
        outcome = session.run()
        assert not outcome.stopped
        # CS entries are serialized by the protocol: their satisfactions
        # should be causally ordered -> no unordered detections.
        assert session.agent.detections_for(watch_id) == []

    def test_unwatch_stops_notices(self):
        session = make_session()
        watch_id = session.watch_conjunction(
            "state(balance<990)@branch0 & state(balance<990)@branch1"
        )
        session.run(until=2.0)  # watches land
        session.agent.unwatch(watch_id)
        session.run()
        # Detector removed: no detections recorded under this id after
        # unwatch drained (any earlier ones are tolerated).
        detections = session.agent.detections_for(watch_id)
        # Can't assert zero (a detection may have squeaked in before the
        # unwatch landed) — but the gatherer must be gone.
        assert watch_id not in session.agent._gatherers
        del detections
