"""Unit tests for the debugger CLI."""

import pytest

from repro.debugger import DebugSession
from repro.debugger.cli import DebuggerCLI
from repro.network.latency import UniformLatency
from repro.workloads import bank, token_ring


def make_cli(builder=None, seed=3):
    topo, processes = (builder or (lambda: bank.build(n=3, transfers=25)))()
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    return DebuggerCLI(session)


class TestBasicCommands:
    def test_help_lists_commands(self):
        cli = make_cli()
        output = cli.execute("help")
        for word in ("break", "run", "inspect", "state", "quit"):
            assert word in output

    def test_unknown_command(self):
        cli = make_cli()
        assert "unknown command" in cli.execute("frobnicate")

    def test_empty_and_comment_lines(self):
        cli = make_cli()
        assert cli.execute("") == ""
        assert cli.execute("# a comment") == ""

    def test_quit_sets_finished(self):
        cli = make_cli()
        assert cli.execute("quit") == "bye"
        assert cli.finished


class TestBreakpointCommands:
    def test_break_and_list_and_clear(self):
        cli = make_cli()
        out = cli.execute("break state(transfers_made>=5)@branch0")
        assert "breakpoint 1 armed" in out
        assert "state(transfers_made>=5)@branch0" in cli.execute("breaks")
        assert "cleared" in cli.execute("clear 1")
        assert cli.execute("breaks") == "no breakpoints armed"

    def test_bad_predicate_reports_error(self):
        cli = make_cli()
        assert "error:" in cli.execute("break bogus syntax here")

    def test_clear_unknown(self):
        cli = make_cli()
        assert "no breakpoint 9" in cli.execute("clear 9")
        assert "usage" in cli.execute("clear")

    def test_pathbreak(self):
        cli = make_cli(lambda: token_ring.build(n=3, max_hops=40))
        out = cli.execute(
            "pathbreak (enter(receive_token)@p1 ; enter(receive_token)@p2)"
        )
        assert "1 alternative" in out


class TestSessionFlow:
    def test_full_debugging_script(self):
        cli = make_cli()
        outputs = cli.run_script([
            "break state(transfers_made>=4)@branch1",
            "run",
            "processes",
            "inspect branch1",
            "order",
            "paths",
            "state",
            "hits",
            "resume",
            "run",
            "quit",
        ])
        assert "stopped at" in outputs[1]
        assert "halted" in outputs[2]
        assert "branch1 (halted)" in outputs[3]
        assert "halting order:" in outputs[4]
        assert "via" in outputs[5]
        assert "GlobalState" in outputs[6]
        assert "lp1 at branch1" in outputs[7]
        assert outputs[8] == "resumed"
        assert "ran to" in outputs[9]  # program completes, no more halts
        assert outputs[10] == "bye"

    def test_explicit_halt_flow(self):
        cli = make_cli()
        cli.execute("run 5.0")
        assert "halt markers dispatched" in cli.execute("halt")
        out = cli.execute("run")
        assert "stopped at" in out

    def test_inspect_unknown_process(self):
        cli = make_cli()
        assert "unknown process" in cli.execute("inspect ghost")

    def test_events_command(self):
        cli = make_cli()
        cli.execute("run 5.0")
        out = cli.execute("events branch0 3")
        assert "Event#" in out
        assert "usage" in cli.execute("events")

    def test_watch_command(self):
        cli = make_cli()
        out = cli.execute(
            'watch mark(x)@branch0 & mark(y)@branch1'
        )
        assert "watch 1 installed" in out

    def test_run_with_bad_time(self):
        cli = make_cli()
        assert "usage" in cli.execute("run soon")


class TestDiagramStats:
    def test_diagram_command(self):
        cli = make_cli()
        cli.execute("run 6.0")
        out = cli.execute("diagram")
        assert "branch0" in out and "~~>" in out

    def test_diagram_window(self):
        cli = make_cli()
        cli.execute("run 6.0")
        out = cli.execute("diagram 2.0 4.0")
        assert "t=" in out
        assert "usage" in cli.execute("diagram soon")

    def test_stats_command(self):
        cli = make_cli()
        cli.execute("run 6.0")
        out = cli.execute("stats")
        assert "concurrency ratio" in out
        assert "critical path" in out
