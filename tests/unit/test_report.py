"""Unit tests for the post-mortem report and the CLI save/report commands."""

import io

import pytest

from repro.debugger import DebugSession
from repro.debugger.cli import DebuggerCLI
from repro.debugger.report import post_mortem
from repro.network.latency import UniformLatency
from repro.util.errors import HaltingError
from repro.workloads import bank


def halted_session(seed=3):
    topo, processes = bank.build(n=3, transfers=20)
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    session.set_breakpoint("state(transfers_made>=4)@branch1")
    outcome = session.run()
    assert outcome.stopped
    return session


class TestPostMortem:
    def test_requires_full_halt(self):
        topo, processes = bank.build(n=3, transfers=20)
        session = DebugSession(topo, processes, seed=1,
                               latency=UniformLatency(0.4, 1.6))
        session.run(until=2.0)
        with pytest.raises(HaltingError):
            post_mortem(session)

    def test_report_sections(self):
        session = halted_session()
        report = post_mortem(session)
        for heading in ("HALT", "BREAKPOINTS", "GLOBAL STATE", "MARKER PATHS",
                        "TRAFFIC", "EXECUTION SHAPE", "SPACE-TIME"):
            assert heading in report
        assert "lp1 completed at branch1" in report
        assert "== HALT ==" in report  # diagram bars
        assert "halt_marker" in report

    def test_report_is_deterministic(self):
        a = post_mortem(halted_session())
        b = post_mortem(halted_session())
        assert a == b

    def test_report_without_optional_sections(self):
        session = halted_session()
        report = post_mortem(session, include_diagram=False, include_stats=False)
        assert "SPACE-TIME" not in report
        assert "EXECUTION SHAPE" not in report
        assert "GLOBAL STATE" in report


class TestCLIReportSave:
    def test_report_command(self):
        session = halted_session()
        cli = DebuggerCLI(session)
        output = cli.execute("report")
        assert "GLOBAL STATE" in output

    def test_save_and_restore_roundtrip(self, tmp_path):
        session = halted_session()
        cli = DebuggerCLI(session)
        path = tmp_path / "snapshot.json"
        output = cli.execute(f"save {path}")
        assert "saved S_h" in output

        from repro.halting import restore
        from repro.trace import load_state

        with open(path, encoding="utf-8") as fp:
            state = load_state(fp)
        topo, fresh = bank.build(n=3, transfers=20)
        system = restore(state, topo, fresh, seed=77,
                         latency=UniformLatency(0.4, 1.6))
        system.run_to_quiescence()
        balances = {
            n: system.state_of(n)["balance"] for n in system.user_process_names
        }
        assert bank.total_money(balances) == 3 * bank.INITIAL_BALANCE

    def test_save_usage(self):
        session = halted_session()
        cli = DebuggerCLI(session)
        assert "usage" in cli.execute("save")
