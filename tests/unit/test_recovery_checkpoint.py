"""Unit tests for the checkpoint store (repro.recovery.checkpoint)."""

import json
import os

import pytest

from repro.recovery.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    load_checkpoint,
    state_from_jsonable,
    state_to_jsonable,
)
from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import capture
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import CheckpointError
from repro.util.ids import ChannelId


def make_state(hops: int = 5, complete: bool = True) -> GlobalState:
    """A tiny but structurally faithful token-ring cut."""
    processes = {
        "p0": capture(
            process="p0",
            state={"tokens_seen": hops, "last_value": hops, "holding": False},
            local_seq=3 * hops, lamport=4 * hops, vector=(hops, hops),
            vector_index=0, time=1.25, halt_id=2,
        ),
        "p1": capture(
            process="p1",
            state={"tokens_seen": hops, "last_value": hops - 1,
                   "holding": False},
            local_seq=3 * hops - 1, lamport=4 * hops - 2, vector=(hops, hops),
            vector_index=1, time=1.25, halt_id=2,
        ),
    }
    channels = {
        ChannelId("p0", "p1"): ChannelState(
            channel=ChannelId("p0", "p1"),
            messages=(UserMessage(payload=hops, tag="token",
                                  lamport=4 * hops, vector=(hops, hops)),),
            complete=complete,
        ),
        ChannelId("p1", "p0"): ChannelState(
            channel=ChannelId("p1", "p0"), messages=(), complete=True,
        ),
    }
    return GlobalState(
        origin="halting", processes=processes, channels=channels,
        generation=2, meta={"halt_order": ["p0", "p1"]},
    )


def test_jsonable_round_trip_preserves_the_cut():
    state = make_state()
    back = state_from_jsonable(json.loads(json.dumps(state_to_jsonable(state))))
    assert back.origin == state.origin
    assert back.generation == state.generation
    assert back.meta == state.meta
    assert set(back.processes) == set(state.processes)
    for name, snap in state.processes.items():
        assert back.processes[name].comparable() == snap.comparable()
        assert back.processes[name].meta == snap.meta
    assert set(back.channels) == set(state.channels)
    for cid, cs in state.channels.items():
        assert back.channels[cid].messages == cs.messages
        assert back.channels[cid].complete


def test_incomplete_channels_are_not_storable(tmp_path):
    state = make_state(complete=False)
    with pytest.raises(CheckpointError, match="incomplete"):
        state_to_jsonable(state)
    with pytest.raises(CheckpointError, match="p0->p1"):
        CheckpointStore(str(tmp_path)).save(state)
    assert CheckpointStore(str(tmp_path)).latest() is None


def test_store_sequences_latest_and_load(tmp_path):
    store = CheckpointStore(str(tmp_path))
    assert store.latest() is None
    paths = [store.save(make_state(hops=h)) for h in (1, 2, 3)]
    assert store.sequence_numbers() == [1, 2, 3]
    latest = store.latest()
    assert latest is not None
    seq, path = latest
    assert seq == 3 and path == paths[-1]
    by_seq = store.load(2)
    by_path = store.load(paths[1])
    assert by_seq.processes["p0"].state["tokens_seen"] == 2
    assert by_path.processes["p0"].state == by_seq.processes["p0"].state


def test_extra_meta_rides_in_the_artifact(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = store.save(make_state(), extra_meta={"incarnation": 2,
                                                "virtual_elapsed": 7.5})
    with open(path, encoding="utf-8") as fp:
        raw = json.load(fp)
    assert raw["format"] == CHECKPOINT_FORMAT
    assert raw["checkpoint_meta"]["incarnation"] == 2
    assert raw["checkpoint_meta"]["virtual_elapsed"] == 7.5
    # The decoded GlobalState itself is unchanged by extra_meta.
    assert load_checkpoint(path).meta == make_state().meta


def test_prune_keeps_the_newest(tmp_path):
    store = CheckpointStore(str(tmp_path))
    for h in range(1, 6):
        store.save(make_state(hops=h))
    removed = store.prune(keep=2)
    assert store.sequence_numbers() == [4, 5]
    assert len(removed) == 3
    assert all(not os.path.exists(p) for p in removed)
    with pytest.raises(CheckpointError):
        store.prune(keep=0)


def test_format_version_is_enforced(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = store.save(make_state())
    with open(path, encoding="utf-8") as fp:
        raw = json.load(fp)
    raw["format"] = CHECKPOINT_FORMAT + 1
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(raw, fp)
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(path)


def test_unreadable_artifact_is_a_checkpoint_error(tmp_path):
    bad = tmp_path / "checkpoint-000001.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(str(bad))
