"""Unit tests for predicate objects and their algebra."""

import pytest

from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
    as_linked,
    disjunctive_to_linked,
    expand_repeats,
    simple_to_linked,
)
from repro.events.event import Event, EventKind
from repro.util.errors import PredicateError


def event(process="p", kind=EventKind.SEND, detail=None, attrs=None, eid=1):
    return Event(
        eid=eid, process=process, kind=kind, time=0.0,
        lamport=1, vector=(1,), vector_index=0,
        detail=detail, attrs=attrs or {},
    )


class TestSimplePredicate:
    def test_kind_and_process_match(self):
        sp = SimplePredicate(process="p", kind=EventKind.SEND)
        assert sp.matches(event(kind=EventKind.SEND))
        assert not sp.matches(event(kind=EventKind.RECEIVE))
        assert not sp.matches(event(process="q"))

    def test_detail_filter(self):
        sp = SimplePredicate(process="p", kind=EventKind.PROCEDURE_ENTRY, detail="f")
        assert sp.matches(event(kind=EventKind.PROCEDURE_ENTRY, detail="f"))
        assert not sp.matches(event(kind=EventKind.PROCEDURE_ENTRY, detail="g"))

    def test_wildcard_kind(self):
        sp = SimplePredicate(process="p")
        assert sp.matches(event(kind=EventKind.TIMER))
        assert sp.matches(event(kind=EventKind.SEND))

    def test_state_query_matching(self):
        sp = SimplePredicate(
            process="p",
            kind=EventKind.STATE_CHANGE,
            state=StateQuery(key="balance", op="<", value=100),
        )
        hit = event(kind=EventKind.STATE_CHANGE, detail="balance",
                    attrs={"key": "balance", "value": 50})
        miss_value = event(kind=EventKind.STATE_CHANGE, detail="balance",
                           attrs={"key": "balance", "value": 200})
        miss_key = event(kind=EventKind.STATE_CHANGE, detail="other",
                         attrs={"key": "other", "value": 50})
        assert sp.matches(hit)
        assert not sp.matches(miss_value)
        assert not sp.matches(miss_key)

    def test_state_query_type_mismatch_is_false(self):
        query = StateQuery(key="k", op="<", value=10)
        assert not query.evaluate("not-a-number")

    def test_state_query_all_operators(self):
        cases = [("==", 5, 5, True), ("!=", 5, 6, True), ("<", 4, 5, True),
                 ("<=", 5, 5, True), (">", 6, 5, True), (">=", 5, 5, True),
                 ("==", 5, 6, False), ("<", 6, 5, False)]
        for op, observed, value, expected in cases:
            assert StateQuery(key="k", op=op, value=value).evaluate(observed) is expected

    def test_bad_operator_rejected(self):
        with pytest.raises(PredicateError):
            StateQuery(key="k", op="~=", value=1)

    def test_repeat_validation(self):
        with pytest.raises(PredicateError):
            SimplePredicate(process="p", repeat=0)

    def test_state_query_needs_state_kind(self):
        with pytest.raises(PredicateError):
            SimplePredicate(process="p", kind=EventKind.SEND,
                            state=StateQuery(key="k", op="==", value=1))

    def test_str_forms(self):
        assert str(SimplePredicate(process="p", kind=EventKind.SEND)) == "send@p"
        assert str(
            SimplePredicate(process="p", kind=EventKind.PROCEDURE_ENTRY, detail="f")
        ) == "enter(f)@p"
        assert str(SimplePredicate(process="p", kind=EventKind.RECEIVE, repeat=3)) == "recv@p^3"
        assert "balance<100" in str(SimplePredicate(
            process="p", kind=EventKind.STATE_CHANGE,
            state=StateQuery(key="balance", op="<", value=100),
        ))


class TestCompositePredicates:
    def sp(self, process, detail=None):
        return SimplePredicate(
            process=process, kind=EventKind.PROCEDURE_ENTRY, detail=detail
        )

    def test_disjunction_processes(self):
        dp = DisjunctivePredicate(terms=(self.sp("a"), self.sp("b"), self.sp("a")))
        assert dp.processes() == {"a", "b"}
        assert len(dp.terms_at("a")) == 2

    def test_empty_disjunction_rejected(self):
        with pytest.raises(PredicateError):
            DisjunctivePredicate(terms=())

    def test_linked_rest(self):
        lp = LinkedPredicate(stages=(
            DisjunctivePredicate(terms=(self.sp("a"),)),
            DisjunctivePredicate(terms=(self.sp("b"),)),
        ))
        rest = lp.rest()
        assert rest is not None and len(rest) == 1
        assert rest.rest() is None
        assert lp.processes() == {"a", "b"}

    def test_conjunction_needs_two_terms(self):
        with pytest.raises(PredicateError):
            ConjunctivePredicate(terms=(self.sp("a"),))

    def test_conjunction_to_linked_orderings(self):
        cp = ConjunctivePredicate(terms=(self.sp("a"), self.sp("b")))
        orderings = cp.to_linked_orderings()
        assert len(orderings) == 2
        rendered = {str(lp) for lp in orderings}
        assert rendered == {"enter@a -> enter@b", "enter@b -> enter@a"}

    def test_three_term_orderings(self):
        cp = ConjunctivePredicate(terms=(self.sp("a"), self.sp("b"), self.sp("c")))
        assert len(cp.to_linked_orderings()) == 6

    def test_as_linked_lifts(self):
        sp = self.sp("a")
        assert len(as_linked(sp)) == 1
        dp = DisjunctivePredicate(terms=(sp,))
        assert len(as_linked(dp)) == 1
        lp = simple_to_linked(sp)
        assert as_linked(lp) is lp
        with pytest.raises(PredicateError):
            as_linked("not a predicate")

    def test_expand_repeats(self):
        sp = SimplePredicate(process="a", kind=EventKind.SEND, repeat=3)
        lp = simple_to_linked(sp)
        expanded = expand_repeats(lp)
        assert len(expanded) == 3
        assert all(stage.terms[0].repeat == 1 for stage in expanded.stages)

    def test_expand_repeats_keeps_multiterm_stages(self):
        dp = DisjunctivePredicate(terms=(
            SimplePredicate(process="a", kind=EventKind.SEND, repeat=2),
            SimplePredicate(process="b", kind=EventKind.SEND),
        ))
        expanded = expand_repeats(disjunctive_to_linked(dp))
        assert len(expanded) == 1  # untouched

    def test_str_rendering(self):
        lp = LinkedPredicate(stages=(
            DisjunctivePredicate(terms=(self.sp("a"), self.sp("b"))),
            DisjunctivePredicate(terms=(self.sp("c"),)),
        ))
        assert str(lp) == "(enter@a | enter@b) -> enter@c"
