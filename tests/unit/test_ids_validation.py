"""Unit tests for util: ids and validation."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.ids import ChannelId, SequenceGenerator
from repro.util.validation import (
    require,
    require_name,
    require_non_negative,
    require_positive,
    require_unique,
)


class TestChannelId:
    def test_str_and_parse_roundtrip(self):
        channel = ChannelId("p1", "p2")
        assert str(channel) == "p1->p2"
        assert ChannelId.parse("p1->p2") == channel

    def test_parse_rejects_garbage(self):
        for bad in ("p1", "->p2", "p1->", ""):
            with pytest.raises(ValueError):
                ChannelId.parse(bad)

    def test_reversed(self):
        assert ChannelId("a", "b").reversed() == ChannelId("b", "a")

    def test_ordering_is_stable(self):
        channels = [ChannelId("b", "a"), ChannelId("a", "b"), ChannelId("a", "a")]
        assert sorted(channels) == [
            ChannelId("a", "a"), ChannelId("a", "b"), ChannelId("b", "a")
        ]


class TestSequenceGenerator:
    def test_monotone(self):
        gen = SequenceGenerator()
        values = [gen.next() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_start_offset(self):
        gen = SequenceGenerator(start=10)
        assert gen.next() == 10

    def test_thread_safety(self):
        import threading

        gen = SequenceGenerator()
        seen = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 2000


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        assert require_positive(1.5, "x") == 1.5
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                require_positive(bad, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.1, "x")

    def test_require_name_rejects_metacharacters(self):
        require_name("p1", "name")
        require_name("branch_0.a", "name")
        for bad in ("", "a b", "a@b", "a|b", "a->b", "a^2", "a&b", "a(b)", None, 7):
            with pytest.raises(ConfigurationError):
                require_name(bad, "name")  # type: ignore[arg-type]

    def test_require_unique(self):
        require_unique(["a", "b"], "name")
        with pytest.raises(ConfigurationError, match="duplicate"):
            require_unique(["a", "a"], "name")
