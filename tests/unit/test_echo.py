"""Unit tests for the echo (wave) workload and debugging over it."""

import pytest

from repro.breakpoints import BreakpointCoordinator
from repro.events.event import EventKind
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.workloads import echo


def run_echo(n=7, seed=1, graph_seed=3):
    topo, processes = echo.build(n=n, seed=graph_seed)
    system = build_system(lambda: (topo, processes), seed)
    system.run_to_quiescence()
    return topo, system


class TestEchoWave:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wave_completes_and_builds_tree(self, seed):
        topo, system = run_echo(seed=seed)
        root = topo.processes[0]
        states = {name: system.state_of(name) for name in topo.processes}
        assert states[root]["done"]
        # Every node joined and parent pointers form a tree rooted at root.
        for name, state in states.items():
            assert state["parent"] is not None
            cursor, hops = name, 0
            while states[cursor]["parent"] != cursor:
                cursor = states[cursor]["parent"]
                hops += 1
                assert hops <= len(topo.processes), "parent cycle!"
            assert cursor == root

    def test_children_lists_match_parents(self):
        topo, system = run_echo()
        states = {name: system.state_of(name) for name in topo.processes}
        for name, state in states.items():
            for child in state["children"]:
                assert states[child]["parent"] == name

    def test_wave_marks_for_predicates(self):
        topo, system = run_echo()
        started = system.log.find(kind=EventKind.STATE_CHANGE, detail="wave_started")
        done = system.log.find(kind=EventKind.STATE_CHANGE, detail="wave_done")
        joined = system.log.find(kind=EventKind.STATE_CHANGE, detail="joined_wave")
        assert len(started) == 1
        assert len(done) == 1
        assert len(joined) == len(topo.processes) - 1
        # The wave start causally precedes its completion.
        assert started[0].happened_before(done[0])


class TestDebuggingTheWave:
    def test_lp_from_start_to_done(self):
        topo, processes = echo.build(n=7, seed=3)
        root = topo.processes[0]
        system = build_system(lambda: (topo, processes), 2)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        lp_id = breakpoints.set_breakpoint(
            f"mark(wave_started)@{root} -> mark(wave_done)@{root}"
        )
        system.run_to_quiescence()
        hits = breakpoints.hits_for(lp_id)
        assert hits
        assert [h.process for h in hits[0].trail] == [root, root]
        assert system.all_user_processes_halted()

    def test_halt_mid_wave_preserves_join_frontier(self):
        """Halt when the third node joins: the frozen picture shows a
        partial tree with tokens still in flight — a consistent prefix of
        the wave."""
        topo, processes = echo.build(n=8, seed=5)
        system = build_system(lambda: (topo, processes), 4)
        halting = HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        names = list(topo.processes)
        disjunction = " | ".join(f"mark(joined_wave)@{n}" for n in names[1:])
        breakpoints.set_breakpoint(disjunction)
        system.run_to_quiescence()
        state = halting.collect()
        joined = [
            name for name, snap in state.processes.items()
            if snap.state.get("parent") is not None
        ]
        unjoined = [
            name for name, snap in state.processes.items()
            if snap.state.get("parent") is None
        ]
        assert joined, "someone must have joined before the halt"
        # Consistency: every frozen parent pointer names a process that had
        # itself already joined at the cut (no dangling parents).
        for name in joined:
            parent = state.processes[name].state["parent"]
            assert state.processes[parent].state["parent"] is not None
        del unjoined
