"""Unit tests for the workload library: each program behaves as specified."""

import pytest

from repro.events.event import EventKind
from repro.experiments import build_system
from repro.network.latency import UniformLatency
from repro.runtime.system import System
from repro.workloads import (
    bank,
    chatter,
    election,
    gossip,
    infrequent,
    mutex,
    pipeline,
    token_ring,
)


def run(builder, seed=0, max_events=500_000):
    system = build_system(builder, seed)
    system.run_to_quiescence(max_events=max_events)
    return system


class TestTokenRing:
    def test_token_makes_all_hops(self):
        system = run(lambda: token_ring.build(n=4, max_hops=20))
        total = sum(system.state_of(f"p{i}")["tokens_seen"] for i in range(4))
        assert total == 21  # hops 0..20 delivered

    def test_last_value_progresses(self):
        system = run(lambda: token_ring.build(n=3, max_hops=9))
        values = [system.state_of(f"p{i}")["last_value"] for i in range(3)]
        assert max(values) == 9


class TestChatter:
    def test_budgets_respected(self):
        system = run(lambda: chatter.build(n=4, budget=12, seed=1), seed=1)
        for i in range(4):
            assert system.state_of(f"p{i}")["sent"] == 12

    def test_all_messages_delivered(self):
        system = run(lambda: chatter.build(n=4, budget=12, seed=1), seed=1)
        sent = sum(system.state_of(f"p{i}")["sent"] for i in range(4))
        received = sum(system.state_of(f"p{i}")["received"] for i in range(4))
        assert sent == received == 48


class TestBank:
    def test_money_conserved_at_completion(self):
        system = run(lambda: bank.build(n=4, transfers=20))
        balances = {
            name: system.state_of(name)["balance"]
            for name in system.user_process_names
        }
        assert bank.total_money(balances) == 4 * bank.INITIAL_BALANCE

    def test_transfers_made(self):
        system = run(lambda: bank.build(n=3, transfers=10))
        for name in system.user_process_names:
            assert system.state_of(name)["transfers_made"] == 10

    def test_balances_never_negative(self):
        system = run(lambda: bank.build(n=3, transfers=25), seed=5)
        for event in system.log.find(kind=EventKind.STATE_CHANGE, detail="balance"):
            assert event.attrs["value"] >= 0


class TestPipeline:
    def test_items_flow_through(self):
        system = run(lambda: pipeline.build(stages=2, items=15))
        assert system.state_of("producer")["produced"] == 15
        assert system.state_of("stage1")["processed"] == 15
        assert system.state_of("stage2")["processed"] == 15
        assert system.state_of("consumer")["consumed"] == 15
        # Two stages added 1000 each to the last item (14).
        assert system.state_of("consumer")["last_item"] == 2014


class TestElection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exactly_one_leader(self, seed):
        system = run(lambda: election.build(n=5, seed=seed), seed=seed)
        marks = system.log.find(kind=EventKind.STATE_CHANGE, detail="leader_elected")
        assert len(marks) == 1
        leader = marks[0].process
        # The elected member holds the highest uid.
        assert system.state_of(leader)["uid"] == 5

    def test_everyone_learns_and_terminates(self):
        system = run(lambda: election.build(n=5, seed=1), seed=1)
        marks = system.log.find(kind=EventKind.STATE_CHANGE, detail="leader_elected")
        leader = marks[0].process
        for i in range(5):
            assert system.state_of(f"e{i}")["leader"] == leader
        terminated = system.log.of_kind(EventKind.PROCESS_TERMINATED)
        assert len(terminated) == 5


class TestMutex:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mutual_exclusion_is_causal(self, seed):
        """Safety: any two critical sections at different processes are
        causally ordered — exit of one happened-before entry of the other."""
        system = run(lambda: mutex.build(n=3, entries=3), seed=seed)
        enters = system.log.find(kind=EventKind.STATE_CHANGE, detail="cs_enter")
        exits = system.log.find(kind=EventKind.STATE_CHANGE, detail="cs_exit")
        sections = []
        for enter in enters:
            matching = [
                x for x in exits
                if x.process == enter.process and x.attrs["entry"] == enter.attrs["entry"]
            ]
            assert len(matching) == 1
            sections.append((enter, matching[0]))
        for i, (enter_a, exit_a) in enumerate(sections):
            for enter_b, exit_b in sections[i + 1:]:
                if enter_a.process == enter_b.process:
                    continue
                assert (
                    exit_a.happened_before(enter_b)
                    or exit_b.happened_before(enter_a)
                ), f"overlapping critical sections: {enter_a} / {enter_b}"

    def test_everyone_gets_the_lock(self):
        system = run(lambda: mutex.build(n=3, entries=3), seed=1)
        for name in system.user_process_names:
            assert system.state_of(name)["entries_done"] == 3


class TestGossip:
    def test_rumor_reaches_everyone_with_big_ttl(self):
        system = run(lambda: gossip.build(n=6, fanout=3, ttl=10, seed=2), seed=2)
        heard = [
            name for name in system.user_process_names
            if system.state_of(name)["heard"]
        ]
        assert len(heard) == 6

    def test_zero_ttl_stays_local(self):
        system = run(lambda: gossip.build(n=6, fanout=3, ttl=0, seed=2), seed=2)
        # Origin heard it; direct recipients hear but do not relay.
        relays = [
            name for name in system.user_process_names
            if system.state_of(name)["relayed"] > 0
        ]
        assert relays == ["g0"]


class TestInfrequent:
    def test_bridge_latency_configuration(self):
        topo, processes, latencies = infrequent.build(
            cluster_size=2, bridge_latency=30.0, local_latency=1.0
        )
        from repro.util.ids import ChannelId

        assert latencies[ChannelId("a0", "b0")].delay == 30.0
        assert latencies[ChannelId("a0", "a1")].delay == 1.0
        system = System(topo, processes, seed=0, channel_latencies=latencies,
                        latency=UniformLatency(0.5, 1.5))
        system.run_to_quiescence()
        for name in system.user_process_names:
            assert system.state_of(name)["sent"] == 40
