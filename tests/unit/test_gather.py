"""Unit tests for the gather-based unordered-conjunction detector."""

from repro.breakpoints.detector import StageHit
from repro.breakpoints.predicates import ConjunctivePredicate, SimplePredicate
from repro.debugger.commands import SatisfactionNotice
from repro.debugger.gather import GatherDetector
from repro.events.event import EventKind


def conjunction():
    return ConjunctivePredicate(terms=(
        SimplePredicate(process="a", kind=EventKind.STATE_CHANGE, detail="x"),
        SimplePredicate(process="b", kind=EventKind.STATE_CHANGE, detail="y"),
    ))


def notice(term_index, vector, time=1.0, watch_id=1):
    return SatisfactionNotice(
        watch_id=watch_id,
        term_index=term_index,
        hit=StageHit(
            stage_index=0, process="a" if term_index == 0 else "b",
            eid=int(time * 10), lamport=1, time=time, term="t",
        ),
        vector=vector,
        vector_index=term_index,
    )


class TestGatherDetector:
    def test_concurrent_pair_detected(self):
        detector = GatherDetector(1, conjunction())
        assert detector.on_notice(notice(0, (1, 0), time=1.0), now=2.0) is None
        detection = detector.on_notice(notice(1, (0, 1), time=1.5), now=2.5)
        assert detection is not None
        assert detection.detected_at == 2.5
        assert detection.last_event_time == 1.5
        assert detection.detection_lag == 1.0

    def test_ordered_pair_not_detected(self):
        detector = GatherDetector(1, conjunction())
        detector.on_notice(notice(0, (1, 0)), now=2.0)
        # (1,0) < (1,1): causally ordered, not an unordered co-satisfaction.
        assert detector.on_notice(notice(1, (1, 1)), now=2.5) is None

    def test_searches_history_for_concurrent_partner(self):
        detector = GatherDetector(1, conjunction())
        detector.on_notice(notice(0, (1, 0)), now=1.0)   # concurrent w/ (0,1)
        detector.on_notice(notice(0, (2, 5)), now=2.0)   # ordered after b's
        detection = detector.on_notice(notice(1, (0, 1)), now=3.0)
        assert detection is not None

    def test_incomplete_terms_no_detection(self):
        detector = GatherDetector(1, conjunction())
        assert detector.on_notice(notice(0, (1, 0)), now=1.0) is None
        assert detector.on_notice(notice(0, (2, 0)), now=2.0) is None
        assert detector.detections == []

    def test_foreign_watch_id_ignored(self):
        detector = GatherDetector(1, conjunction())
        assert detector.on_notice(notice(0, (1, 0), watch_id=99), now=1.0) is None
        assert detector._seen[0] == []

    def test_history_bounded(self):
        detector = GatherDetector(1, conjunction(), history=4)
        for i in range(10):
            detector.on_notice(notice(0, (i + 1, 0), time=float(i)), now=float(i))
        assert len(detector._seen[0]) == 4

    def test_three_term_conjunction(self):
        cp = ConjunctivePredicate(terms=(
            SimplePredicate(process="a", kind=EventKind.TIMER),
            SimplePredicate(process="b", kind=EventKind.TIMER),
            SimplePredicate(process="c", kind=EventKind.TIMER),
        ))
        detector = GatherDetector(1, cp)
        detector.on_notice(notice(0, (1, 0, 0)), now=1.0)
        detector.on_notice(notice(1, (0, 1, 0)), now=2.0)
        detection = detector.on_notice(notice(2, (0, 0, 1)), now=3.0)
        assert detection is not None
        assert len(detection.hits) == 3
