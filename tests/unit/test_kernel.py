"""Unit tests for the simulation kernel."""

import pytest

from repro.simulation.kernel import SimulationKernel
from repro.util.errors import SimulationError


def test_events_fire_in_time_order():
    kernel = SimulationKernel()
    fired = []
    kernel.schedule(3.0, lambda: fired.append("c"))
    kernel.schedule(1.0, lambda: fired.append("a"))
    kernel.schedule(2.0, lambda: fired.append("b"))
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 3.0


def test_equal_time_priority_order():
    kernel = SimulationKernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append("low_prio"), priority=2)
    kernel.schedule(1.0, lambda: fired.append("high_prio"), priority=0)
    kernel.run()
    assert fired == ["high_prio", "low_prio"]


def test_equal_time_tiebreak_order():
    kernel = SimulationKernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append("z"), tiebreak=("z", 1))
    kernel.schedule(1.0, lambda: fired.append("a"), tiebreak=("a", 9))
    kernel.run()
    assert fired == ["a", "z"]


def test_equal_everything_insertion_order():
    kernel = SimulationKernel()
    fired = []
    for tag in ("first", "second", "third"):
        kernel.schedule(1.0, lambda t=tag: fired.append(t))
    kernel.run()
    assert fired == ["first", "second", "third"]


def test_negative_delay_rejected():
    kernel = SimulationKernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    kernel = SimulationKernel()
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(1.0, lambda: None)


def test_cancel_pending_entry():
    kernel = SimulationKernel()
    fired = []
    handle = kernel.schedule(1.0, lambda: fired.append("cancelled"))
    kernel.schedule(2.0, lambda: fired.append("kept"))
    assert kernel.cancel(handle)
    assert not kernel.cancel(handle)  # second cancel is a no-op
    kernel.run()
    assert fired == ["kept"]


def test_run_until_stops_clock_exactly():
    kernel = SimulationKernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(5.0, lambda: fired.append(5))
    executed = kernel.run(until=3.0)
    assert executed == 1
    assert fired == [1]
    assert kernel.now == 3.0
    kernel.run()
    assert fired == [1, 5]


def test_run_max_events():
    kernel = SimulationKernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i + 1), lambda i=i: fired.append(i))
    assert kernel.run(max_events=4) == 4
    assert fired == [0, 1, 2, 3]


def test_stop_when_predicate():
    kernel = SimulationKernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i + 1), lambda i=i: fired.append(i))
    kernel.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_callbacks_can_schedule_more():
    kernel = SimulationKernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            kernel.schedule(1.0, lambda: chain(n + 1))

    kernel.schedule(1.0, lambda: chain(1))
    kernel.run()
    assert fired == [1, 2, 3, 4, 5]
    assert kernel.now == 5.0


def test_run_not_reentrant():
    kernel = SimulationKernel()
    errors = []

    def bad():
        try:
            kernel.run()
        except SimulationError as exc:
            errors.append(exc)

    kernel.schedule(1.0, bad)
    kernel.run()
    assert len(errors) == 1


def test_pending_and_executed_counters():
    kernel = SimulationKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    assert kernel.pending == 2
    kernel.run()
    assert kernel.pending == 0
    assert kernel.events_executed == 2


def test_drain_cancelled_housekeeping():
    kernel = SimulationKernel()
    handles = [kernel.schedule(float(i + 1), lambda: None) for i in range(5)]
    for handle in handles[:3]:
        kernel.cancel(handle)
    kernel.drain_cancelled()
    assert kernel.pending == 2
    kernel.run()
    assert kernel.events_executed == 2


def test_zero_delay_runs_after_current():
    kernel = SimulationKernel()
    fired = []

    def first():
        fired.append("first")
        kernel.schedule(0.0, lambda: fired.append("deferred"))

    kernel.schedule(1.0, first)
    kernel.schedule(1.0, lambda: fired.append("second"))
    kernel.run()
    assert fired == ["first", "second", "deferred"]


# -- pluggable ordering hook (the schedule checker's entry point) ---------------


def test_ordering_hook_sees_all_live_entries_and_fires_its_choice():
    from repro.simulation.kernel import ScheduledEvent

    kernel = SimulationKernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append("early"))
    kernel.schedule(5.0, lambda: fired.append("late"))
    seen = []

    def latest_first(events):
        assert all(isinstance(e, ScheduledEvent) for e in events)
        seen.append(len(events))
        return max(events, key=lambda e: e.time).sequence

    kernel.set_ordering(latest_first)
    kernel.run()
    assert fired == ["late", "early"]
    assert seen == [2, 1]


def test_ordering_hook_never_moves_the_clock_backward():
    kernel = SimulationKernel()
    times = []
    kernel.schedule(1.0, lambda: times.append(kernel.now))
    kernel.schedule(5.0, lambda: times.append(kernel.now))
    kernel.set_ordering(lambda evs: max(evs, key=lambda e: e.time).sequence)
    kernel.run()
    # The 5.0 entry fired first; the 1.0 entry then fires "late" at 5.0.
    assert times == [5.0, 5.0]
    assert kernel.now == 5.0


def test_ordering_hook_skips_cancelled_entries():
    kernel = SimulationKernel()
    fired = []
    handle = kernel.schedule(1.0, lambda: fired.append("cancelled"))
    kernel.schedule(2.0, lambda: fired.append("kept"))
    kernel.cancel(handle)
    offered = []
    kernel.set_ordering(
        lambda evs: offered.append(len(evs)) or evs[0].sequence
    )
    kernel.run()
    assert fired == ["kept"]
    assert offered == [1]


def test_ordering_hook_unknown_sequence_is_an_error():
    kernel = SimulationKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.set_ordering(lambda evs: -12345)
    with pytest.raises(SimulationError):
        kernel.run()


def test_ordering_hook_uninstall_restores_heap_order():
    kernel = SimulationKernel()
    fired = []
    consulted = []
    kernel.schedule(1.0, lambda: fired.append("a"))
    kernel.schedule(2.0, lambda: fired.append("b"))
    kernel.schedule(3.0, lambda: fired.append("c"))

    def hook(events):
        consulted.append(len(events))
        return min(events, key=lambda e: e.time).sequence

    kernel.set_ordering(hook)
    kernel.step()
    kernel.set_ordering(None)
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert consulted == [3]  # only the first step went through the hook


def test_controlled_and_default_agree_when_hook_mimics_heap_order():
    """A hook that picks min-(time, priority, tiebreak, sequence) must
    reproduce the default execution exactly — determinism under control."""

    def build(kernel, fired):
        kernel.schedule(2.0, lambda: fired.append("t2"))
        kernel.schedule(1.0, lambda: fired.append("b"), priority=1,
                        tiebreak=("b",))
        kernel.schedule(1.0, lambda: fired.append("a"), priority=1,
                        tiebreak=("a",))
        kernel.schedule(1.0, lambda: fired.append("hi"), priority=0)

    plain = SimulationKernel()
    fired_plain = []
    build(plain, fired_plain)
    plain.run()

    controlled = SimulationKernel()
    fired_controlled = []
    build(controlled, fired_controlled)
    controlled.set_ordering(lambda evs: min(
        evs, key=lambda e: (e.time, e.priority, e.tiebreak, e.sequence)
    ).sequence)
    controlled.run()
    assert fired_controlled == fired_plain
