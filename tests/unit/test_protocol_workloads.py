"""Unit tests for the philosopher and two-phase-commit workloads."""

import pytest

from repro.events.event import EventKind
from repro.experiments import build_system
from repro.workloads import philosophers, two_phase_commit
from repro.workloads.philosophers import waits_for_cycle
from repro.workloads.two_phase_commit import COORDINATOR


class TestPhilosophersOrdered:
    def test_everyone_eats(self):
        system = build_system(
            lambda: philosophers.build(n=4, meals=2, policy="ordered"), 1
        )
        system.run_to_quiescence()
        for i in range(4):
            assert system.state_of(f"ph{i}")["meals"] == 2
        # All forks returned.
        for i in range(4):
            assert system.state_of(f"fork{i}")["holder"] is None

    def test_no_waits_for_cycle_at_completion(self):
        system = build_system(
            lambda: philosophers.build(n=4, meals=1, policy="ordered"), 2
        )
        system.run_to_quiescence()
        states = {n: system.state_of(n) for n in system.user_process_names}
        assert waits_for_cycle(states) is None

    def test_mutual_exclusion_per_fork(self):
        """A fork never transitions holder->same holder, and every
        transition away from a holder is caused by that holder's release
        (direct handoff to the queue head is legal)."""
        system = build_system(
            lambda: philosophers.build(n=3, meals=2, policy="ordered"), 3
        )
        system.run_to_quiescence()
        for i in range(3):
            fork = f"fork{i}"
            changes = [
                e.attrs["value"]
                for e in system.log.find(
                    process=fork, kind=EventKind.STATE_CHANGE, detail="holder"
                )
            ]
            for value, nxt in zip(changes, changes[1:]):
                assert value != nxt, f"{fork} re-granted to current holder"
            # Grant/release accounting balances per philosopher.
            releases = [
                e for e in system.log.find(process=fork, kind=EventKind.RECEIVE,
                                           detail="release")
            ]
            grants = [
                e for e in system.log.find(process=fork, kind=EventKind.SEND,
                                           detail="granted")
            ]
            assert len(grants) == len(releases) or len(grants) == len(releases) + 1


class TestPhilosophersDeadlock:
    def test_left_first_equal_timing_deadlocks(self):
        system = build_system(
            lambda: philosophers.build(n=4, meals=2, policy="left-first"), 1
        )
        system.run_to_quiescence()
        states = {n: system.state_of(n) for n in system.user_process_names}
        # Nobody finished a meal and everybody waits.
        assert all(states[f"ph{i}"]["meals"] == 0 for i in range(4))
        cycle = waits_for_cycle(states)
        assert cycle is not None
        assert len(cycle) == 4
        assert set(cycle) == {f"ph{i}" for i in range(4)}

    def test_cycle_reporter_ignores_partial_waits(self):
        states = {
            "ph0": {"waiting_for": "fork1"},
            "fork1": {"holder": None},
        }
        assert waits_for_cycle(states) is None


class TestTwoPhaseCommit:
    def test_all_rounds_commit(self):
        system = build_system(
            lambda: two_phase_commit.build(n=3, rounds=4), 1
        )
        system.run_to_quiescence()
        coord = system.state_of(COORDINATOR)
        assert coord["decisions"] == [1, 2, 3, 4]
        for i in range(3):
            decisions = system.state_of(f"part{i}")["decisions"]
            assert [d for _, d in decisions] == ["commit"] * 4

    def test_no_voter_aborts_every_round(self):
        system = build_system(
            lambda: two_phase_commit.build(n=3, rounds=3, no_voter="part1"), 2
        )
        system.run_to_quiescence()
        for i in range(3):
            decisions = system.state_of(f"part{i}")["decisions"]
            assert [d for _, d in decisions] == ["abort"] * 3

    def test_silent_voter_wedges_the_round(self):
        system = build_system(
            lambda: two_phase_commit.build(
                n=3, rounds=5, silent_voter="part2", silent_round=3
            ),
            3,
        )
        system.run_to_quiescence()
        coord = system.state_of(COORDINATOR)
        # Rounds 1-2 completed; round 3 is wedged collecting votes.
        assert coord["decisions"] == [1, 2]
        assert coord["round"] == 3
        assert coord["phase"] == "collecting"
        # The missing vote is identifiable from the frozen state.
        missing = {f"part{i}" for i in range(3)} - set(coord["votes"])
        assert missing == {"part2"}
        # The participant recorded that it swallowed the vote.
        marks = system.log.find(
            process="part2", kind=EventKind.STATE_CHANGE, detail="vote_swallowed"
        )
        assert len(marks) == 1

    def test_decision_marks_for_breakpoints(self):
        system = build_system(
            lambda: two_phase_commit.build(n=2, rounds=2), 4
        )
        system.run_to_quiescence()
        marks = system.log.find(
            process=COORDINATOR, kind=EventKind.STATE_CHANGE, detail="decision"
        )
        assert len(marks) == 2
        assert all(m.attrs["decision"] == "commit" for m in marks)
