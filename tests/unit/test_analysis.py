"""Unit tests for the analysis oracles: they must catch bad states too."""

import dataclasses

import pytest

from repro.analysis import (
    check_cut_consistency,
    cut_of,
    drift_between,
    events_inside_cut,
    halt_timing,
    message_overhead,
    states_equivalent,
)
from repro.experiments import build_system, run_halting, run_snapshot
from repro.snapshot.state import ChannelState, GlobalState
from repro.workloads import bank, chatter


def halted_state(seed=2):
    system, _, state = run_halting(
        lambda: bank.build(n=3, transfers=15), seed, "branch0", 8
    )
    return system, state


class TestConsistencyChecker:
    def test_accepts_good_state(self):
        system, state = halted_state()
        assert check_cut_consistency(system.log, state)

    def test_detects_forward_shifted_process(self):
        """Pushing one process's cut *backward* while others saw its later
        messages must be flagged (orphan receives)."""
        system, state = halted_state()
        victim = "branch0"
        snap = state.processes[victim]
        mutated = dataclasses.replace(
            snap,
            local_seq=0,
            vector=tuple(0 for _ in snap.vector),
            lamport=0,
        )
        bad = GlobalState(
            origin="halting",
            processes={**dict(state.processes), victim: mutated},
            channels=dict(state.channels),
        )
        report = check_cut_consistency(system.log, bad)
        assert not report.consistent
        assert report.violations

    def test_detects_wrong_channel_contents(self):
        system, state = halted_state()
        # Drop every recorded channel message: in-transit mismatch.
        emptied = {
            channel: ChannelState(channel=channel, messages=(), complete=True)
            for channel in state.channels
        }
        if not emptied:
            pytest.skip("no pending channels this seed")
        bad = GlobalState(
            origin="halting",
            processes=dict(state.processes),
            channels=emptied,
        )
        report = check_cut_consistency(system.log, bad)
        assert not report.consistent

    def test_expected_in_transit_counts(self):
        system, state = halted_state()
        report = check_cut_consistency(system.log, state)
        for channel, count in report.expected_in_transit.items():
            recorded = len(state.pending_on(channel))
            assert recorded == count

    def test_cut_helpers(self):
        system, state = halted_state()
        cut = cut_of(state)
        inside = events_inside_cut(system.log, state)
        assert all(e.local_seq <= cut[e.process] for e in inside)
        assert all(e.process in cut for e in inside)


class TestEquivalence:
    def test_equal_states(self):
        builder = lambda: bank.build(n=3, transfers=15)
        _, _, s_h = run_halting(builder, 4, "branch1", 9)
        _, _, s_r = run_snapshot(builder, 4, "branch1", 9)
        assert states_equivalent(s_h, s_r)

    def test_reports_process_difference(self):
        _, state = halted_state()
        snap = state.processes["branch0"]
        tweaked = dataclasses.replace(snap, state={**snap.state, "balance": -1})
        other = GlobalState(
            origin="halting",
            processes={**dict(state.processes), "branch0": tweaked},
            channels=dict(state.channels),
        )
        report = states_equivalent(state, other)
        assert not report.equivalent
        assert any("branch0" in d for d in report.differences)

    def test_reports_channel_difference(self):
        _, state = halted_state()
        other = GlobalState(
            origin="halting",
            processes=dict(state.processes),
            channels={},  # all channels empty
        )
        report = states_equivalent(state, other)
        if state.channels:
            assert not report.equivalent
        else:
            assert report.equivalent

    def test_reports_population_difference(self):
        _, state = halted_state()
        fewer = dict(state.processes)
        fewer.popitem()
        report = states_equivalent(
            state,
            GlobalState(origin="halting", processes=fewer, channels={}),
        )
        assert not report.equivalent
        assert any("population" in d for d in report.differences)


class TestMetrics:
    def test_zero_drift_between_identical(self):
        _, state = halted_state()
        drift = drift_between(state, state)
        assert drift.total == 0
        assert drift.maximum == 0
        assert drift.processes_past_cut == 0

    def test_positive_drift(self):
        _, state = halted_state()
        snap = state.processes["branch0"]
        later = dataclasses.replace(snap, local_seq=snap.local_seq + 5)
        advanced = GlobalState(
            origin="naive",
            processes={**dict(state.processes), "branch0": later},
            channels={},
        )
        drift = drift_between(state, advanced)
        assert drift.per_process["branch0"] == 5
        assert drift.total == 5
        assert drift.processes_past_cut == 1

    def test_message_overhead_counts_markers(self):
        system, _, _ = run_halting(
            lambda: bank.build(n=3, transfers=15), 2, "branch0", 8
        )
        overhead = message_overhead(system)
        assert overhead.user_messages > 0
        assert overhead.control_messages > 0  # halt markers
        assert overhead.by_kind["halt_marker"] == overhead.control_messages
        assert overhead.control_per_user > 0

    def test_no_control_traffic_without_debugging(self):
        system = build_system(lambda: chatter.build(n=3, budget=10, seed=1), 1)
        system.run_to_quiescence()
        overhead = message_overhead(system)
        assert overhead.control_messages == 0

    def test_halt_timing(self):
        _, state = halted_state()
        timing = halt_timing(state, initiated_at=0.0)
        assert timing is not None
        assert timing.first_halt <= timing.last_halt
        assert timing.latency >= timing.span >= 0

    def test_halt_timing_empty_state(self):
        empty = GlobalState(origin="halting", processes={}, channels={})
        assert halt_timing(empty, 0.0) is None
