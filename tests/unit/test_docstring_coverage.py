"""CI gate: every public module and public class in ``src/repro`` carries a
docstring. The repo's documentation strategy leans on docstrings (the docs
link into them, the tutorial quotes them), so missing ones are regressions,
not style nits.

The ``repro.check`` and ``repro.record`` packages — the checker
handbook's and the recording guide's subjects — are held to a stricter
bar: every public *function and method* documents itself too, since
docs/CHECKING.md and docs/RECORDING.md point readers straight at those
signatures."""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _public_classes(tree):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield node


def _public_functions(tree):
    """Public module-level functions plus methods of public classes.

    Closures and underscore-private names are exempt — they are local
    implementation detail, not the surface the handbook points at.
    """
    def defs_in(body):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not node.name.startswith("_"):
                yield node

    yield from defs_in(tree.body)
    for cls in tree.body:
        if isinstance(cls, ast.ClassDef) and not cls.name.startswith("_"):
            yield from defs_in(cls.body)


def test_every_public_module_and_class_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC.parent)
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(f"{relative}: module docstring")
        for node in _public_classes(tree):
            if ast.get_docstring(node) is None:
                missing.append(f"{relative}:{node.lineno}: class {node.name}")
    assert not missing, (
        "public modules/classes without docstrings:\n  "
        + "\n  ".join(missing)
    )


def test_every_public_function_in_the_documented_packages_has_a_docstring():
    missing = []
    for package in ("check", "record"):
        for path in sorted((SRC / package).rglob("*.py")):
            relative = path.relative_to(SRC.parent)
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
            for node in _public_functions(tree):
                if ast.get_docstring(node) is None:
                    missing.append(
                        f"{relative}:{node.lineno}: def {node.name}"
                    )
    assert not missing, (
        "public repro.check/repro.record functions without docstrings:\n  "
        + "\n  ".join(missing)
    )
