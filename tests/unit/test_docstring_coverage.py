"""CI gate: every public module and public class in ``src/repro`` carries a
docstring. The repo's documentation strategy leans on docstrings (the docs
link into them, the tutorial quotes them), so missing ones are regressions,
not style nits.

The ``repro.check``, ``repro.record``, and ``repro.debugger`` packages —
the checker handbook's, the recording guide's, and the debugger
handbook's subjects — are held to a stricter bar: every public *function
and method* documents itself too, since docs/CHECKING.md,
docs/RECORDING.md, and docs/DEBUGGER.md point readers straight at those
signatures. A method overriding a documented method of a base class in
the same module inherits that docstring (the surface classes implement
one documented abstract API three times; repeating the text would drown
the real documentation)."""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _public_classes(tree):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield node


def _public_functions(tree):
    """Public module-level functions plus methods of public classes.

    Closures and underscore-private names are exempt — they are local
    implementation detail, not the surface the handbook points at. A
    method overriding a *documented* method of a base class defined in
    the same module is exempt too: it inherits that docstring.
    """
    def defs_in(body):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not node.name.startswith("_"):
                yield node

    # class name -> names of its documented methods (same module only).
    documented = {
        cls.name: {
            fn.name for fn in defs_in(cls.body)
            if ast.get_docstring(fn) is not None
        }
        for cls in tree.body if isinstance(cls, ast.ClassDef)
    }

    def inherited(cls):
        names = set()
        for base in cls.bases:
            if isinstance(base, ast.Name):
                names |= documented.get(base.id, set())
        return names

    yield from defs_in(tree.body)
    for cls in tree.body:
        if isinstance(cls, ast.ClassDef) and not cls.name.startswith("_"):
            base_docs = inherited(cls)
            for fn in defs_in(cls.body):
                if fn.name not in base_docs:
                    yield fn


def test_every_public_module_and_class_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC.parent)
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(f"{relative}: module docstring")
        for node in _public_classes(tree):
            if ast.get_docstring(node) is None:
                missing.append(f"{relative}:{node.lineno}: class {node.name}")
    assert not missing, (
        "public modules/classes without docstrings:\n  "
        + "\n  ".join(missing)
    )


def test_every_public_function_in_the_documented_packages_has_a_docstring():
    missing = []
    for package in ("check", "record", "debugger"):
        for path in sorted((SRC / package).rglob("*.py")):
            relative = path.relative_to(SRC.parent)
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
            for node in _public_functions(tree):
                if ast.get_docstring(node) is None:
                    missing.append(
                        f"{relative}:{node.lineno}: def {node.name}"
                    )
    assert not missing, (
        "public repro.check/record/debugger functions without "
        "docstrings:\n  " + "\n  ".join(missing)
    )
