"""CI gate: every public module and public class in ``src/repro`` carries a
docstring. The repo's documentation strategy leans on docstrings (the docs
link into them, the tutorial quotes them), so missing ones are regressions,
not style nits."""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _public_classes(tree):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield node


def test_every_public_module_and_class_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC.parent)
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(f"{relative}: module docstring")
        for node in _public_classes(tree):
            if ast.get_docstring(node) is None:
                missing.append(f"{relative}:{node.lineno}: class {node.name}")
    assert not missing, (
        "public modules/classes without docstrings:\n  "
        + "\n  ".join(missing)
    )
