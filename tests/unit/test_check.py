"""Unit tests for the schedule checker's moving parts.

Covers the pieces that must be right for exploration to mean anything:
entry classification and the independence relation, strategy semantics
(scripted replay, divergence counting), sleep-set child generation and
pruning, ddmin's 1-minimality, and artifact (de)serialization.
"""

import pytest

from repro.check.artifact import ScheduleArtifact, load_artifact, save_artifact
from repro.check.explorer import ExplorationReport, _Node, _push_children
from repro.check.invariants import RunRecord, halting_order_prefix
from repro.check.minimize import ddmin
from repro.check.runner import ScheduleResult
from repro.check.scheduler import (
    ChoicePoint,
    ControlledScheduler,
    DefaultStrategy,
    ScriptedStrategy,
    TraceReplayStrategy,
    classify,
    independent,
    target_process,
)
from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_INTERNAL,
    PRIORITY_TIMER,
    ScheduledEvent,
    SimulationKernel,
)
from repro.util.errors import CodecError


# -- classification and independence -------------------------------------------


def _event(seq, time, priority, tiebreak):
    return ScheduledEvent(sequence=seq, time=time, priority=priority,
                          tiebreak=tiebreak)


def test_classify_covers_the_runtime_tiebreak_conventions():
    assert classify(_event(1, 0.0, PRIORITY_DELIVERY, ("p0->p1", 3))) \
        == "chan:p0->p1"
    assert classify(_event(2, 0.0, PRIORITY_DELIVERY, ("ack", "p0->p1", 3))) \
        == "ack:p0->p1"
    assert classify(_event(3, 0.0, PRIORITY_TIMER, ("rtx", "p0->p1", 1, 2))) \
        == "rtx:p0->p1"
    assert classify(_event(4, 0.0, PRIORITY_TIMER, ("p2", "hold", 9))) \
        == "timer:p2"
    assert classify(_event(5, 0.0, PRIORITY_INTERNAL, ("trigger", "p1"))) \
        == "internal:trigger:p1"


def test_classify_unknown_shape_gets_a_private_group():
    label = classify(_event(9, 0.0, 7, ("weird",)))
    assert label.startswith("entry:")
    assert "9" in label  # per-entry: cannot collide with another entry


def test_target_process_and_independence():
    assert target_process("chan:p0->p1") == "p1"      # lands at receiver
    assert target_process("ack:p0->p1") == "p0"       # lands at sender
    assert target_process("rtx:p0->p1") == "p0"
    assert target_process("timer:p2") == "p2"
    assert target_process("internal:late-halt:p3") == "p3"
    assert independent("chan:p0->p1", "timer:p2")
    assert not independent("chan:p0->p1", "timer:p1")
    assert not independent("internal:trigger:p1", "chan:p0->p1")


# -- the controlled scheduler over a real kernel -------------------------------


def test_scheduler_keeps_fifo_within_a_channel_group():
    kernel = SimulationKernel()
    fired = []
    # Two deliveries on one channel (message_index 0 then 1) plus a timer:
    # the channel group must expose only its FIFO head.
    kernel.schedule(1.0, lambda: fired.append("m0"),
                    priority=PRIORITY_DELIVERY, tiebreak=("p0->p1", 0))
    kernel.schedule(1.0, lambda: fired.append("m1"),
                    priority=PRIORITY_DELIVERY, tiebreak=("p0->p1", 1))
    kernel.schedule(1.0, lambda: fired.append("t"),
                    priority=PRIORITY_TIMER, tiebreak=("p9", "x", 0))
    scheduler = ControlledScheduler(ScriptedStrategy(["timer:p9"]))
    scheduler.install(kernel)
    kernel.run()
    assert fired == ["t", "m0", "m1"]
    assert scheduler.trace == ["timer:p9", "chan:p0->p1", "chan:p0->p1"]
    # Only the first step was a choice point: once the timer fired, the
    # channel group was alone (its two entries are one FIFO group).
    assert scheduler.decisions == ["timer:p9"]
    assert [cp.enabled for cp in scheduler.choice_points] == \
        [("chan:p0->p1", "timer:p9")]


def test_scripted_strategy_counts_divergences_and_falls_back():
    strategy = ScriptedStrategy(["timer:pX"])
    assert strategy.on_step(["chan:a->b", "timer:p1"]) == "chan:a->b"
    assert strategy.divergences == 1
    # Script exhausted: default order from here on.
    assert strategy.on_step(["chan:a->b", "timer:p1"]) == "chan:a->b"


def test_trace_replay_consumes_forced_steps_too():
    strategy = TraceReplayStrategy(["only", "second"])
    assert strategy.on_step(["only"]) == "only"       # forced, still consumed
    assert strategy.on_step(["other", "second"]) == "second"
    assert strategy.divergences == 0


# -- sleep sets -----------------------------------------------------------------


def _fake_result(trace, choice_points, decisions):
    record = RunRecord(
        scenario="fake", mode="basic", system=None, quiesced=True,
        all_halted=True, halt_state=None, halt_order=[], halt_paths={},
        trace=trace, decisions=decisions, choice_points=choice_points,
    )
    return ScheduleResult(record=record)


def test_sleep_set_prunes_the_commuting_sibling():
    # One choice point with three alternatives; "timer:p8" is independent
    # of everything else there, so after branching to it, the next sibling
    # keeps it asleep... but siblings dependent on the new branch wake.
    cp = ChoicePoint(
        trace_index=0,
        enabled=("chan:a->p1", "chan:b->p1", "timer:p8"),
        chosen="chan:a->p1",
    )
    result = _fake_result(["chan:a->p1"], [cp], ["chan:a->p1"])
    stack = []
    report = ExplorationReport(scenario="fake", mutation=None, budget=10)
    _push_children(stack, result, 0, frozenset(), 10, report)
    by_prefix = {node.prefix: node for node in stack}
    assert set(by_prefix) == {("chan:b->p1",), ("timer:p8",)}
    # chan:b->p1 branches first: the already-explored chan:a->p1 targets
    # the same process, so it must NOT sleep (dependent — both orders
    # genuinely differ); timer:p8 commutes with it and stays awake too
    # (it was not explored yet at that point).
    assert by_prefix[("chan:b->p1",)].sleep == frozenset()
    # timer:p8's child: both chan alternatives target p1, independent of
    # the timer at p8 — both go to sleep; exploring them again under this
    # branch would re-visit states the first two subtrees already cover.
    assert by_prefix[("timer:p8",)].sleep == \
        frozenset({"chan:a->p1", "chan:b->p1"})


def test_sleeping_label_is_skipped_at_the_next_choice_point():
    cp = ChoicePoint(
        trace_index=0, enabled=("chan:a->p1", "chan:x->p9"),
        chosen="chan:a->p1",
    )
    result = _fake_result(["chan:a->p1"], [cp], ["chan:a->p1"])
    stack = []
    report = ExplorationReport(scenario="fake", mutation=None, budget=10)
    # The node already has chan:x->p9 asleep (covered by a sibling).
    _push_children(stack, result, 0, frozenset({"chan:x->p9"}), 10, report)
    assert stack == []  # the only alternative was asleep
    assert report.slept_branches == 1


def test_dependent_step_wakes_a_sleeping_label():
    # chan:x->p9 is asleep, but a forced step targeting p9 executes before
    # the next choice point — the sleeper is woken and branched.
    cps = [ChoicePoint(trace_index=1,
                       enabled=("chan:a->p1", "chan:x->p9"),
                       chosen="chan:a->p1")]
    result = _fake_result(["timer:p9", "chan:a->p1"], cps, ["chan:a->p1"])
    stack = []
    report = ExplorationReport(scenario="fake", mutation=None, budget=10)
    _push_children(stack, result, 0, frozenset({"chan:x->p9"}), 10, report)
    assert [node.prefix for node in stack] == [("chan:x->p9",)]
    assert report.slept_branches == 0


def test_dfs_depth_bounds_the_branching():
    cps = [
        ChoicePoint(trace_index=0, enabled=("a:x->p1", "b:x->p2"),
                    chosen="a:x->p1"),
        ChoicePoint(trace_index=1, enabled=("a:x->p1", "b:x->p2"),
                    chosen="a:x->p1"),
    ]
    result = _fake_result(["a:x->p1", "a:x->p1"], cps,
                          ["a:x->p1", "a:x->p1"])
    stack = []
    report = ExplorationReport(scenario="fake", mutation=None, budget=10)
    _push_children(stack, result, 0, frozenset(), 1, report)
    assert [node.prefix for node in stack] == [("b:x->p2",)]  # depth 1 only


# -- ddmin ----------------------------------------------------------------------


def test_ddmin_finds_the_minimal_pair():
    calls = []

    def violates(candidate):
        calls.append(tuple(candidate))
        return "x" in candidate and "z" in candidate

    items = list("abxcdzef")
    minimal = ddmin(items, violates)
    assert minimal == ["x", "z"]
    # 1-minimality, checked directly: dropping either element un-violates.
    assert not violates(["x"]) and not violates(["z"])


def test_ddmin_single_culprit_and_empty_minimum():
    assert ddmin(list("abcd"), lambda c: "c" in c) == ["c"]
    # Violation independent of the schedule: minimum is the empty script.
    assert ddmin(list("abcd"), lambda c: True) == []


def test_ddmin_preserves_order_of_surviving_decisions():
    def violates(candidate):
        # Violates only if "b" comes before "d" (subsequence semantics).
        text = "".join(candidate)
        return "b" in text and "d" in text and \
            text.index("b") < text.index("d")

    assert ddmin(list("abcde"), violates) == ["b", "d"]


# -- invariants on hand-built records -------------------------------------------


def _prefix_record(halt_order, halt_paths, names=("p0", "p1", "p2")):
    class _Sys:
        user_process_names = list(names)

    return RunRecord(
        scenario="fake", mode="basic", system=_Sys(), quiesced=True,
        all_halted=True, halt_state=None, halt_order=list(halt_order),
        halt_paths=dict(halt_paths),
    )


def test_halting_order_prefix_accepts_a_consistent_history():
    record = _prefix_record(
        ["p0", "p1", "p2"],
        {"p0": (), "p1": ("p0",), "p2": ("p0", "p1")},
    )
    assert halting_order_prefix(record) == []


def test_halting_order_prefix_rejects_a_hop_that_had_not_halted():
    record = _prefix_record(
        ["p1", "p0", "p2"],
        {"p1": ("p0",), "p0": (), "p2": ("p0", "p1")},
    )
    violations = halting_order_prefix(record)
    assert violations and violations[0].invariant == "halting_order_prefix"
    assert "p1" in violations[0].details[0]


def test_halting_order_prefix_skips_debugger_hops():
    record = _prefix_record(
        ["p0", "p1"],
        {"p0": ("d",), "p1": ("d", "p0")},
        names=("p0", "p1"),
    )
    assert halting_order_prefix(record) == []


# -- artifacts ------------------------------------------------------------------


def test_artifact_roundtrip(tmp_path):
    artifact = ScheduleArtifact(
        scenario="token_ring", seed=0, mutation="late-halt",
        decisions=("internal:trigger:p1", "chan:p1->p2"),
        invariant="theorem2_equivalence", details=("state diff",),
    )
    path = str(tmp_path / "artifact.json")
    save_artifact(artifact, path)
    assert load_artifact(path) == artifact


def test_artifact_rejects_wrong_kind_and_format(tmp_path):
    artifact = ScheduleArtifact(
        scenario="s", seed=0, mutation=None, decisions=(),
        invariant="halt_convergence", details=(),
    )
    wrong_kind = artifact.to_dict()
    wrong_kind["kind"] = "something-else"
    with pytest.raises(CodecError):
        ScheduleArtifact.from_dict(wrong_kind)
    wrong_format = artifact.to_dict()
    wrong_format["format"] = 99
    with pytest.raises(CodecError):
        ScheduleArtifact.from_dict(wrong_format)
