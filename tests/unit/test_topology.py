"""Unit tests for topologies and their builders."""

import pytest

from repro.network.topology import (
    Topology,
    complete,
    pipeline,
    random_topology,
    ring,
    star,
    two_clusters,
)
from repro.util.errors import TopologyError
from repro.util.ids import ChannelId


class TestTopologyBasics:
    def test_add_and_query(self):
        topo = Topology().add_process("a").add_process("b")
        channel = topo.add_channel("a", "b")
        assert channel == ChannelId("a", "b")
        assert topo.outgoing("a") == (channel,)
        assert topo.incoming("b") == (channel,)
        assert topo.neighbors_out("a") == ("b",)
        assert topo.neighbors_in("b") == ("a",)
        assert topo.has_channel("a", "b")
        assert not topo.has_channel("b", "a")

    def test_duplicate_process_rejected(self):
        topo = Topology().add_process("a")
        with pytest.raises(TopologyError):
            topo.add_process("a")

    def test_duplicate_channel_rejected(self):
        topo = Topology().add_process("a").add_process("b")
        topo.add_channel("a", "b")
        with pytest.raises(TopologyError):
            topo.add_channel("a", "b")

    def test_self_channel_rejected(self):
        topo = Topology().add_process("a")
        with pytest.raises(TopologyError):
            topo.add_channel("a", "a")

    def test_unknown_process_rejected(self):
        topo = Topology().add_process("a")
        with pytest.raises(TopologyError):
            topo.add_channel("a", "ghost")
        with pytest.raises(TopologyError):
            topo.outgoing("ghost")

    def test_bidirectional(self):
        topo = Topology().add_process("a").add_process("b")
        forward, backward = topo.add_bidirectional("a", "b")
        assert forward == ChannelId("a", "b")
        assert backward == ChannelId("b", "a")


class TestGraphAnalyses:
    def test_ring_is_strongly_connected(self):
        assert ring(["a", "b", "c"]).is_strongly_connected()

    def test_pipeline_is_not_strongly_connected(self):
        assert not pipeline(["a", "b", "c"]).is_strongly_connected()

    def test_complete_is_strongly_connected(self):
        assert complete(["a", "b", "c", "d"]).is_strongly_connected()

    def test_star_is_strongly_connected(self):
        assert star("hub", ["a", "b"]).is_strongly_connected()

    def test_reachability_on_pipeline(self):
        topo = pipeline(["a", "b", "c"])
        assert topo.reachable_from("a") == {"a", "b", "c"}
        assert topo.reachable_from("c") == {"c"}

    def test_empty_topology_trivially_connected(self):
        assert Topology().is_strongly_connected()

    def test_single_process_connected(self):
        assert Topology().add_process("solo").is_strongly_connected()


class TestWithDebugger:
    def test_pipeline_becomes_strongly_connected(self):
        topo = pipeline(["a", "b", "c"])
        extended = topo.with_debugger("d")
        assert extended.is_strongly_connected()
        assert "d" in extended.processes
        # Control channels both ways to every user process (§2.2.3).
        for name in ("a", "b", "c"):
            assert extended.has_channel("d", name)
            assert extended.has_channel(name, "d")

    def test_original_untouched(self):
        topo = pipeline(["a", "b"])
        topo.with_debugger()
        assert "d" not in topo.processes
        assert len(topo.channels) == 1

    def test_user_channels_preserved(self):
        topo = ring(["a", "b", "c"])
        extended = topo.with_debugger()
        for channel in topo.channels:
            assert extended.has_channel(channel.src, channel.dst)


class TestBuilders:
    def test_ring_shape(self):
        topo = ring(["a", "b", "c"])
        assert len(topo.channels) == 3
        assert topo.has_channel("c", "a")

    def test_bidirectional_ring(self):
        topo = ring(["a", "b", "c"], bidirectional=True)
        assert len(topo.channels) == 6

    def test_complete_shape(self):
        topo = complete(["a", "b", "c"])
        assert len(topo.channels) == 6

    def test_star_shape(self):
        topo = star("hub", ["a", "b", "c"])
        assert len(topo.channels) == 6
        assert not topo.has_channel("a", "b")

    def test_random_topology_deterministic(self):
        names = [f"p{i}" for i in range(6)]
        a = random_topology(names, 0.3, seed=5)
        b = random_topology(names, 0.3, seed=5)
        assert a.channels == b.channels
        assert a.is_strongly_connected()

    def test_random_topology_unconnected_variant(self):
        names = [f"p{i}" for i in range(6)]
        topo = random_topology(names, 0.0, seed=1, ensure_strongly_connected=False)
        assert len(topo.channels) == 0

    def test_two_clusters(self):
        topo = two_clusters(["a0", "a1"], ["b0", "b1"], bridges=[("a0", "b0")])
        assert topo.has_channel("a0", "a1")
        assert topo.has_channel("b0", "b1")
        assert topo.has_channel("a0", "b0")
        assert topo.has_channel("b0", "a0")
        assert not topo.has_channel("a1", "b1")
        assert topo.is_strongly_connected()

    def test_duplicate_names_rejected(self):
        with pytest.raises(Exception):
            ring(["a", "a"])
