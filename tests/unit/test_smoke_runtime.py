"""Smoke tests: the substrate runs a ping-pong deterministically."""

from repro.network.latency import UniformLatency
from repro.network.topology import ring
from repro.runtime.process import Process
from repro.runtime.system import System


class PingPong(Process):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_start(self, ctx):
        ctx.state["count"] = 0
        if ctx.name == "p0":
            ctx.send(ctx.neighbors_out()[0], 0, tag="ping")

    def on_message(self, ctx, src, payload):
        ctx.state["count"] = ctx.state["count"] + 1
        if payload < self.rounds:
            ctx.send(ctx.neighbors_out()[0], payload + 1, tag="ping")


def build(seed=7):
    topo = ring(["p0", "p1"], bidirectional=False)
    # A 2-ring: p0 -> p1 -> p0.
    system = System(
        topo,
        {"p0": PingPong(10), "p1": PingPong(10)},
        seed=seed,
        latency=UniformLatency(0.5, 1.5),
    )
    return system


def test_ping_pong_runs_to_quiescence():
    system = build()
    system.run_to_quiescence()
    total = system.state_of("p0")["count"] + system.state_of("p1")["count"]
    assert total == 11  # payloads 0..10 delivered


def test_determinism_same_seed():
    a, b = build(seed=3), build(seed=3)
    a.run_to_quiescence()
    b.run_to_quiescence()
    assert a.kernel.now == b.kernel.now
    assert [(e.process, e.kind, e.detail) for e in a.log.events] == [
        (e.process, e.kind, e.detail) for e in b.log.events
    ]


def test_different_seed_changes_timing():
    a, b = build(seed=1), build(seed=2)
    a.run_to_quiescence()
    b.run_to_quiescence()
    assert a.kernel.now != b.kernel.now
