"""Unit tests for messages, latency models, and channels."""

import random

import pytest

from repro.network.channel import Channel
from repro.network.latency import (
    ExponentialLatency,
    FixedLatency,
    SpikeLatency,
    UniformLatency,
)
from repro.network.message import Envelope, MessageKind
from repro.simulation.kernel import SimulationKernel
from repro.util.errors import ConfigurationError
from repro.util.ids import ChannelId, SequenceGenerator


class TestMessageKinds:
    def test_user_vs_debug(self):
        assert MessageKind.USER.is_user
        assert not MessageKind.USER.is_debug
        for kind in MessageKind:
            if kind is not MessageKind.USER:
                assert kind.is_debug
                assert not kind.is_user


class TestEnvelope:
    def make(self, payload):
        return Envelope(
            channel=ChannelId("a", "b"),
            kind=MessageKind.USER,
            payload=payload,
            send_time=1.0,
            seq=7,
        )

    def test_accessors(self):
        envelope = self.make("hi")
        assert envelope.src == "a"
        assert envelope.dst == "b"

    def test_content_key_ignores_seq_and_time(self):
        a = self.make({"x": 1})
        b = Envelope(
            channel=ChannelId("a", "b"),
            kind=MessageKind.USER,
            payload={"x": 1},
            send_time=99.0,
            seq=123,
        )
        assert a.content_key() == b.content_key()

    def test_content_key_distinguishes_payloads(self):
        assert self.make([1, 2]).content_key() != self.make([2, 1]).content_key()

    def test_content_key_handles_nested_structures(self):
        payload = {"a": [1, {2, 3}], "b": ("x", {"y": 4})}
        key = self.make(payload).content_key()
        assert isinstance(hash(key), int)  # fully hashable


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(2.5)
        assert model.sample(random.Random(0)) == 2.5

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 2.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_exponential_above_floor(self):
        model = ExponentialLatency(mean=1.0, floor=0.5)
        rng = random.Random(2)
        for _ in range(100):
            assert model.sample(rng) > 0.5

    def test_spike_values(self):
        model = SpikeLatency(base=1.0, spike=50.0, spike_probability=0.5)
        rng = random.Random(3)
        values = {model.sample(rng) for _ in range(200)}
        assert values == {1.0, 50.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(0)
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            SpikeLatency(spike_probability=1.5)

    def test_determinism_per_seed(self):
        model = UniformLatency(0.1, 5.0)
        a = [model.sample(random.Random(42)) for _ in range(1)]
        b = [model.sample(random.Random(42)) for _ in range(1)]
        assert a == b


class TestChannel:
    def make_channel(self, latency=None, seed=0):
        kernel = SimulationKernel()
        received = []
        channel = Channel(
            channel_id=ChannelId("a", "b"),
            kernel=kernel,
            user_rng=random.Random(f"{seed}u"),
            control_rng=random.Random(f"{seed}c"),
            sequences=SequenceGenerator(start=1),
            latency=latency,
        )
        channel.connect(lambda env: received.append(env))
        return kernel, channel, received

    def test_fifo_under_random_latency(self):
        kernel, channel, received = self.make_channel(
            latency=UniformLatency(0.1, 10.0)
        )
        for i in range(50):
            channel.send(MessageKind.USER, i)
        kernel.run()
        assert [env.payload for env in received] == list(range(50))

    def test_in_flight_tracking(self):
        kernel, channel, received = self.make_channel(latency=FixedLatency(1.0))
        channel.send(MessageKind.USER, "x")
        channel.send(MessageKind.USER, "y")
        assert [e.payload for e in channel.in_flight] == ["x", "y"]
        kernel.run()
        assert channel.in_flight == []

    def test_stats_by_kind(self):
        kernel, channel, received = self.make_channel()
        channel.send(MessageKind.USER, 1)
        channel.send(MessageKind.HALT_MARKER, 2)
        channel.send(MessageKind.USER, 3)
        kernel.run()
        assert channel.stats.user_sent == 2
        assert channel.stats.control_sent == 1
        assert channel.stats.delivered == 3

    def test_send_without_connect_fails(self):
        kernel = SimulationKernel()
        channel = Channel(
            channel_id=ChannelId("a", "b"),
            kernel=kernel,
            user_rng=random.Random(0),
            control_rng=random.Random(1),
            sequences=SequenceGenerator(),
        )
        with pytest.raises(RuntimeError):
            channel.send(MessageKind.USER, "x")

    def test_control_latency_stream_independent_of_user(self):
        """Injecting control traffic must not shift user arrival times —
        the determinism property experiment E2 stands on."""
        latency = UniformLatency(0.5, 5.0)

        def run(with_control):
            kernel, channel, received = self.make_channel(latency=latency, seed=9)
            channel.send(MessageKind.USER, "u1")
            if with_control:
                channel.send(MessageKind.SNAPSHOT_MARKER, "m")
            channel.send(MessageKind.USER, "u2")
            kernel.run()
            return [
                (env.payload, round(kernel.now, 6))
                for env in received if env.kind is MessageKind.USER
            ], [env.payload for env in received]

        plain, _ = run(False)
        with_marker, order = run(True)
        # Caveat: a marker *between* two user sends can delay the second
        # user message via FIFO (that is physical). Send order here places
        # the marker after u1; u2's own latency draw comes from the user
        # stream, so the draw sequence is unchanged.
        assert [p for p, _ in plain] == [p for p, _ in with_marker] == ["u1", "u2"]
