"""Unit tests for SCP computation (Fig. 4 oracle)."""

import pytest

from repro.breakpoints.predicates import ConjunctivePredicate, SimplePredicate
from repro.breakpoints.scp import SCPPair, compute_scp, compute_scp_k, matching_events
from repro.events.event import Event, EventKind
from repro.events.log import EventLog


def make_event(eid, process, vector, index, detail="sp"):
    return Event(
        eid=eid, process=process, kind=EventKind.STATE_CHANGE, time=float(eid),
        lamport=eid, vector=vector, vector_index=index, detail=detail,
        local_seq=eid,
    )


def figure4_log():
    """A two-process history shaped like the paper's Figure 4.

    P1 satisfies SP1 at t11, t12, t13; P2 satisfies SP2 at t21, t22, t23.
    A message m1 from P1 (after t11) to P2 (before t23) orders t11 -> t23.
    t12 and t22 are concurrent.
    """
    log = EventLog()
    log.append(make_event(1, "P1", (1, 0), 0, detail="sp1"))   # t11
    # P1 sends m1 (vector (2,0)) — not an SP event.
    log.append(make_event(3, "P2", (0, 1), 1, detail="sp2"))   # t21 (concurrent w/ t11)
    log.append(make_event(4, "P1", (3, 0), 0, detail="sp1"))   # t12
    log.append(make_event(5, "P2", (0, 2), 1, detail="sp2"))   # t22 (concurrent w/ t12)
    # P2 receives m1 -> vector (2,3).
    log.append(make_event(7, "P2", (2, 4), 1, detail="sp2"))   # t23 (after t11)
    log.append(make_event(8, "P1", (4, 0), 0, detail="sp1"))   # t13
    return log


SP1 = SimplePredicate(process="P1", kind=EventKind.STATE_CHANGE, detail="sp1")
SP2 = SimplePredicate(process="P2", kind=EventKind.STATE_CHANGE, detail="sp2")


class TestMatchingEvents:
    def test_finds_all_satisfactions(self):
        log = figure4_log()
        assert [e.eid for e in matching_events(log, SP1)] == [1, 4, 8]
        assert [e.eid for e in matching_events(log, SP2)] == [3, 5, 7]


class TestSCPPartition:
    def test_figure4_shape(self):
        log = figure4_log()
        result = compute_scp(log, SP1, SP2)
        assert result.total == 9
        ordered_pairs = {(p.first.eid, p.second.eid) for p in result.ordered}
        # t11 -> t23 is the paper's ordered example.
        assert (1, 7) in ordered_pairs
        unordered_pairs = {(p.first.eid, p.second.eid) for p in result.unordered}
        # t12 || t22 is the paper's unordered example.
        assert (4, 5) in unordered_pairs

    def test_directions(self):
        log = figure4_log()
        pair = SCPPair(first=log[0], second=log[4])  # t11, t23
        assert pair.ordered
        assert pair.direction == "1->2"
        reverse = SCPPair(first=log[4], second=log[0])
        assert reverse.direction == "2->1"
        concurrent = SCPPair(first=log[2], second=log[3])  # t12? actually t21,t12
        assert concurrent.direction == "concurrent"

    def test_summary_counts(self):
        result = compute_scp(figure4_log(), SP1, SP2)
        summary = result.summary()
        assert str(len(result.ordered)) in summary
        assert str(len(result.unordered)) in summary


class TestSCPk:
    def test_three_way(self):
        log = EventLog()
        log.append(make_event(1, "a", (1, 0, 0), 0, detail="x"))
        log.append(make_event(2, "b", (1, 1, 0), 1, detail="x"))
        log.append(make_event(3, "c", (1, 1, 1), 2, detail="x"))
        cp = ConjunctivePredicate(terms=(
            SimplePredicate(process="a", kind=EventKind.STATE_CHANGE, detail="x"),
            SimplePredicate(process="b", kind=EventKind.STATE_CHANGE, detail="x"),
            SimplePredicate(process="c", kind=EventKind.STATE_CHANGE, detail="x"),
        ))
        ordered, unordered = compute_scp_k(log, cp)
        assert len(ordered) == 1
        assert len(unordered) == 0

    def test_limit_guard(self):
        log = EventLog()
        for i in range(1, 201):
            process = "a" if i % 2 else "b"
            vector = (i, 0) if i % 2 else (0, i)
            log.append(make_event(i, process, vector, 0 if i % 2 else 1, detail="x"))
        cp = ConjunctivePredicate(terms=(
            SimplePredicate(process="a", kind=EventKind.STATE_CHANGE, detail="x"),
            SimplePredicate(process="b", kind=EventKind.STATE_CHANGE, detail="x"),
        ))
        with pytest.raises(ValueError, match="limit"):
            compute_scp_k(log, cp, limit=100)
