"""The deferred-breakpoint state machine (pending → bound → armed → fired).

These tests drive :class:`BreakpointRegistry` against a scripted fake
surface — no kernel, no sockets — so every transition in the lifecycle is
pinned independently of any backend: deferral before spawn, bind-on-spawn,
clear-while-pending, idempotent duplicates, fire matching, and re-arming
on a replacement surface (the recovery-incarnation path).
"""

import pytest

from repro.breakpoints import (
    BreakpointRecord,
    BreakpointRegistry,
    BreakpointState,
)
from repro.util.errors import PredicateError


class FakeSurface:
    """The minimal surface contract the registry relies on."""

    def __init__(self, names, start_lp=1):
        self.names = list(names)
        self._next_lp = start_lp
        self.set_calls = []
        self.cleared = []

    def process_names(self):
        return list(self.names)

    def set_breakpoint(self, lp, halt=True):
        lp_id = self._next_lp
        self._next_lp += 1
        self.set_calls.append((lp_id, str(lp), halt))
        return lp_id

    def clear_breakpoint(self, lp_id):
        self.cleared.append(lp_id)


class FakeHit:
    """Shape-compatible stand-in for a BreakpointHit."""

    def __init__(self, lp_id):
        self.marker = type("M", (), {"lp_id": lp_id})()


# -- registration -------------------------------------------------------------


def test_register_without_surface_parks_pending():
    registry = BreakpointRegistry()
    record = registry.register("enter(recv)@p1")
    assert record.state is BreakpointState.PENDING
    assert record.lp_id is None
    assert record.history == ["pending"]
    assert registry.pending() == [record]


def test_register_parses_eagerly():
    """A syntax error surfaces at registration time, not an hour later when
    the cluster finally spawns."""
    registry = BreakpointRegistry()
    with pytest.raises(PredicateError):
        registry.register("this is (not a predicate")
    assert registry.records() == []


def test_register_with_covering_surface_arms_immediately():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0", "p1"])
    record = registry.register("enter(recv)@p1", surface=surface)
    assert record.state is BreakpointState.ARMED
    assert record.history == ["pending", "bound", "armed"]
    assert record.lp_id == 1
    assert surface.set_calls and surface.set_calls[0][2] is True


def test_register_against_surface_missing_process_stays_pending():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])  # predicate names p9
    record = registry.register("enter(recv)@p9", surface=surface)
    assert record.state is BreakpointState.PENDING
    assert surface.set_calls == []


def test_duplicate_registration_is_idempotent():
    registry = BreakpointRegistry()
    first = registry.register("enter(recv)@p1")
    again = registry.register("enter(recv)@p1")
    assert again is first
    assert len(registry.records()) == 1
    # Different halt flag is a different breakpoint.
    other = registry.register("enter(recv)@p1", halt=False)
    assert other is not first
    assert len(registry.records()) == 2


def test_duplicate_after_clear_registers_fresh():
    registry = BreakpointRegistry()
    first = registry.register("enter(recv)@p1")
    registry.clear(first.bp_id)
    second = registry.register("enter(recv)@p1")
    assert second is not first
    assert second.state is BreakpointState.PENDING


# -- deferral: bind on spawn --------------------------------------------------


def test_bind_pending_arms_on_spawn():
    """The headline deferred case: set before the target exists, armed the
    moment the cluster spawns."""
    registry = BreakpointRegistry()
    record = registry.register("enter(recv)@p1 ^2")
    assert record.state is BreakpointState.PENDING

    surface = FakeSurface(["p0", "p1", "p2"])
    armed = registry.bind_pending(surface)
    assert armed == [record]
    assert record.state is BreakpointState.ARMED
    assert record.lp_id == 1


def test_bind_pending_skips_unknown_processes():
    registry = BreakpointRegistry()
    known = registry.register("enter(recv)@p0")
    unknown = registry.register("enter(recv)@p9")
    armed = registry.bind_pending(FakeSurface(["p0", "p1"]))
    assert armed == [known]
    assert unknown.state is BreakpointState.PENDING


def test_bind_pending_never_rebinds_armed_or_cleared():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])
    armed = registry.register("enter(recv)@p0", surface=surface)
    cleared = registry.register("state(x>1)@p0")
    registry.clear(cleared.bp_id)
    assert registry.bind_pending(surface) == []
    assert armed.lp_id == 1  # not re-armed with a new id


# -- clearing -----------------------------------------------------------------


def test_clear_while_pending_is_pure_bookkeeping():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])
    record = registry.register("enter(recv)@p9")  # pending: p9 unknown
    registry.clear(record.bp_id, surface=surface)
    assert record.state is BreakpointState.CLEARED
    assert surface.cleared == []  # nothing was armed, nothing disarmed
    # A later spawn must not resurrect it.
    assert registry.bind_pending(FakeSurface(["p9"])) == []


def test_clear_armed_disarms_on_surface():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])
    record = registry.register("enter(recv)@p0", surface=surface)
    registry.clear(record.bp_id, surface=surface)
    assert surface.cleared == [record.lp_id]
    assert record.state is BreakpointState.CLEARED


def test_clear_is_idempotent_and_unknown_id_raises():
    registry = BreakpointRegistry()
    record = registry.register("enter(recv)@p0")
    registry.clear(record.bp_id)
    again = registry.clear(record.bp_id)  # second clear: no error
    assert again.state is BreakpointState.CLEARED
    assert again.history.count("cleared") == 1
    with pytest.raises(PredicateError):
        registry.clear(999)


# -- firing -------------------------------------------------------------------


def test_mark_fired_matches_lp_id():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0", "p1"])
    a = registry.register("enter(recv)@p0", surface=surface)
    b = registry.register("enter(recv)@p1", surface=surface)
    fired = registry.mark_fired([FakeHit(a.lp_id)])
    assert fired == [a]
    assert a.state is BreakpointState.FIRED
    assert b.state is BreakpointState.ARMED
    # Fire is sticky and not repeated.
    assert registry.mark_fired([FakeHit(a.lp_id)]) == []


def test_fired_record_is_not_live_and_can_be_duplicated():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])
    record = registry.register("enter(recv)@p0", surface=surface)
    registry.mark_fired([FakeHit(record.lp_id)])
    assert not record.live
    # Registering the same text again creates a new live record — the old
    # completion does not swallow the new request.
    fresh = registry.register("enter(recv)@p0", surface=surface)
    assert fresh is not record


# -- rearm: surviving a recovery incarnation ----------------------------------


def test_rearm_reissues_armed_records_on_new_surface():
    registry = BreakpointRegistry()
    old = FakeSurface(["p0", "p1"])
    record = registry.register("enter(recv)@p1", surface=old)
    first_lp = record.lp_id

    replacement = FakeSurface(["p0", "p1"], start_lp=7)
    touched = registry.rearm(replacement)
    assert touched == [record]
    assert record.state is BreakpointState.ARMED
    assert record.lp_id == 7 and record.lp_id != first_lp
    assert replacement.set_calls[0][1] == record.text
    # Full history tells the story: armed twice across incarnations.
    assert record.history == [
        "pending", "bound", "armed", "pending", "bound", "armed",
    ]


def test_rearm_gives_pending_records_another_chance():
    registry = BreakpointRegistry()
    record = registry.register("enter(recv)@p3")
    registry.rearm(FakeSurface(["p0"]))
    assert record.state is BreakpointState.PENDING
    registry.rearm(FakeSurface(["p0", "p3"]))
    assert record.state is BreakpointState.ARMED


def test_rearm_leaves_fired_and_cleared_alone():
    registry = BreakpointRegistry()
    surface = FakeSurface(["p0", "p1"])
    fired = registry.register("enter(recv)@p0", surface=surface)
    cleared = registry.register("enter(recv)@p1", surface=surface)
    registry.mark_fired([FakeHit(fired.lp_id)])
    registry.clear(cleared.bp_id, surface=surface)

    replacement = FakeSurface(["p0", "p1"], start_lp=50)
    assert registry.rearm(replacement) == []
    assert fired.state is BreakpointState.FIRED
    assert cleared.state is BreakpointState.CLEARED
    assert replacement.set_calls == []


# -- wire views ---------------------------------------------------------------


def test_to_wire_is_json_safe_and_ordered():
    import json

    registry = BreakpointRegistry()
    surface = FakeSurface(["p0"])
    registry.register("enter(recv)@p0", surface=surface)
    registry.register("enter(recv)@p9")
    rows = registry.to_wire()
    assert [row["bp_id"] for row in rows] == [1, 2]
    assert rows[0]["state"] == "armed" and rows[1]["state"] == "pending"
    json.dumps(rows)  # must not raise
