"""Unit tests for the predicate DSL parser."""

import pytest

from repro.breakpoints.parser import parse_conjunctive, parse_predicate
from repro.breakpoints.predicates import SimplePredicate
from repro.events.event import EventKind
from repro.util.errors import PredicateSyntaxError


class TestSimpleForms:
    def test_enter_with_label(self):
        lp = parse_predicate("enter(handle_request)@p1")
        assert len(lp) == 1
        term = lp.first.terms[0]
        assert term.process == "p1"
        assert term.kind is EventKind.PROCEDURE_ENTRY
        assert term.detail == "handle_request"

    def test_bare_kind(self):
        term = parse_predicate("recv@p2").first.terms[0]
        assert term.kind is EventKind.RECEIVE
        assert term.detail is None

    def test_all_kind_names(self):
        kinds = {
            "enter": EventKind.PROCEDURE_ENTRY,
            "exit": EventKind.PROCEDURE_EXIT,
            "send": EventKind.SEND,
            "recv": EventKind.RECEIVE,
            "receive": EventKind.RECEIVE,
            "mark": EventKind.STATE_CHANGE,
            "timer": EventKind.TIMER,
            "created": EventKind.PROCESS_CREATED,
            "terminated": EventKind.PROCESS_TERMINATED,
            "chan_created": EventKind.CHANNEL_CREATED,
            "chan_destroyed": EventKind.CHANNEL_DESTROYED,
        }
        for name, kind in kinds.items():
            assert parse_predicate(f"{name}@p").first.terms[0].kind is kind
        assert parse_predicate("any@p").first.terms[0].kind is None

    def test_quoted_label(self):
        term = parse_predicate("mark('hello world')@p").first.terms[0]
        assert term.detail == "hello world"
        term = parse_predicate('send("x|y")@p').first.terms[0]
        assert term.detail == "x|y"

    def test_repetition(self):
        term = parse_predicate("recv@p ^4").first.terms[0]
        assert term.repeat == 4
        term = parse_predicate("recv@p^4").first.terms[0]
        assert term.repeat == 4


class TestStateQueries:
    def test_int_comparison(self):
        term = parse_predicate("state(balance<500)@b").first.terms[0]
        assert term.state.key == "balance"
        assert term.state.op == "<"
        assert term.state.value == 500

    def test_float_and_negative(self):
        assert parse_predicate("state(x>=1.5)@p").first.terms[0].state.value == 1.5
        assert parse_predicate("state(x==-3)@p").first.terms[0].state.value == -3

    def test_string_values(self):
        assert parse_predicate("state(phase=='done')@p").first.terms[0].state.value == "done"
        assert parse_predicate("state(phase==done)@p").first.terms[0].state.value == "done"

    def test_booleans(self):
        assert parse_predicate("state(in_cs==true)@p").first.terms[0].state.value is True
        assert parse_predicate("state(in_cs!=false)@p").first.terms[0].state.value is False

    def test_all_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            assert parse_predicate(f"state(k{op}1)@p").first.terms[0].state.op == op


class TestComposites:
    def test_disjunction(self):
        lp = parse_predicate("recv@a | send@b | timer@c")
        assert len(lp) == 1
        assert lp.first.processes() == {"a", "b", "c"}

    def test_linked(self):
        lp = parse_predicate("recv@a -> send@b -> timer@c")
        assert len(lp) == 3
        assert [s.terms[0].process for s in lp.stages] == ["a", "b", "c"]

    def test_mixed_with_groups(self):
        lp = parse_predicate("(recv@a | recv@b) -> send@c")
        assert len(lp) == 2
        assert lp.first.processes() == {"a", "b"}

    def test_group_flattens_into_disjunction(self):
        lp = parse_predicate("(recv@a | recv@b) | send@c")
        assert len(lp) == 1
        assert len(lp.first.terms) == 3

    def test_conjunction_entry_point(self):
        cp = parse_conjunctive("recv@a & send@b & timer@c")
        assert len(cp.terms) == 3

    def test_whitespace_insensitive(self):
        a = parse_predicate("recv@a->send@b")
        b = parse_predicate("  recv@a  ->  send@b  ")
        assert str(a) == str(b)


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "enter(f)@p1",
        "recv@p2^3",
        "send(wire)@a | recv(wire)@b",
        "enter(f)@a -> exit(f)@b -> timer(t)@c",
        "state(balance<500)@b0",
        "(recv@a | send@b) -> mark(done)@c^2",
    ])
    def test_parse_str_parse_fixpoint(self, text):
        lp = parse_predicate(text)
        again = parse_predicate(str(lp))
        assert again == lp


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "recv",                # missing @process
        "recv@",               # missing process name
        "@p",                  # missing kind
        "bogus@p",             # unknown kind
        "recv@p ->",           # dangling arrow
        "recv@p | ",           # dangling pipe
        "recv@p extra",        # trailing garbage
        "state(x)@p",          # state without comparison
        "state(<5)@p",         # state without key
        "recv@p ^x",           # non-integer repetition
        "recv@p ^1.5",         # fractional repetition
        "(recv@p",             # unclosed group
        "recv@p)",             # stray paren
        "enter()@p",           # empty label
        "recv@p $",            # bad character
    ])
    def test_rejects(self, bad):
        with pytest.raises(PredicateSyntaxError):
            parse_predicate(bad)

    def test_conjunctive_requires_ampersand(self):
        with pytest.raises(PredicateSyntaxError):
            parse_conjunctive("recv@a | send@b")

    def test_error_carries_position(self):
        try:
            parse_predicate("recv@p $")
        except PredicateSyntaxError as exc:
            assert exc.position == 7
            assert exc.text == "recv@p $"
        else:  # pragma: no cover
            pytest.fail("expected syntax error")
