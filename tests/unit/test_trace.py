"""Unit tests for trace serialization and replay comparison."""

import io

import pytest

from repro.experiments import build_system, run_halting
from repro.trace import (
    compare_logs,
    dump_log,
    dump_state,
    load_log,
    load_state,
    log_from_dict,
    log_to_dict,
    state_from_dict,
    state_to_dict,
)
from repro.trace.replay import assert_replay
from repro.util.errors import TraceError
from repro.workloads import bank, chatter


def small_run(seed=3):
    system = build_system(lambda: chatter.build(n=3, budget=8, seed=seed), seed)
    system.run_to_quiescence()
    return system


class TestLogSerialization:
    def test_roundtrip_preserves_everything(self):
        system = small_run()
        data = log_to_dict(system.log, meta={"seed": 3})
        reloaded = log_from_dict(data)
        assert len(reloaded) == len(system.log)
        for original, copy in zip(system.log, reloaded):
            assert original.eid == copy.eid
            assert original.process == copy.process
            assert original.kind == copy.kind
            assert original.vector == copy.vector
            assert original.channel == copy.channel
            assert original.local_seq == copy.local_seq

    def test_file_helpers(self):
        system = small_run()
        buffer = io.StringIO()
        dump_log(system.log, buffer)
        buffer.seek(0)
        reloaded = load_log(buffer)
        assert compare_logs(system.log, reloaded) is None

    def test_bad_format_version(self):
        with pytest.raises(TraceError):
            log_from_dict({"format": 99, "events": []})

    def test_malformed_event(self):
        with pytest.raises(TraceError):
            log_from_dict({"format": 1, "events": [{"eid": 1}]})

    def test_non_json_payload_stringified(self):
        data = log_to_dict(small_run().log)
        # Everything must be json-dumpable.
        import json

        json.dumps(data)


class TestStateSerialization:
    def test_roundtrip(self):
        _, _, state = run_halting(
            lambda: bank.build(n=3, transfers=15), 2, "branch0", 8
        )
        data = state_to_dict(state)
        reloaded = state_from_dict(data)
        assert set(reloaded.processes) == set(state.processes)
        for name in state.processes:
            assert reloaded.processes[name].state == state.processes[name].state
            assert reloaded.processes[name].vector == state.processes[name].vector
        assert set(reloaded.channels) == set(state.channels)
        for channel in state.channels:
            assert (
                reloaded.channels[channel].content_keys()
                == state.channels[channel].content_keys()
            )
        assert bank.total_money(reloaded) == bank.total_money(state)

    def test_file_helpers(self):
        _, _, state = run_halting(
            lambda: bank.build(n=3, transfers=15), 2, "branch0", 8
        )
        buffer = io.StringIO()
        dump_state(state, buffer)
        buffer.seek(0)
        reloaded = load_state(buffer)
        assert reloaded.origin == "halting"
        assert reloaded.generation == state.generation


class TestReplayComparison:
    def test_identical_runs_compare_equal(self):
        a, b = small_run(seed=7), small_run(seed=7)
        assert compare_logs(a.log, b.log) is None
        assert_replay(a.log, b.log)

    def test_different_seeds_diverge(self):
        a, b = small_run(seed=7), small_run(seed=8)
        divergence = compare_logs(a.log, b.log)
        assert divergence is not None
        assert divergence.index >= 0
        assert "diverge" in str(divergence) or "differ" in str(divergence)

    def test_truncated_log_reports_length(self):
        a = small_run(seed=7)
        b = small_run(seed=7)
        shorter = log_from_dict(
            {"format": 1, "meta": {},
             "events": [e for e in log_to_dict(b.log)["events"]][:-3]}
        )
        divergence = compare_logs(a.log, shorter)
        assert divergence is not None
        assert "lengths differ" in divergence.reason

    def test_assert_replay_raises_with_report(self):
        a, b = small_run(seed=7), small_run(seed=9)
        with pytest.raises(AssertionError, match="divergence at event"):
            assert_replay(a.log, b.log)
