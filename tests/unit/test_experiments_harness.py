"""Unit tests for the experiment harness itself (the twin-run machinery)."""

import pytest

from repro.experiments import (
    LocalTrigger,
    build_system,
    install_trigger,
    run_halting,
    run_snapshot,
)
from repro.workloads import bank, token_ring


class TestLocalTrigger:
    def test_fires_once_at_threshold(self):
        system = build_system(lambda: token_ring.build(n=3, max_hops=20), 1)
        fired = []
        trigger = install_trigger(system, "p1", 5, lambda: fired.append(system.kernel.now))
        system.run_to_quiescence()
        assert len(fired) == 1
        assert trigger.fired
        assert trigger.fired_at is not None
        assert fired[0] >= trigger.fired_at  # deferred to handler boundary

    def test_threshold_beyond_history_never_fires(self):
        system = build_system(lambda: token_ring.build(n=3, max_hops=3), 1)
        fired = []
        install_trigger(system, "p1", 10_000, lambda: fired.append(1))
        system.run_to_quiescence()
        assert fired == []

    def test_trigger_point_is_identical_across_twin_runs(self):
        def run_once():
            system = build_system(lambda: bank.build(n=3, transfers=10), 7)
            trigger = install_trigger(system, "branch1", 8, lambda: None)
            system.run_to_quiescence()
            return trigger.fired_at

        assert run_once() == run_once()


class TestTwinRuns:
    def test_halting_and_snapshot_runs_return_states(self):
        builder = lambda: bank.build(n=3, transfers=10)
        system_h, coordinator_h, s_h = run_halting(builder, 2, "branch0", 6)
        system_r, coordinator_r, s_r = run_snapshot(builder, 2, "branch0", 6)
        assert s_h.origin == "halting"
        assert s_r.origin == "snapshot"
        assert coordinator_h.all_halted()
        assert coordinator_r.is_complete()
        # The snapshot run kept running after recording; the halting run froze.
        assert system_r.log.for_process("branch0")[-1].local_seq \
            >= s_r.processes["branch0"].local_seq
        assert system_h.log.for_process("branch0")[-1].local_seq \
            == s_h.processes["branch0"].local_seq

    def test_extra_initiators_share_the_generation(self):
        builder = lambda: bank.build(n=3, transfers=10)
        _, coordinator, state = run_halting(
            builder, 3, "branch0", 6, extra_initiators=("branch2",)
        )
        ids = {agent.last_halt_id for agent in coordinator.agents.values()}
        assert ids == {1}
        assert state.generation == 1
