"""The worker-resident exploration engine against the one-shot path.

The engine's whole value proposition is "rewind instead of rebuild,
restore-and-diverge instead of replay-from-scratch" — which is only
admissible if every run it produces is byte-identical to the classic
build-run-judge pipeline. These tests drive the same schedules through
both and compare the canonical JSON reports, then pin the snapshot
machinery's observable contract: restores beat root replays when the
cache is warm, evictions force the replay fallback without changing any
result, and the worker shard's verdicts never leak into outcomes.
"""

import pytest

from repro.check.engine import STAT_KEYS, ExplorationEngine, blank_stats
from repro.check.runner import run_schedule, scenarios
from repro.check.scheduler import ScriptedStrategy


def canonical_prefixes(scenario, depth=3):
    """A small family of real decision prefixes: the canonical run's
    branch points, extended one sibling at a time."""
    base = run_schedule(scenario, ScriptedStrategy([]))
    prefixes = [()]
    decisions = list(base.record.decisions)
    for cut in range(1, min(depth, len(decisions)) + 1):
        prefixes.append(tuple(decisions[:cut]))
    for cp in base.record.choice_points[:depth]:
        for label in cp.enabled:
            if label != cp.chosen:
                point = len(
                    [c for c in base.record.choice_points
                     if c.trace_index < cp.trace_index]
                )
                prefixes.append(tuple(decisions[:point]) + (label,))
                break
    return prefixes


@pytest.mark.parametrize("name", ["token_ring", "pipeline",
                                  "token_ring_reliable"])
def test_resident_prefix_runs_match_oneshot_reports(name):
    scenario = scenarios()[name]
    engine = ExplorationEngine(scenario)
    assert engine._world is not None, "stock scenarios must be resident"
    for prefix in canonical_prefixes(scenario):
        resident = engine.run_prefix(prefix)
        oneshot = run_schedule(scenario, ScriptedStrategy(list(prefix)))
        assert (resident.result.report_json()
                == oneshot.report_json()), prefix
        assert (resident.result.inconclusive
                == oneshot.inconclusive), prefix


def test_snapshot_restore_and_replay_from_scratch_agree():
    """The same child prefix, run three ways — warm snapshot cache, cold
    cache (every snapshot evicted immediately), and classic one-shot —
    must produce identical records."""
    scenario = scenarios()["token_ring"]
    warm = ExplorationEngine(scenario)
    cold = ExplorationEngine(scenario, snapshot_cap=0)
    for prefix in canonical_prefixes(scenario):
        want = run_schedule(
            scenario, ScriptedStrategy(list(prefix))).report_json()
        assert warm.run_prefix(prefix).result.report_json() == want
        assert cold.run_prefix(prefix).result.report_json() == want
    warm_stats = warm.drain_stats()
    cold_stats = cold.drain_stats()
    # Warm cache: parents were snapshotted, children restored into them.
    assert warm_stats["snapshot_restores"] > 0
    # Cold cache: every capture was evicted, so every run replayed from
    # the root — same results, different accounting.
    assert cold_stats["snapshot_restores"] == 0
    assert cold_stats["snapshot_evictions"] == cold_stats[
        "snapshot_captures"]
    assert cold_stats["root_restores"] > warm_stats["root_restores"]
    assert cold_stats["replayed_decisions"] >= warm_stats[
        "replayed_decisions"]


def test_walks_scripts_and_biased_runs_match_oneshot():
    from repro.check.scheduler import BiasedWalkStrategy, RandomWalkStrategy
    import random

    scenario = scenarios()["token_ring"]
    engine = ExplorationEngine(scenario)
    base = run_schedule(scenario, ScriptedStrategy([]))
    decisions = list(base.record.decisions)

    for seed in ("0|walk|0", "0|walk|1"):
        want = run_schedule(
            scenario, RandomWalkStrategy(random.Random(seed)))
        assert engine.run_walk(seed).result.report_json() == \
            want.report_json()

    want = run_schedule(scenario, ScriptedStrategy(list(decisions)))
    assert engine.run_script(decisions).result.report_json() == \
        want.report_json()

    want = run_schedule(scenario, BiasedWalkStrategy(
        base=decisions, rng=random.Random("b|0"), follow=0.85))
    assert engine.run_biased(tuple(decisions), "b|0", 0.85).result \
        .report_json() == want.report_json()


def test_mutation_runs_find_the_same_violation():
    scenario = scenarios()["token_ring"]
    engine = ExplorationEngine(scenario, mutation="late-halt")
    from repro.check.mutations import MUTATIONS

    for prefix in canonical_prefixes(scenario, depth=2):
        resident = engine.run_prefix(prefix)
        oneshot = run_schedule(
            scenario, ScriptedStrategy(list(prefix)), MUTATIONS["late-halt"]
        )
        assert resident.result.report_json() == oneshot.report_json()
        assert ([v.invariant for v in resident.result.violations]
                == [v.invariant for v in oneshot.violations])


def test_shard_flags_repeat_states_without_changing_results():
    scenario = scenarios()["token_ring"]
    engine = ExplorationEngine(scenario, shard_dedup=True)
    first = engine.run_prefix(())
    again = engine.run_prefix(())
    assert first.fingerprint == again.fingerprint
    assert first.shard_fresh is True
    assert again.shard_fresh is False
    assert first.result.report_json() == again.result.report_json()

    unsharded = ExplorationEngine(scenario, shard_dedup=False)
    run = unsharded.run_prefix(())
    assert run.shard_fresh is None
    assert run.fingerprint == first.fingerprint


def test_drain_stats_resets_and_keeps_every_key():
    scenario = scenarios()["token_ring"]
    engine = ExplorationEngine(scenario)
    engine.run_prefix(())
    drained = engine.drain_stats()
    assert set(drained) == set(STAT_KEYS)
    # token_ring is a twin scenario: one root-world build plus the lazy
    # Theorem-2 twin build on the first halting run.
    assert drained["builds"] == 2
    assert drained["resident_runs"] == 1
    assert drained["twin_runs"] == 1
    assert engine.drain_stats() == blank_stats()


def test_twin_scenarios_keep_their_theorem2_verdict():
    scenario = scenarios()["token_ring"]
    assert scenario.twin, "fixture scenario must be a twin"
    engine = ExplorationEngine(scenario)
    resident = engine.run_prefix(())
    oneshot = run_schedule(scenario, ScriptedStrategy([]))
    assert resident.result.record.twin_divergences == \
        oneshot.record.twin_divergences
    assert resident.result.report_json() == oneshot.report_json()
