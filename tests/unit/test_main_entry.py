"""Unit tests for the ``python -m repro`` argument handling."""

import pytest

from repro.__main__ import parse_args, parse_value


class TestParseValue:
    def test_types(self):
        assert parse_value("3") == 3
        assert parse_value("2.5") == 2.5
        assert parse_value("true") is True
        assert parse_value("false") is False
        assert parse_value("part2") == "part2"


class TestParseArgs:
    def test_defaults(self):
        name, params, seed = parse_args([])
        assert name == "bank"
        assert params == {}
        assert seed == 0

    def test_workload_with_params(self):
        name, params, seed = parse_args(
            ["token_ring", "n=5", "max_hops=100", "seed=9"]
        )
        assert name == "token_ring"
        assert params == {"n": 5, "max_hops": 100}
        assert seed == 9

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_args(["nonesuch"])
        assert excinfo.value.code == 2

    def test_bad_param_exits(self):
        with pytest.raises(SystemExit):
            parse_args(["bank", "nonsense"])

    def test_list_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            parse_args(["--list"])
        assert excinfo.value.code == 0
        assert "token_ring" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "python -m repro" in capsys.readouterr().out


def test_scripted_end_to_end(monkeypatch, capsys):
    """Drive main() with a scripted stdin."""
    import repro.__main__ as entry

    lines = iter([
        "break state(transfers_made>=2)@branch0",
        "run",
        "inspect branch0",
        "quit",
    ])

    def fake_repl(self, input_fn=input, print_fn=print):
        for line in lines:
            output = self.execute(line)
            if output:
                print_fn(output)
            if self.finished:
                break

    monkeypatch.setattr(entry.DebuggerCLI, "repl", fake_repl)
    assert entry.main(["bank", "n=3", "transfers=10"]) == 0
    output = capsys.readouterr().out
    assert "breakpoint 1 armed" in output
    assert "stopped at" in output
    assert "branch0 (halted)" in output
