"""Unit tests for threaded-backend internals (timers, terminate, validation)."""

import pytest

from repro.network.topology import ring
from repro.runtime.process import Process
from repro.runtime.threaded import ThreadedSystem
from repro.util.errors import ConfigurationError


class TimerBox(Process):
    def on_start(self, ctx):
        ctx.state["fired"] = []
        ctx.set_timer("a", 1.0, payload="a1")
        ctx.set_timer("a", 0.5, payload="a2")   # re-arm replaces
        ctx.set_timer("b", 5.0, payload="b1")
        ctx.set_timer("kill_b", 1.5)

    def on_timer(self, ctx, name, payload):
        if name == "kill_b":
            ctx.cancel_timer("b")
            fired = list(ctx.state["fired"])
            fired.append("kill_b")
            ctx.state["fired"] = fired
            return
        fired = list(ctx.state["fired"])
        fired.append(payload)
        ctx.state["fired"] = fired


def test_threaded_timer_rearm_and_cancel():
    topo = ring(["a", "b"])
    system = ThreadedSystem(topo, {"a": TimerBox(), "b": Process()},
                            seed=1, time_scale=0.02)
    try:
        system.start()
        assert system.settle(timeout=20.0)
        fired = system.state_of("a")["fired"]
        assert fired == ["a2", "kill_b"]  # re-armed payload won; b cancelled
    finally:
        system.shutdown()


class Quitter(Process):
    def on_start(self, ctx):
        ctx.state["seen"] = 0
        ctx.set_timer("die", 0.5)

    def on_timer(self, ctx, name, payload):
        ctx.terminate()

    def on_message(self, ctx, src, payload):
        ctx.state["seen"] = ctx.state["seen"] + 1


class Pinger(Process):
    def on_start(self, ctx):
        ctx.set_timer("ping", 2.0)

    def on_timer(self, ctx, name, payload):
        ctx.send(ctx.neighbors_out()[0], "late")


def test_threaded_terminate_buffers_late_traffic():
    topo = ring(["a", "b"])  # a->b, b->a
    system = ThreadedSystem(topo, {"a": Pinger(), "b": Quitter()},
                            seed=2, time_scale=0.02)
    try:
        system.start()
        assert system.settle(timeout=20.0)
        assert system.state_of("b")["seen"] == 0  # terminated before the ping
        controller = system.controller("b")
        buffered = sum(len(v) for v in controller.halt_buffers.values())
        assert buffered == 1
    finally:
        system.shutdown()


def test_threaded_dynamic_channels_rejected():
    topo = ring(["a", "b"])
    system = ThreadedSystem(topo, {"a": Process(), "b": Process()},
                            seed=3, time_scale=0.02)
    controller = system.controller("b")
    with pytest.raises(ConfigurationError, match="DES-backend-only"):
        controller.user_create_channel("a")
    with pytest.raises(ConfigurationError, match="DES-backend-only"):
        controller.user_destroy_channel("a")


def test_threaded_missing_process_rejected():
    topo = ring(["a", "b"])
    with pytest.raises(ConfigurationError, match="no Process supplied"):
        ThreadedSystem(topo, {"a": Process()})


def test_threaded_message_totals():
    topo = ring(["a", "b"])
    system = ThreadedSystem(topo, {"a": Pinger(), "b": Process()},
                            seed=4, time_scale=0.02)
    try:
        system.start()
        assert system.settle(timeout=20.0)
        assert system.message_totals().get("user", 0) == 1
    finally:
        system.shutdown()
