"""Unit tests for the reliable-delivery layer over a faulty wire."""

import random

import pytest

from repro.faults.injection import injector_for
from repro.faults.plan import ChannelFaultSpec, FaultPlan
from repro.network.channel import Channel
from repro.network.latency import UniformLatency
from repro.network.message import MessageKind
from repro.network.reliable import ReliabilityConfig, ReliableChannel
from repro.simulation.kernel import SimulationKernel
from repro.util.errors import ConfigurationError
from repro.util.ids import ChannelId, SequenceGenerator


def make_channel(spec=None, seed=0, config=None, latency=None):
    kernel = SimulationKernel()
    cid = ChannelId("a", "b")
    plan = FaultPlan(seed=seed, channel_defaults=spec or ChannelFaultSpec())
    channel = ReliableChannel(
        channel_id=cid,
        kernel=kernel,
        user_rng=random.Random(f"{seed}u"),
        control_rng=random.Random(f"{seed}c"),
        sequences=SequenceGenerator(start=1),
        latency=latency or UniformLatency(0.4, 1.6),
        injector=injector_for(plan, cid),
        config=config,
        retry_rng=random.Random(f"{seed}r"),
    )
    received = []
    channel.connect(received.append)
    return kernel, channel, received


# -- config validation ----------------------------------------------------------


def test_reliability_config_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(base_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(max_timeout=1.0, base_timeout=2.0)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(jitter=2.0)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(max_retries=-1)


def test_backoff_schedule_is_capped_and_jittered():
    config = ReliabilityConfig(base_timeout=4.0, backoff=2.0,
                               max_timeout=64.0, jitter=0.25)
    rng = random.Random(0)
    for attempts in range(10):
        timeout = config.timeout_for(attempts, rng)
        bare = min(4.0 * 2.0 ** attempts, 64.0)
        assert bare <= timeout <= bare * 1.25


# -- exactly-once, in-order delivery -------------------------------------------


@pytest.mark.parametrize("spec", [
    ChannelFaultSpec(loss=0.5),
    ChannelFaultSpec(duplicate=0.4),
    ChannelFaultSpec(reorder=0.5),
    ChannelFaultSpec(loss=0.3, duplicate=0.2, reorder=0.3),
    ChannelFaultSpec(loss=0.3, ack_loss=0.5),
])
def test_exactly_once_in_order_under_faults(spec):
    kernel, channel, received = make_channel(spec=spec, seed=11)
    for index in range(30):
        channel.send(MessageKind.USER, index)
    kernel.run()
    assert [env.payload for env in received] == list(range(30))
    assert channel.stats.delivered == 30
    assert channel.stats.dropped == 0
    assert not channel.failed
    assert channel.unacked_count == 0
    assert channel.in_flight == []


def test_clean_wire_no_retransmits():
    kernel, channel, received = make_channel(seed=1)
    for index in range(10):
        channel.send(MessageKind.USER, index)
    kernel.run()
    assert len(received) == 10
    assert channel.stats.retransmits == 0
    assert channel.stats.frames_dropped == 0
    assert channel.stats.acks_sent == 10


def test_markers_stay_fifo_with_data():
    """Lemma 2.2 by construction: a marker sent after data is delivered
    after that data, whatever the wire does to individual frames."""
    spec = ChannelFaultSpec(loss=0.4, duplicate=0.3, reorder=0.5)
    kernel, channel, received = make_channel(spec=spec, seed=23)
    for index in range(10):
        channel.send(MessageKind.USER, index)
    channel.send(MessageKind.HALT_MARKER, "marker")
    kernel.run()
    kinds = [env.kind for env in received]
    assert kinds.index(MessageKind.HALT_MARKER) == 10  # strictly behind data


def test_wire_losses_are_recovered_and_counted():
    kernel, channel, received = make_channel(
        spec=ChannelFaultSpec(loss=0.5), seed=7)
    drops = []
    channel.on_drop = drops.append
    for index in range(20):
        channel.send(MessageKind.USER, index)
    kernel.run()
    assert len(received) == 20
    assert channel.stats.frames_dropped > 0
    assert len(drops) == channel.stats.frames_dropped
    assert channel.stats.retransmits > 0
    assert channel.stats.dropped == 0  # nothing permanently lost


def test_give_up_on_dead_receiver():
    kernel, channel, received = make_channel(seed=3)
    dead = {"dst": False}
    channel.endpoint_down = lambda side: dead.get(side, False)
    given_up = []
    channel.on_give_up = given_up.append
    dead["dst"] = True
    for index in range(5):
        channel.send(MessageKind.USER, index)
    kernel.run()
    assert received == []
    assert channel.failed
    assert channel.stats.gave_up == 5
    assert channel.stats.dropped == 5
    assert len(given_up) == 5
    assert channel.in_flight == []  # abandoned messages leave the channel


def test_dead_sender_stops_retransmitting():
    kernel, channel, received = make_channel(
        spec=ChannelFaultSpec(loss=1.0, ack_loss=0.0), seed=4)
    dead = {"src": False}
    channel.endpoint_down = lambda side: dead.get(side, False)
    channel.send(MessageKind.USER, "x")
    dead["src"] = True
    kernel.run()
    assert received == []
    assert channel.unacked_count == 0  # state released, no infinite retries
    assert not channel.failed  # a dead sender is not a failed channel


def test_stats_invariant_under_faults():
    spec = ChannelFaultSpec(loss=0.4, duplicate=0.3)
    kernel, channel, received = make_channel(spec=spec, seed=19)
    for index in range(25):
        channel.send(MessageKind.USER, index)
    kernel.run()
    stats = channel.stats
    assert stats.sent == stats.delivered + stats.dropped + len(channel.in_flight)
    assert stats.mean_latency > 0.0


def test_ack_only_losses_do_not_fail_the_channel():
    """If only acks are lost, every message is delivered; give-ups (ack
    never came back) must not mark the channel failed or count drops."""
    config = ReliabilityConfig(base_timeout=2.0, max_retries=2)
    kernel, channel, received = make_channel(
        spec=ChannelFaultSpec(ack_loss=1.0), seed=5, config=config)
    for index in range(5):
        channel.send(MessageKind.USER, index)
    kernel.run()
    assert [env.payload for env in received] == list(range(5))
    assert channel.stats.gave_up == 5  # retries exhausted on the ack path
    assert channel.stats.dropped == 0  # ...but nothing was actually lost
    assert not channel.failed
    assert channel.stats.duplicates_suppressed > 0


# -- raw-channel satellites -----------------------------------------------------


def test_raw_channel_rejects_invalid_loss_probability():
    def build(loss):
        return Channel(
            channel_id=ChannelId("a", "b"),
            kernel=SimulationKernel(),
            user_rng=random.Random(0),
            control_rng=random.Random(1),
            sequences=SequenceGenerator(start=1),
            loss_probability=loss,
        )

    for bad in (-0.1, 1.1, 2.0):
        with pytest.raises(ConfigurationError):
            build(bad)
    build(0.0)
    build(1.0)


def test_raw_channel_drop_hook_and_stats_consistent():
    kernel = SimulationKernel()
    channel = Channel(
        channel_id=ChannelId("a", "b"),
        kernel=kernel,
        user_rng=random.Random(0),
        control_rng=random.Random(1),
        sequences=SequenceGenerator(start=1),
        loss_probability=0.5,
        loss_rng=random.Random(2),
    )
    received, drops = [], []
    channel.connect(received.append)
    channel.on_drop = drops.append
    for index in range(40):
        channel.send(MessageKind.USER, index)
    kernel.run()
    stats = channel.stats
    assert stats.dropped > 0
    assert len(drops) == stats.dropped
    assert stats.frames_dropped == stats.dropped  # raw wire: loss is final
    assert stats.sent == stats.delivered + stats.dropped
