"""Direct unit tests for :mod:`repro.halting.restore`.

The integration suite exercises restore end-to-end through full halting
runs; here each contract of ``restore()`` is pinned in isolation with
hand-built global states — including the degraded path: restoring the
*survivors* of a crash from a partial cut assembled under a
:class:`~repro.debugger.failure.PartialHaltReport`.
"""

import pytest

from repro.core.api import build_workload
from repro.debugger.session import DebugSession
from repro.faults.plan import FaultPlan
from repro.halting.restore import restore
from repro.network.message import MessageKind
from repro.network.topology import Topology
from repro.runtime.payload import UserMessage
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import HaltingError
from repro.util.ids import ChannelId


class Sink(Process):
    """Counts deliveries; state is whatever the capture preloaded."""

    def on_message(self, ctx, src, payload):
        ctx.state["got"] = ctx.state.get("got", 0) + 1
        ctx.state["last"] = payload


def two_process_ring() -> Topology:
    topo = Topology()
    topo.add_process("p0").add_process("p1")
    topo.add_channel("p0", "p1")
    topo.add_channel("p1", "p0")
    return topo


def snap(process: str, state: dict, vector, index: int,
         seq: int = 5) -> ProcessStateSnapshot:
    return ProcessStateSnapshot(
        process=process, state=dict(state), local_seq=seq, lamport=seq,
        vector=tuple(vector), vector_index=index, time=1.0,
    )


def make_state(processes, channels=None, meta=None) -> GlobalState:
    return GlobalState(
        origin="halting",
        processes=processes,
        channels=channels or {},
        generation=1,
        meta=meta or {},
    )


# -- happy path ---------------------------------------------------------------


def test_restore_preloads_state_clocks_and_channel_contents():
    state = make_state(
        {
            "p0": snap("p0", {"x": 10}, (5, 3), 0),
            "p1": snap("p1", {"x": 20}, (2, 7), 1),
        },
        channels={
            ChannelId("p0", "p1"): ChannelState(
                channel=ChannelId("p0", "p1"),
                messages=(UserMessage(payload="hello", vector=(5, 3)),),
                complete=True,
            )
        },
    )
    system = restore(state, two_process_ring(),
                     {"p0": Sink(), "p1": Sink()}, seed=1)
    # Process state, counters, and clocks continue the captured history.
    assert system.state_of("p0") == {"x": 10}
    assert system.controller("p1").vector.snapshot() == (2, 7)
    assert system.controller("p0")._local_seq == 5
    # The undelivered message is already in the channel, ahead of anything
    # the restored processes might send.
    channel = system.channel(ChannelId("p0", "p1"))
    assert channel.stats.sent == 1
    system.run_to_quiescence()
    assert system.state_of("p1")["got"] == 1
    assert system.state_of("p1")["last"] == "hello"


def test_restore_projects_wider_debugger_frame_onto_user_frame():
    """Captures taken with ``d`` attached carry 3-wide vectors; restoring
    onto the bare user topology must re-index by name via the recorded
    ``clock_frame`` and drop d's component."""
    # Frame at capture time: (d, p0, p1). d's component is history.
    state = make_state(
        {
            "p0": snap("p0", {}, (9, 4, 2), 1),
            "p1": snap("p1", {}, (9, 3, 6), 2),
        },
        channels={
            ChannelId("p1", "p0"): ChannelState(
                channel=ChannelId("p1", "p0"),
                messages=(UserMessage(payload=1, vector=(8, 3, 5)),),
                complete=True,
            )
        },
        meta={"clock_frame": ["d", "p0", "p1"]},
    )
    system = restore(state, two_process_ring(),
                     {"p0": Sink(), "p1": Sink()}, seed=0)
    assert system.clock_frame.order == ("p0", "p1")
    assert system.controller("p0").vector.snapshot() == (4, 2)
    assert system.controller("p1").vector.snapshot() == (3, 6)


def test_restore_with_matching_frame_needs_no_metadata():
    state = make_state({"p0": snap("p0", {}, (1, 2), 0),
                        "p1": snap("p1", {}, (0, 3), 1)})
    system = restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})
    assert system.controller("p0").vector.snapshot() == (1, 2)


# -- error paths --------------------------------------------------------------


def test_restore_rejects_processes_outside_the_topology():
    state = make_state({"ghost": snap("ghost", {}, (1,), 0)})
    with pytest.raises(HaltingError, match="not in the topology"):
        restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})


def test_restore_rejects_indeterminable_channels():
    state = make_state(
        {"p0": snap("p0", {}, (1, 1), 0), "p1": snap("p1", {}, (1, 1), 1)},
        channels={
            ChannelId("p0", "p1"): ChannelState(
                channel=ChannelId("p0", "p1"),
                messages=(UserMessage(payload=1),),
                complete=False,  # no closing marker seen: contents unknowable
            )
        },
    )
    with pytest.raises(HaltingError, match="indeterminable"):
        restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})


def test_restore_rejects_unknown_channels():
    state = make_state(
        {"p0": snap("p0", {}, (1, 1), 0), "p1": snap("p1", {}, (1, 1), 1)},
        channels={
            ChannelId("p1", "p9"): ChannelState(
                channel=ChannelId("p1", "p9"),
                messages=(UserMessage(payload=1),),
                complete=True,
            )
        },
    )
    with pytest.raises(HaltingError, match="unknown channel"):
        restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})


def test_restore_rejects_frame_mismatch_without_metadata():
    state = make_state({"p0": snap("p0", {}, (1, 2, 3), 1),
                        "p1": snap("p1", {}, (1, 2, 3), 2)})
    with pytest.raises(HaltingError, match="no clock_frame"):
        restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})


def test_restore_rejects_frames_lacking_needed_processes():
    state = make_state(
        {"p0": snap("p0", {}, (1, 2, 3), 1),
         "p1": snap("p1", {}, (1, 2, 3), 2)},
        meta={"clock_frame": ["d", "p0", "q7"]},  # no p1 component
    )
    with pytest.raises(HaltingError, match="lacks processes"):
        restore(state, two_process_ring(), {"p0": Sink(), "p1": Sink()})


# -- the degraded path: restore the survivors of a PartialHaltReport ----------


def test_restore_survivors_from_partial_halt_report():
    """Crash one process mid-run, take the watchdog-bounded partial halt,
    and resurrect the surviving cut on a reduced topology. The dead
    process's clock component is projected away; surviving channel
    contents are re-injected."""
    topology, processes = build_workload("token_ring", n=4,
                                         max_hops=400, hold_time=0.5)
    plan = FaultPlan(seed=7).with_crash("p1", at_time=10.0)
    session = DebugSession(topology, processes, seed=7,
                           fault_plan=plan, reliable=True)
    session.system.run(until=25.0)
    report = session.halt_with_watchdog(timeout=150.0, probe_grace=40.0)
    assert report.is_partial and report.dead == ("p1",)

    partial = session.global_state(allow_partial=True)
    assert set(partial.processes) == set(report.halted)
    # Every surviving channel is marker-delimited, so the partial cut is
    # restorable — that is the whole point of degrading gracefully.
    assert all(cs.complete for cs in partial.channels.values()
               if cs.messages)

    survivors = Topology()
    for name in report.halted:
        survivors.add_process(name)
    for channel in topology.channels:
        if channel.src in report.halted and channel.dst in report.halted:
            survivors.add_channel(channel.src, channel.dst)
    _, fresh = build_workload("token_ring", n=4, max_hops=400, hold_time=0.5)
    system = restore(
        partial,
        survivors,
        {name: fresh[name] for name in report.halted},
        seed=11,
    )
    assert system.clock_frame.order == tuple(sorted(report.halted))
    for name in report.halted:
        captured = partial.processes[name]
        assert system.state_of(name) == captured.state
        # Projection dropped the dead process's (and d's) components but
        # kept each survivor's own count.
        own = system.controller(name).vector.snapshot()
        assert own[system.clock_frame.index_of(name)] == \
            captured.vector[captured.vector_index]
    # The reduced system is runnable (the ring is broken, so nothing may
    # move — the claim is merely that restore produced a live system).
    system.run(until=5.0)


def test_restore_survivors_refuses_states_that_name_the_dead():
    """Keeping the dead process's snapshot while shrinking the topology is
    an error, not a silent drop — the caller must decide who survives."""
    topology, processes = build_workload("token_ring", n=3,
                                         max_hops=400, hold_time=0.5)
    plan = FaultPlan(seed=5).with_crash("p2", after_events=10)
    session = DebugSession(topology, processes, seed=5,
                           fault_plan=plan, reliable=True)
    session.system.run(until=60.0)
    report = session.halt_with_watchdog()
    assert report.dead == ("p2",)
    partial = session.global_state(allow_partial=True)

    survivors = Topology()
    for name in report.halted:
        survivors.add_process(name)
    forged = GlobalState(
        origin=partial.origin,
        processes={**dict(partial.processes),
                   "p2": snap("p2", {}, (0, 0, 0, 0), 3)},
        channels={},
        generation=partial.generation,
        meta=dict(partial.meta),
    )
    _, fresh = build_workload("token_ring", n=3, max_hops=400, hold_time=0.5)
    with pytest.raises(HaltingError, match="not in the topology"):
        restore(forged, survivors,
                {name: fresh[name] for name in report.halted})
