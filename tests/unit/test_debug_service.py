"""The debugger service, in process: dispatch, sessions, reaping, guards.

Everything here runs :meth:`DebuggerService.handle` directly — no sockets
— over a held DES target, so the protocol's semantics (never-raise error
replies, server-dictated attach, deferred break binding on spawn, the
double-resume guard, disconnect/idle reaping) are pinned independently of
the TCP server.
"""

import pytest

from repro.debugger import DebugSession, DebuggerService, DESSurface, HeldTarget, LiveTarget
from repro.debugger.service import COMMANDS, PROTOCOL_VERSION
from repro.network.latency import UniformLatency
from repro.workloads import token_ring


def make_surface():
    topo, processes = token_ring.build(n=3, max_hops=60)
    session = DebugSession(topo, processes, seed=2,
                          latency=UniformLatency(0.4, 1.6))
    return DESSurface(session)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture
def held():
    return DebuggerService(HeldTarget(make_surface), idle_timeout=60.0)


@pytest.fixture
def live():
    return DebuggerService(LiveTarget(make_surface()), idle_timeout=60.0)


def attach(service, label=""):
    reply = service.handle({"op": "attach", "label": label})
    assert reply["ok"]
    return reply["session"]


# -- attach dictates client behavior ------------------------------------------


def test_attach_reply_is_the_whole_contract(live):
    reply = live.handle({"op": "attach", "label": "t"})
    assert reply["ok"]
    assert reply["protocol"] == PROTOCOL_VERSION
    assert reply["server"]["backend"] == "des"
    assert reply["server"]["spawned"] is True
    assert reply["server"]["idle_timeout"] == 60.0
    assert reply["server"]["processes"] == ["p0", "p1", "p2"]
    assert reply["commands"] == sorted(COMMANDS)


def test_attach_to_held_target_reports_unspawned(held):
    reply = held.handle({"op": "attach"})
    assert reply["server"]["backend"] == "held"
    assert reply["server"]["spawned"] is False
    assert reply["server"]["processes"] == []


# -- handle never raises ------------------------------------------------------


@pytest.mark.parametrize("frame", [
    None,
    42,
    "status",
    ["op", "status"],
    {},
    {"op": None},
    {"op": 7},
    {"op": "no-such-op", "session": "s1"},
    {"op": "status"},                      # no session
    {"op": "status", "session": ""},
    {"op": "status", "session": "s999"},   # stale session
    {"op": "resume", "session": "s999"},
])
def test_bad_frames_get_one_line_errors(live, frame):
    reply = live.handle(frame)
    assert reply["ok"] is False
    assert "\n" not in reply["error"]
    assert reply["error"]


def test_command_bodies_never_leak_exceptions(live):
    sid = attach(live)
    for frame in (
        {"op": "inspect", "session": sid},                      # no process
        {"op": "inspect", "session": sid, "process": "p9"},     # unknown
        {"op": "step", "session": sid},                          # no process
        {"op": "break-set", "session": sid},                     # no predicate
        {"op": "break-set", "session": sid, "predicate": "(((("},
        {"op": "break-clear", "session": sid},                   # no bp_id
        {"op": "break-clear", "session": sid, "bp_id": 99},
        {"op": "resume", "session": sid},                        # none halted
        {"op": "kill", "session": sid, "process": "p0"},         # DES has no kill
        {"op": "state", "session": sid},                         # nothing halted
    ):
        reply = live.handle(frame)
        assert reply["ok"] is False, frame
        assert "\n" not in reply["error"]


def test_commands_against_unspawned_target_say_spawn_first(held):
    sid = attach(held)
    reply = held.handle({"op": "wait-halt", "session": sid})
    assert not reply["ok"] and "spawn" in reply["error"]


# -- deferred breakpoints through the service ---------------------------------


def test_break_set_before_spawn_defers_then_spawn_arms(held):
    sid = attach(held)
    reply = held.handle({"op": "break-set", "session": sid,
                         "predicate": "enter(receive_token)@p1 ^2"})
    assert reply["ok"] and reply["state"] == "pending"
    bp_id = reply["bp_id"]

    spawned = held.handle({"op": "spawn", "session": sid})
    assert spawned["ok"]
    assert [r["bp_id"] for r in spawned["armed"]] == [bp_id]
    assert spawned["armed"][0]["state"] == "armed"

    listing = held.handle({"op": "break-list", "session": sid})
    assert listing["breakpoints"][0]["history"] == [
        "pending", "bound", "armed",
    ]


def test_spawn_is_idempotent(held):
    sid = attach(held)
    first = held.handle({"op": "spawn", "session": sid})
    second = held.handle({"op": "spawn", "session": sid})
    assert first["already"] is False
    assert second["already"] is True


def test_break_set_duplicate_returns_same_record(live):
    sid = attach(live)
    a = live.handle({"op": "break-set", "session": sid,
                     "predicate": "enter(receive_token)@p1"})
    b = live.handle({"op": "break-set", "session": sid,
                     "predicate": "enter(receive_token)@p1"})
    assert a["bp_id"] == b["bp_id"]


def test_break_clear_while_pending(held):
    sid = attach(held)
    reply = held.handle({"op": "break-set", "session": sid,
                         "predicate": "enter(receive_token)@p1"})
    cleared = held.handle({"op": "break-clear", "session": sid,
                           "bp_id": reply["bp_id"]})
    assert cleared["ok"] and cleared["state"] == "cleared"
    # Spawn must not arm the cleared record.
    spawned = held.handle({"op": "spawn", "session": sid})
    assert spawned["armed"] == []


# -- halt / resume generation guards ------------------------------------------


def halted_service():
    service = DebuggerService(LiveTarget(make_surface()))
    sid = attach(service)
    service.handle({"op": "break-set", "session": sid,
                    "predicate": "enter(receive_token)@p1 ^2"})
    reply = service.handle({"op": "wait-halt", "session": sid, "timeout": 5})
    assert reply["stopped"] and reply["generation"] == 1
    assert reply["fired"], "the armed breakpoint must be marked fired"
    return service, sid


def test_each_generation_resumes_exactly_once():
    service, sid_a = halted_service()
    sid_b = attach(service)

    resumed = service.handle({"op": "resume", "session": sid_b})
    assert resumed["ok"] and resumed["resumed"] and resumed["by"] == sid_b

    again = service.handle({"op": "resume", "session": sid_a})
    assert not again["ok"]
    assert "already resumed" in again["error"] and sid_b in again["error"]


def test_resume_rejects_stale_generation():
    service, sid = halted_service()
    reply = service.handle({"op": "resume", "session": sid, "generation": 99})
    assert not reply["ok"] and "stale generation" in reply["error"]


def test_resume_is_observed_across_sessions():
    service, sid_a = halted_service()
    sid_b = attach(service)
    service.handle({"op": "resume", "session": sid_b})
    status = service.handle({"op": "status", "session": sid_a})
    assert status["halted"] == []


def test_step_over_the_service():
    service, sid = halted_service()
    reply = service.handle({"op": "step", "session": sid, "process": "p1"})
    assert reply["ok"]
    assert reply["process"] == "p1"
    assert isinstance(reply["delivered"], bool)
    assert isinstance(reply["remaining"], int)
    status = service.handle({"op": "status", "session": sid})
    assert "p1" in status["halted"], "stepping never un-halts"


# -- session reaping (the stale-session fix) ----------------------------------


def test_drop_connection_reaps_only_that_connections_sessions(live):
    a = live.handle({"op": "attach"}, conn_id=1)["session"]
    b = live.handle({"op": "attach"}, conn_id=1)["session"]
    c = live.handle({"op": "attach"}, conn_id=2)["session"]

    reaped = live.drop_connection(1)
    assert sorted(reaped) == sorted([a, b])
    assert live.reaped["disconnect"] == 2
    assert live.session_count() == 1

    # The survivor keeps working; the reaped ones are stale.
    assert live.handle({"op": "ping", "session": c})["ok"]
    assert not live.handle({"op": "ping", "session": a})["ok"]


def test_idle_sessions_reaped_by_ttl_backstop():
    clock = FakeClock()
    service = DebuggerService(LiveTarget(make_surface()),
                              idle_timeout=30.0, clock=clock)
    stale = attach(service, label="stale")
    clock.now += 10
    fresh = attach(service, label="fresh")
    clock.now += 25  # stale is 35s idle, fresh 25s

    # Any command triggers the sweep.
    reply = service.handle({"op": "sessions", "session": fresh})
    assert service.reaped["idle"] == 1
    assert [row["session"] for row in reply["sessions"]] == [fresh]
    assert not service.handle({"op": "ping", "session": stale})["ok"]


def test_ping_refreshes_the_idle_clock():
    clock = FakeClock()
    service = DebuggerService(LiveTarget(make_surface()),
                              idle_timeout=30.0, clock=clock)
    sid = attach(service)
    for _ in range(4):
        clock.now += 20
        assert service.handle({"op": "ping", "session": sid})["ok"]
    assert service.session_count() == 1
    assert service.reaped["idle"] == 0


def test_detach_never_touches_other_sessions(live):
    a = attach(live)
    b = attach(live)
    reply = live.handle({"op": "detach", "session": a})
    assert reply["ok"] and reply["detached"] == a
    assert live.handle({"op": "ping", "session": b})["ok"]
    assert not live.handle({"op": "ping", "session": a})["ok"]


# -- misc ---------------------------------------------------------------------


def test_sessions_lists_command_counts(live):
    sid = attach(live, label="ci")
    live.handle({"op": "ping", "session": sid})
    live.handle({"op": "status", "session": sid})
    # attach/sessions/help are table-level ops and do not count against a
    # session; the ping and the status do.
    rows = live.handle({"op": "sessions", "session": sid})["sessions"]
    assert len(rows) == 1
    assert rows[0]["label"] == "ci"
    assert rows[0]["commands"] == 2


def test_help_lists_every_command(live):
    reply = live.handle({"op": "help"})
    assert reply["ok"] and set(reply["commands"]) == set(COMMANDS)


def test_shutdown_sets_the_event(live):
    sid = attach(live)
    reply = live.handle({"op": "shutdown", "session": sid})
    assert reply["ok"] and reply["stopping"]
    assert live.shutdown_requested.is_set()
