"""Unit tests for the scheduling-gate abstraction.

The gate is the checker's one decision surface over all three backends,
so these tests pin the math everything else leans on: ``group_heads``
head selection, the ``drive`` loop's recording bookkeeping (it must stay
byte-identical to the pre-gate controlled scheduler), the KernelGate's
equivalence with that scheduler on a real kernel, and the
ThreadedStepGate's staging semantics (FIFO clamps, timer replacement,
crash teardown) checked in isolation with stub controllers.
"""

import itertools

import pytest

from repro.check.gate import (
    DriveResult,
    FrameGate,
    KernelGate,
    SchedulingGate,
    ThreadedStepGate,
    drive,
)
from repro.check.scheduler import (
    ControlledScheduler,
    ScriptedStrategy,
    group_heads,
)
from repro.network.message import MessageKind
from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_INTERNAL,
    PRIORITY_TIMER,
    ScheduledEvent,
    SimulationKernel,
)
from repro.util.errors import SimulationError
from repro.util.ids import ChannelId


def _event(seq, time, priority, tiebreak):
    return ScheduledEvent(sequence=seq, time=time, priority=priority,
                          tiebreak=tiebreak)


# -- group_heads ---------------------------------------------------------------


def test_group_heads_picks_the_earliest_entry_per_label():
    events = [
        _event(1, 2.0, PRIORITY_DELIVERY, ("p0->p1", 1)),
        _event(2, 1.0, PRIORITY_DELIVERY, ("p0->p1", 0)),  # earlier: head
        _event(3, 1.0, PRIORITY_TIMER, ("p2", "hold", 0)),
    ]
    heads = group_heads(events)
    assert set(heads) == {"chan:p0->p1", "timer:p2"}
    assert heads["chan:p0->p1"].sequence == 2


def test_group_heads_breaks_time_ties_by_tiebreak_then_sequence():
    a = _event(5, 1.0, PRIORITY_DELIVERY, ("p0->p1", 3))
    b = _event(4, 1.0, PRIORITY_DELIVERY, ("p0->p1", 3))
    assert group_heads([a, b])["chan:p0->p1"].sequence == 4


def test_group_heads_reuses_the_label_cache():
    cache = {}
    events = [_event(1, 0.0, PRIORITY_INTERNAL, ("trigger", "p1"))]
    group_heads(events, cache)
    assert cache == {1: "internal:trigger:p1"}
    # A poisoned cache entry proves the memo is consulted, not recomputed.
    cache[1] = "poisoned"
    assert "poisoned" in group_heads(events, cache)


# -- drive ---------------------------------------------------------------------


class _ScriptGate(SchedulingGate):
    """A gate whose enabled sets are a canned script (no substrate)."""

    def __init__(self, script):
        self.script = list(script)
        self.committed = []

    def enabled(self):
        return list(self.script[0]) if self.script else []

    def commit(self, label):
        step = self.script.pop(0)
        assert label in step
        self.committed.append(label)

    @property
    def now(self):
        return float(len(self.committed))


def test_drive_records_choice_points_only_at_real_choices():
    gate = _ScriptGate([["a"], ["b", "c"], ["d"]])
    result = drive(gate, ScriptedStrategy(["c"]))
    assert result.trace == ["a", "c", "d"]
    assert result.decisions == ["c"]
    assert len(result.choice_points) == 1
    assert result.choice_points[0].trace_index == 1
    assert result.choice_points[0].enabled == ("b", "c")
    assert result.quiesced and result.steps == 3


def test_drive_falls_back_to_first_label_on_a_bogus_strategy():
    class Bogus:
        def on_step(self, labels):
            return "nonsense"

    gate = _ScriptGate([["x", "y"]])
    result = drive(gate, Bogus())
    assert result.trace == ["x"]
    assert result.decisions == ["x"]


def test_drive_budget_exhaustion_is_not_quiescence():
    gate = _ScriptGate([["a"]] * 10)
    result = drive(gate, max_steps=4)
    assert result.steps == 4
    assert not result.quiesced
    # ... unless the gate happens to drain exactly at the budget.
    gate = _ScriptGate([["a"]] * 4)
    assert drive(gate, max_steps=4).quiesced


# -- KernelGate ----------------------------------------------------------------


def _loaded_kernel(fired):
    kernel = SimulationKernel()
    kernel.schedule(1.0, lambda: fired.append("m0"),
                    priority=PRIORITY_DELIVERY, tiebreak=("p0->p1", 0))
    kernel.schedule(1.0, lambda: fired.append("m1"),
                    priority=PRIORITY_DELIVERY, tiebreak=("p0->p1", 1))
    kernel.schedule(1.0, lambda: fired.append("t"),
                    priority=PRIORITY_TIMER, tiebreak=("p9", "x", 0))
    return kernel


def test_kernel_gate_matches_the_controlled_scheduler_byte_for_byte():
    fired_a, fired_b = [], []
    kernel_a = _loaded_kernel(fired_a)
    scheduler = ControlledScheduler(ScriptedStrategy(["timer:p9"]))
    scheduler.install(kernel_a)
    kernel_a.run()

    kernel_b = _loaded_kernel(fired_b)
    gate = KernelGate(kernel_b)
    result = drive(gate, ScriptedStrategy(["timer:p9"]))
    gate.close()

    assert fired_a == fired_b == ["t", "m0", "m1"]
    assert result.trace == scheduler.trace
    assert result.decisions == scheduler.decisions
    assert [(cp.trace_index, cp.enabled, cp.chosen)
            for cp in result.choice_points] == \
        [(cp.trace_index, cp.enabled, cp.chosen)
         for cp in scheduler.choice_points]
    assert result.steps == kernel_b.events_executed


def test_kernel_gate_rejects_a_label_that_is_not_enabled():
    kernel = _loaded_kernel([])
    gate = KernelGate(kernel)
    assert gate.enabled() == ["chan:p0->p1", "timer:p9"]
    with pytest.raises(SimulationError):
        gate.commit("timer:nobody")
    gate.close()


def test_kernel_gate_close_restores_default_ordering():
    fired = []
    kernel = _loaded_kernel(fired)
    gate = KernelGate(kernel)
    gate.close()
    kernel.run()  # would raise inside the gate's _pick if still installed
    assert fired == ["m0", "m1", "t"]


# -- ThreadedStepGate (staging math, stubbed substrate) ------------------------


class _StubSystem:
    """Just enough system surface for GatedChannel.send and binding."""

    def __init__(self, gate):
        self.gate = gate
        self._seq = itertools.count(1)

    @property
    def now(self):
        return self.gate.now

    def next_message_seq(self):
        return next(self._seq)


class _StubController:
    def __init__(self, name):
        self.name = name


def _gated_pair():
    gate = ThreadedStepGate(latency=1.0)
    system = _StubSystem(gate)
    gate.bind(system)
    return gate, system


def test_gate_binds_exactly_once():
    gate, system = _gated_pair()
    with pytest.raises(SimulationError):
        gate.bind(system)


def test_staged_deliveries_group_per_channel_fifo():
    gate, system = _gated_pair()
    ab = gate.make_channel(ChannelId.parse("p0->p1"), system)
    cd = gate.make_channel(ChannelId.parse("p2->p3"), system)
    ab.send(MessageKind.USER, "first")
    ab.send(MessageKind.USER, "second")
    cd.send(MessageKind.USER, "other")
    # Two messages on one channel are ONE group (its FIFO head), so the
    # enabled set has exactly one label per channel.
    assert gate.enabled() == ["chan:p0->p1", "chan:p2->p3"]
    assert [env.payload for env in ab.in_flight] == ["first", "second"]
    assert ab.stats.sent == 2 and ab.stats.delivered == 0


def test_staged_arrivals_respect_the_des_fifo_clamp():
    gate, system = _gated_pair()
    channel = gate.make_channel(ChannelId.parse("p0->p1"), system)
    channel.send(MessageKind.USER, "a")
    channel.send(MessageKind.USER, "b")
    times = sorted(t for t, _, _ in gate.pending_metadata())
    assert times[0] == pytest.approx(1.0)       # now + latency
    assert times[1] > times[0]                  # clamp: strictly later


def test_timer_restage_replaces_and_cancel_reports_presence():
    gate, _ = _gated_pair()
    proc = _StubController("p1")
    gate.stage_timer(proc, "hold", 5.0, None, generation=1, timer_seq=1)
    gate.stage_timer(proc, "hold", 2.0, None, generation=1, timer_seq=2)
    assert len(gate.pending_metadata()) == 1    # second set replaced the first
    assert gate.enabled() == ["timer:p1"]
    assert gate.cancel_timer("p1", "hold") is True
    assert gate.cancel_timer("p1", "hold") is False
    assert gate.enabled() == []


def test_crash_teardown_drops_every_timer_of_that_process_only():
    gate, _ = _gated_pair()
    p1, p2 = _StubController("p1"), _StubController("p2")
    gate.stage_timer(p1, "hold", 1.0, None, generation=1, timer_seq=1)
    gate.stage_timer(p1, "lease", 2.0, None, generation=1, timer_seq=2)
    gate.stage_timer(p2, "hold", 1.0, None, generation=1, timer_seq=1)
    gate.cancel_process_timers("p1")
    assert gate.enabled() == ["timer:p2"]


def test_gate_commit_rejects_labels_that_are_not_enabled():
    gate, _ = _gated_pair()
    gate.stage_internal("trigger", _StubController("p1"), lambda: None)
    assert gate.enabled() == ["internal:trigger:p1"]
    with pytest.raises(SimulationError):
        gate.commit("chan:p0->p1")


def test_gate_close_drops_all_staged_work():
    gate, system = _gated_pair()
    channel = gate.make_channel(ChannelId.parse("p0->p1"), system)
    channel.send(MessageKind.USER, "x")
    gate.stage_timer(_StubController("p1"), "hold", 1.0, None, 1, 1)
    gate.close()
    assert gate.enabled() == []
    assert gate.quiescent()


# -- FrameGate (stubbed stager) ------------------------------------------------


class _StubStager:
    def __init__(self, held):
        self.held = list(held)
        self.released = []
        self.flushed = False

    def wait_quiet(self, settle):
        pass

    def held_channels(self):
        return list(self.held)

    def release(self, channel):
        self.released.append(channel)
        self.held.remove(channel)

    def release_all(self):
        self.flushed = True


def test_frame_gate_wraps_held_buffers_as_channel_labels():
    stager = _StubStager(["p1->p2", "p0->p1"])
    gate = FrameGate(stager, settle=0.0)
    assert gate.enabled() == ["chan:p0->p1", "chan:p1->p2"]
    gate.commit("chan:p1->p2")
    assert stager.released == ["p1->p2"]
    assert gate.now == 1.0
    with pytest.raises(SimulationError):
        gate.commit("timer:p1")  # the frame gate only orders deliveries
    gate.close()
    assert stager.flushed


# -- DriveResult shape ---------------------------------------------------------


def test_drive_result_defaults_are_empty():
    result = DriveResult()
    assert result.trace == [] and result.decisions == []
    assert result.steps == 0 and not result.quiesced
