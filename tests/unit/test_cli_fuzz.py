"""Robustness: the CLI must never raise, whatever command sequence arrives.

Property-based fuzzing over command scripts: any sequence of (possibly
malformed) commands returns strings — errors are reported, not raised —
and the session survives to execute the next command.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.debugger import DebugSession
from repro.debugger.cli import DebuggerCLI
from repro.network.latency import UniformLatency
from repro.workloads import bank

COMMANDS = st.one_of(
    st.sampled_from([
        "help", "breaks", "processes", "order", "paths", "hits",
        "stats", "resume", "halt", "run 2.0", "run",
        "inspect branch0", "inspect ghost", "events branch1 3",
        "break state(balance<900)@branch0",
        "break enter(send_wire)@branch2",
        "break bogus@@@",
        "clear 1", "clear 99", "clear x",
        "diagram", "diagram 1 2", "diagram x",
        "watch mark(a)@branch0 & mark(b)@branch1",
        "pathbreak (recv@branch0 ; recv@branch1)",
        "save",  # missing path -> usage
        "state",  # may error when not halted: must not raise
        "report",
    ]),
    st.text(max_size=25),  # arbitrary junk
)


@given(script=st.lists(COMMANDS, max_size=12))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cli_never_raises(script):
    topo, processes = bank.build(n=3, transfers=10)
    session = DebugSession(topo, processes, seed=1,
                           latency=UniformLatency(0.4, 1.6))
    cli = DebuggerCLI(session)
    for line in script:
        output = cli.execute(line)
        assert isinstance(output, str)
