"""Unit tests for :mod:`repro.observe` — registry, spans, exporters — and
the unified drop-accounting contract between ``channel.stats`` and the
metrics surface, pinned on both backends."""

import math

import pytest

from repro.faults import ChannelFaultSpec, FaultPlan
from repro.network.latency import UniformLatency
from repro.observe import (
    MetricsRegistry,
    Observability,
    Span,
    SpanTracer,
    chrome_trace,
    prometheus_text,
    validate_chrome_trace,
)
from repro.observe.export import ExportError
from repro.runtime.system import System
from repro.runtime.threaded import ThreadedSystem
from repro.workloads import chatter


# -- metrics registry ---------------------------------------------------------


def test_counter_labels_and_set_total():
    registry = MetricsRegistry()
    counter = registry.counter("frobs_total", "Frobs.")
    counter.inc(kind="a")
    counter.inc(2, kind="a")
    counter.set_total(7, kind="b")
    assert counter.value(kind="a") == 3
    assert counter.value(kind="b") == 7
    # set_total mirrors an external monotonic count: re-setting is idempotent.
    counter.set_total(7, kind="b")
    assert counter.value(kind="b") == 7


def test_family_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("things_total", "Things.")
    with pytest.raises(ValueError):
        registry.gauge("things_total", "Things, but a gauge now.")


def test_gauge_set():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "Queue depth.")
    gauge.set(3.5, process="p0")
    gauge.set(1.0, process="p0")
    assert gauge.value(process="p0") == 1.0


def test_histogram_buckets_cumulative():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", "Latency.", buckets=(1.0, 5.0))
    for value in (0.5, 0.7, 3.0, 100.0):
        histogram.observe(value)
    snapshot = histogram.value()
    assert snapshot.count == 4
    assert snapshot.sum == pytest.approx(104.2)
    # Cumulative: le=1 sees 2, le=5 sees 3, le=+inf sees all.
    assert snapshot.counts == [2, 3, 4]
    assert snapshot.buckets[-1] == math.inf
    assert snapshot.mean == pytest.approx(104.2 / 4)


def test_histogram_set_from_is_idempotent():
    registry = MetricsRegistry()
    histogram = registry.histogram("hops", "Hops.", buckets=(1, 2))
    histogram.set_from([1.0, 2.0, 3.0])
    histogram.set_from([1.0, 2.0, 3.0])  # rebuild, not accumulate
    assert histogram.value().count == 3


def test_collector_runs_on_collect_and_snapshot():
    registry = MetricsRegistry()
    calls = []

    def collector():
        calls.append(True)
        registry.counter("pulled_total", "Pulled.").set_total(len(calls))

    registry.add_collector(collector)
    snapshot = registry.snapshot()
    assert calls and snapshot["pulled_total"][()] == 1


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("sent_total", "Messages sent.").inc(4, kind="user")
    registry.histogram("lat", "Latency.", buckets=(1.0,)).observe(0.5)
    text = prometheus_text(registry)
    assert "# HELP sent_total Messages sent." in text
    assert "# TYPE sent_total counter" in text
    assert 'sent_total{kind="user"} 4' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text


# -- spans --------------------------------------------------------------------


def test_span_duration_and_happened_before():
    earlier = Span("a", "test", 1.0, 2.0, vector=(1, 0))
    later = Span("b", "test", 3.0, 4.0, vector=(2, 1))
    assert earlier.duration == 1.0
    assert earlier.happened_before(later)
    assert not later.happened_before(earlier)


def test_causal_order_repairs_vector_inversions():
    tracer = SpanTracer()
    # Clock skew: the causally-later span carries the *earlier* timestamp.
    cause = Span("cause", "test", 5.0, 5.0, vector=(1, 0))
    effect = Span("effect", "test", 1.0, 1.0, vector=(2, 1))
    tracer.add(effect)
    tracer.add(cause)
    ordered = tracer.causal_order()
    assert ordered.index(cause) < ordered.index(effect)


def test_tracer_replace_is_idempotent():
    tracer = SpanTracer()
    tracer.add(Span("keep", "other", 0.0, 1.0))
    for _ in range(3):
        tracer.replace("halt", [Span("h", "halt", 0.0, 2.0)])
    assert len(tracer.spans("halt")) == 1
    assert len(tracer.spans("other")) == 1
    assert tracer.durations("halt") == (2.0,)


# -- exporters ----------------------------------------------------------------


def _observe_with_spans():
    observe = Observability()
    observe.tracer.add(Span("halt.converge", "halt", 0.0, 2.0,
                            attrs={"generation": 1}))
    observe.tracer.add(Span("halt.process", "halt", 1.0, 1.0, process="p0",
                            vector=(3, 1), vector_index=0))
    return observe


def test_chrome_trace_document_shape():
    document = chrome_trace(_observe_with_spans())
    validate_chrome_trace(document)
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases <= {"X", "i", "M"}
    named = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in named} >= {"system", "p0"}
    instant = next(e for e in document["traceEvents"] if e["ph"] == "i")
    assert instant["args"]["vector"] == [3, 1]
    # Times are microseconds.
    complete = next(e for e in document["traceEvents"] if e["ph"] == "X")
    assert complete["dur"] == pytest.approx(2_000_000)


def test_validate_chrome_trace_rejects_garbage():
    with pytest.raises(ExportError):
        validate_chrome_trace({"no": "traceEvents"})
    with pytest.raises(ExportError):
        validate_chrome_trace({"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0}
        ]})
    with pytest.raises(ExportError):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": 42, "pid": 0, "tid": 0, "ts": 0, "dur": 1}
        ]})


# -- drop accounting: one definition, both backends ---------------------------
#
# frames_dropped = frame copies the wire ate (recovered or not);
# dropped        = logical messages permanently lost.


def test_des_raw_wire_frames_equal_drops_without_duplication():
    topo, processes = chatter.build(n=3, budget=30, seed=2)
    system = System(topo, processes, seed=2,
                    latency=UniformLatency(0.4, 1.6),
                    fault_plan=FaultPlan.lossy(0.3, seed=2))
    system.run_to_quiescence()
    frames = sum(c.stats.frames_dropped for c in system.channels())
    dropped = sum(c.stats.dropped for c in system.channels())
    assert frames > 0
    # One copy per send: every eaten copy is a permanently lost message.
    assert frames == dropped


def test_des_raw_wire_duplication_separates_the_two_counts():
    topo, processes = chatter.build(n=3, budget=30, seed=3)
    plan = FaultPlan(
        seed=3,
        channel_defaults=ChannelFaultSpec(loss=0.3, duplicate=0.8),
    )
    system = System(topo, processes, seed=3,
                    latency=UniformLatency(0.4, 1.6), fault_plan=plan)
    system.run_to_quiescence()
    frames = sum(c.stats.frames_dropped for c in system.channels())
    dropped = sum(c.stats.dropped for c in system.channels())
    # With duplicates in flight, some eaten copies had surviving siblings.
    assert frames > dropped


def test_des_reliable_wire_recovers_every_message():
    topo, processes = chatter.build(n=3, budget=30, seed=4)
    system = System(topo, processes, seed=4,
                    latency=UniformLatency(0.4, 1.6),
                    fault_plan=FaultPlan.lossy(0.3, seed=4),
                    reliable=True)
    system.run_to_quiescence()
    frames = sum(c.stats.frames_dropped for c in system.channels())
    dropped = sum(c.stats.dropped for c in system.channels())
    assert frames > 0          # the wire still ate copies...
    assert dropped == 0        # ...but no logical message was lost
    assert sum(c.stats.gave_up for c in system.channels()) == 0


def test_threaded_raw_wire_frames_equal_drops():
    topo, processes = chatter.build(n=3, budget=30, seed=5)
    system = ThreadedSystem(topo, processes, seed=5, time_scale=0.01,
                            latency_range=(0.0005, 0.002),
                            fault_plan=FaultPlan.lossy(0.3, seed=5))
    try:
        system.start()
        assert system.settle(timeout=30.0)
        frames = sum(c.stats.frames_dropped for c in system.channels())
        dropped = sum(c.stats.dropped for c in system.channels())
        assert frames > 0
        assert frames == dropped
    finally:
        system.shutdown()


def test_registry_mirrors_channel_stats():
    observe = Observability()
    topo, processes = chatter.build(n=3, budget=30, seed=6)
    system = System(topo, processes, seed=6,
                    latency=UniformLatency(0.4, 1.6),
                    fault_plan=FaultPlan.lossy(0.3, seed=6),
                    reliable=True, observe=observe)
    system.run_to_quiescence()
    snap = observe.metrics.snapshot()

    def total(family):
        return sum(int(v) for v in snap.get(family, {}).values())

    stats = [c.stats for c in system.channels()]
    assert total("channel_frames_dropped_total") == sum(
        s.frames_dropped for s in stats)
    assert total("channel_retransmits_total") == sum(
        s.retransmits for s in stats)
    assert total("channel_messages_delivered_total") == sum(
        s.delivered for s in stats)
    assert total("channel_messages_dropped_total") == 0
    by_kind = {
        dict(labels)["kind"]: int(v)
        for labels, v in snap["messages_sent_total"].items()
    }
    assert by_kind == {k: int(v) for k, v in system.message_totals().items()}
