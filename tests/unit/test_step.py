"""Single-step delivery: exactly one buffered message, still halted.

``step`` is the control-plane verb between "frozen" and "resumed": it pops
the oldest message out of a halted process's halt buffer, delivers it, and
re-freezes with a fresh snapshot — the debugger watches causality advance
one edge at a time. These tests pin the controller-level semantics
(:meth:`ProcessController.step_one`) and the session-level round trip
(:meth:`DebugSession.step` → StepCommand → StepReport).
"""

import pytest

from repro.debugger import DebugSession
from repro.network.latency import UniformLatency
from repro.util.errors import RuntimeStateError
from repro.workloads import bank


def halted_bank_session(seed=0):
    """A fully halted bank run with messages left in halt buffers.

    Seed 0 deterministically leaves several pending transfers buffered at
    branch2 (and at least one at every other branch) when the breakpoint
    halt converges.
    """
    topo, processes = bank.build(n=4, transfers=40)
    session = DebugSession(topo, processes, seed=seed,
                          latency=UniformLatency(0.4, 1.6))
    session.set_breakpoint("state(transfers_made>=6)@branch2")
    outcome = session.run()
    assert outcome.stopped
    return session


def buffered(session, name):
    controller = session.system.controller(name)
    return sum(len(bucket) for bucket in controller.halt_buffers.values())


# -- controller level ---------------------------------------------------------


def test_step_one_requires_halted():
    topo, processes = bank.build(n=3, transfers=10)
    session = DebugSession(topo, processes, seed=1)
    controller = session.system.controller("branch0")
    with pytest.raises(RuntimeStateError):
        controller.step_one()


def test_step_one_pops_exactly_one_and_stays_halted():
    session = halted_bank_session()
    controller = session.system.controller("branch2")
    before = buffered(session, "branch2")
    assert before >= 2, "scenario must leave multiple buffered messages"

    envelope = controller.step_one()
    assert envelope is not None
    assert controller.halted, "stepping must re-freeze the process"
    assert buffered(session, "branch2") == before - 1
    # The delivered envelope is really gone, not merely dequeued from the
    # order index.
    for bucket in controller.halt_buffers.values():
        assert envelope not in bucket


def test_step_one_refreshes_snapshot_but_keeps_halt_meta():
    session = halted_bank_session()
    controller = session.system.controller("branch2")
    old = controller.halted_snapshot
    assert old is not None

    controller.step_one()
    new = controller.halted_snapshot
    assert new is not None and new is not old
    # §2.2.4 bookkeeping survives the step: same generation, same path.
    assert new.meta.get("halt_id") == old.meta.get("halt_id")
    assert new.meta.get("halt_path") == old.meta.get("halt_path")


def test_step_one_channel_filter_misses_return_none():
    session = halted_bank_session()
    controller = session.system.controller("branch2")
    before = buffered(session, "branch2")
    assert controller.step_one(channel="no-such-channel") is None
    assert buffered(session, "branch2") == before
    assert controller.halted


def test_step_one_drains_in_arrival_order():
    session = halted_bank_session()
    controller = session.system.controller("branch2")
    expected = list(controller._halt_buffer_order)
    drained = []
    while True:
        envelope = controller.step_one()
        if envelope is None:
            break
        drained.append(envelope)
    assert drained == expected
    assert buffered(session, "branch2") == 0
    assert controller.halted


# -- session level (command + report over the protocol) -----------------------


def test_session_step_round_trip():
    session = halted_bank_session()
    before = buffered(session, "branch2")
    report = session.step("branch2")
    assert report.delivered
    assert report.process == "branch2"
    assert report.remaining == before - 1
    assert report.channel  # names the channel it was delivered on
    assert "Transfer" in report.detail or report.detail


def test_session_step_applies_the_message():
    """A step visibly advances the process: delivered transfers change its
    balance/state where a plain inspect of a frozen process would not."""
    session = halted_bank_session()
    state_before = session.inspect("branch2")
    stepped_any = False
    while session.step("branch2").delivered:
        stepped_any = True
    assert stepped_any
    state_after = session.inspect("branch2")
    assert state_after != state_before


def test_session_step_empty_buffer_reports_not_delivered():
    session = halted_bank_session()
    while session.step("branch2").delivered:
        pass
    report = session.step("branch2")
    assert not report.delivered
    assert report.remaining == 0
    assert session.system.controller("branch2").halted


def test_session_step_then_resume_still_works():
    session = halted_bank_session()
    session.step("branch2")
    session.resume()
    outcome = session.run()
    # Nothing left to stop the program: it runs to completion with
    # conservation intact.
    total = sum(
        session.inspect(name)["balance"]
        for name in session.system.user_process_names
    )
    assert total == 4 * bank.INITIAL_BALANCE
    assert not outcome.stopped or session.current_generation() >= 1
