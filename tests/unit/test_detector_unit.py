"""Unit tests for the LP detector mechanics: arming, routing, cancel."""

import pytest

from repro.breakpoints import BreakpointCoordinator, parse_predicate
from repro.breakpoints.detector import PredicateAgent, PredicateMarker
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.util.errors import PredicateError
from repro.workloads import pipeline, token_ring


class TestCoordinatorValidation:
    def test_unknown_process_rejected(self):
        system = build_system(lambda: token_ring.build(n=3), 0)
        breakpoints = BreakpointCoordinator(system, halt=False)
        with pytest.raises(PredicateError, match="unknown processes"):
            breakpoints.set_breakpoint("recv@ghost")

    def test_lp_ids_increase(self):
        system = build_system(lambda: token_ring.build(n=3), 0)
        breakpoints = BreakpointCoordinator(system, halt=False)
        first = breakpoints.set_breakpoint("recv@p0")
        second = breakpoints.set_breakpoint("recv@p1")
        assert second == first + 1

    def test_cancel_disarms_everywhere(self):
        system = build_system(lambda: token_ring.build(n=3), 0)
        breakpoints = BreakpointCoordinator(system, halt=False)
        lp_id = breakpoints.set_breakpoint("recv@p0 | recv@p1")
        assert any(agent.armed for agent in breakpoints.agents.values())
        breakpoints.cancel(lp_id)
        assert all(not agent.armed for agent in breakpoints.agents.values())
        system.run_to_quiescence()
        assert breakpoints.hits == []


class TestMonitoringMode:
    def test_non_halting_breakpoint_reports_only(self):
        system = build_system(lambda: token_ring.build(n=3, max_hops=12), 1)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system, halt=False)
        lp_id = breakpoints.set_breakpoint("enter(receive_token)@p1")
        system.run_to_quiescence()
        assert breakpoints.hits_for(lp_id)
        # Nothing halted: the ring ran to natural completion.
        assert not system.all_user_processes_halted()
        assert system.state_of("p0")["last_value"] >= 11

    def test_breakpoint_without_halting_agent_raises(self):
        system = build_system(lambda: token_ring.build(n=3, max_hops=12), 1)
        breakpoints = BreakpointCoordinator(system, halt=True)  # halting!
        breakpoints.set_breakpoint("enter(receive_token)@p1")
        with pytest.raises(PredicateError, match="no HaltingAgent"):
            system.run_to_quiescence()


class TestMarkerRouting:
    def test_multi_hop_route_on_sparse_ring(self):
        """p0 -> p2 has no direct channel on a 4-ring; the marker relays."""
        system = build_system(lambda: token_ring.build(n=4, max_hops=40), 2)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        lp_id = breakpoints.set_breakpoint(
            "enter(receive_token)@p0 -> enter(receive_token)@p2"
        )
        system.run_to_quiescence()
        hits = breakpoints.hits_for(lp_id)
        assert hits
        assert [h.process for h in hits[0].trail] == ["p0", "p2"]

    def test_unroutable_marker_raises(self):
        """On an acyclic pipe, a later stage cannot arm an earlier one."""
        system = build_system(lambda: pipeline.build(stages=1, items=20), 3)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        breakpoints.set_breakpoint(
            "enter(consume)@consumer -> enter(produce)@producer"
        )
        with pytest.raises(PredicateError, match="no channel path"):
            system.run_to_quiescence()

    def test_stage_counts_only_after_arming(self):
        """Events concurrent-with/before the previous stage must not count:
        p3's first token receipt happens before the marker from p1 can
        arrive, so the LP needs a *second* p3 receipt."""
        system = build_system(lambda: token_ring.build(n=4, max_hops=40), 4)
        HaltingCoordinator(system)
        breakpoints = BreakpointCoordinator(system)
        lp_id = breakpoints.set_breakpoint(
            "enter(receive_token)@p1 -> enter(receive_token)@p3"
        )
        system.run_to_quiescence()
        hits = breakpoints.hits_for(lp_id)
        assert hits
        first_hit, second_hit = hits[0].trail
        # The closing event is causally after the opening event.
        log = system.log
        opener = next(e for e in log if e.eid == first_hit.eid)
        closer = next(e for e in log if e.eid == second_hit.eid)
        assert opener.happened_before(closer)


class TestArmValidation:
    def test_arm_requires_local_involvement(self):
        system = build_system(lambda: token_ring.build(n=3), 0)
        agent = PredicateAgent(system.controller("p0"), halt_on_final=False)
        marker = PredicateMarker(
            lp_id=1, residual=parse_predicate("recv@p1"), stage_index=0
        )
        with pytest.raises(PredicateError, match="involves only"):
            agent.arm(marker)
