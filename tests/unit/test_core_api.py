"""Unit tests for the facade API."""

import pytest

from repro.core.api import (
    WORKLOADS,
    attach_debugger,
    build_system,
    build_workload,
    halt_with_breakpoint,
    snapshot_now,
)
from repro.analysis import check_cut_consistency
from repro.workloads import bank


class TestBuildWorkload:
    def test_registry_names(self):
        assert set(WORKLOADS) == {
            "bank", "chatter", "echo", "election", "gossip", "mutex",
            "philosophers", "pipeline", "token_ring", "two_phase_commit",
        }

    def test_build_by_name(self):
        topo, processes = build_workload("bank", n=3, transfers=5)
        assert len(topo.processes) == 3
        assert set(processes) == set(topo.processes)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            build_workload("nonesuch")


class TestFacadeFlows:
    def test_snapshot_now(self):
        topo, processes = build_workload("bank", n=3, transfers=20)
        system = build_system(topo, processes, seed=2)
        system.run(until=5.0)
        state = snapshot_now(system, initiators=["branch0"])
        assert state.origin == "snapshot"
        assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE
        report = check_cut_consistency(system.log, state)
        assert report.consistent, "\n".join(report.violations)

    def test_halt_with_breakpoint(self):
        topo, processes = build_workload("token_ring", n=3, max_hops=30)
        system, state = halt_with_breakpoint(
            topo, processes, "enter(receive_token)@p1 ^2", seed=3
        )
        assert state.origin == "halting"
        assert state.processes["p1"].state["tokens_seen"] == 2

    def test_attach_debugger_end_to_end(self):
        topo, processes = build_workload("bank", n=3, transfers=20)
        session = attach_debugger(topo, processes, seed=4)
        session.set_breakpoint("state(transfers_made>=3)@branch1")
        outcome = session.run()
        assert outcome.stopped
        assert session.inspect("branch1")["transfers_made"] >= 3
