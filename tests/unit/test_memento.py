"""In-place memento capture/restore: the engine's backtracking substrate.

The worker-resident explorer rewinds a live scenario world between runs,
so these tests pin down the properties that rewinding depends on:
restore writes into the *same* objects (identity preserved), subclass
mutation hooks never fire during a rewind, RNG streams and id counters
resume exactly, and graphs holding live execution state are rejected
loudly rather than captured wrong.
"""

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Any, List, Tuple

import pytest

from repro.runtime.context import TrackedState
from repro.runtime.memento import Memento, MementoError, capture


class Holder:
    """A plain mutable instance for attribute-rewind tests."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class Slotted:
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


@dataclass(frozen=True)
class FrozenShell:
    """Frozen dataclass wrapping a mutable payload (like an Envelope)."""

    label: str
    payload: List[int]


def test_restore_rewinds_containers_in_place_preserving_identity():
    shared = [1, 2, 3]
    world = Holder(
        items={"a": shared, "b": 2},
        log=[shared, "entry"],
        members={"x", "y"},
        queue=deque([10, 20]),
        raw=bytearray(b"abc"),
    )
    memento = capture(world)

    world.items["c"] = 99
    del world.items["b"]
    world.log.append("late")
    world.members.add("z")
    world.queue.popleft()
    world.raw += b"def"
    shared.append(4)
    before = (world.items, world.log, world.members, world.queue, world.raw)

    memento.restore()
    # Same container objects, rewound contents — aliases stay aliased.
    assert (world.items, world.log, world.members, world.queue,
            world.raw) == ({"a": [1, 2, 3], "b": 2}, [[1, 2, 3], "entry"],
                           {"x", "y"}, deque([10, 20]), bytearray(b"abc"))
    for rewound, original in zip(
        (world.items, world.log, world.members, world.queue, world.raw),
        before,
    ):
        assert rewound is original
    assert world.items["a"] is shared
    assert world.log[0] is shared


def test_restore_is_repeatable_after_further_mutation():
    world = Holder(tally={"hops": 0})
    memento = capture(world)
    for expected in range(3):
        assert world.tally["hops"] == 0
        world.tally["hops"] = expected + 10
        memento.restore()
    assert world.tally == {"hops": 0}


def test_tracked_state_restores_without_emitting_state_change_events():
    class Recorder:
        def __init__(self):
            self.events: List[Tuple[str, Any]] = []

        def note_state_change(self, key, value, deleted=False):
            self.events.append((key, value))

    controller = Recorder()
    state = TrackedState.__new__(TrackedState)
    dict.__init__(state)
    state._controller = controller
    state["tokens"] = 1
    assert controller.events == [("tokens", 1)]

    memento = capture(state)
    state["tokens"] = 2
    state["extra"] = "x"
    assert len(controller.events) == 3

    memento.restore()
    assert dict(state) == {"tokens": 1}
    # The controller (reached through the state's attrs) rewound to its
    # capture-time log, and the rewind itself wrote through
    # dict.__setitem__, not the tracking hook — a restore must not
    # re-execute the world it is rewinding, so nothing new was appended.
    assert controller.events == [("tokens", 1)]


def test_slotted_and_nested_instances_rewind():
    inner = Slotted(left=[1], right=None)
    outer = Holder(child=inner, name="outer")
    memento = capture(outer)

    inner.left.append(2)
    inner.right = "set-later"
    outer.name = "renamed"

    memento.restore()
    assert outer.name == "outer"
    assert outer.child is inner
    assert inner.left == [1]
    assert inner.right is None


def test_rng_stream_rewinds_in_place():
    rng = random.Random(42)
    world = Holder(rng=rng, draw=lambda: rng.random())
    burned = [world.draw() for _ in range(3)]
    memento = capture(world)
    first = [world.draw() for _ in range(5)]
    memento.restore()
    # The closure still sees the same Random object, rewound.
    assert [world.draw() for _ in range(5)] == first
    assert world.rng is rng
    assert burned != first


def test_itertools_count_resumes_from_captured_value():
    world = Holder(sequence=itertools.count(7))
    assert next(world.sequence) == 7
    memento = capture(world)
    assert [next(world.sequence) for _ in range(3)] == [8, 9, 10]
    memento.restore()
    # Counts cannot be rewound; the slot is rebound to a fresh count
    # resuming exactly where the capture saw it.
    assert next(world.sequence) == 8


def test_closure_cells_rewind():
    def make_counter():
        total = 0

        def bump():
            nonlocal total
            total += 1
            return total

        return bump

    bump = make_counter()
    bump()
    memento = capture(bump)
    assert bump() == 2
    assert bump() == 3
    memento.restore()
    assert bump() == 2


def test_frozen_dataclass_traversed_but_not_rewound():
    shell = FrozenShell(label="env", payload=[1])
    world = Holder(shell=shell)
    memento = capture(world)
    shell.payload.append(2)
    memento.restore()
    # The mutable payload inside the frozen shell rewinds; the shell's
    # own fields produce no restore ops (they can never be rebound).
    assert shell.payload == [1]
    assert world.shell is shell


def test_live_generator_is_rejected():
    def gen():
        yield 1

    world = Holder(pending=gen())
    with pytest.raises(MementoError):
        capture(world)


def test_memento_reports_ops_and_objects():
    world = Holder(items={"a": 1}, log=[1, 2])
    memento = capture(world)
    assert isinstance(memento, Memento)
    assert memento.ops >= 3  # attrs + dict + list
    assert memento.objects >= 3
