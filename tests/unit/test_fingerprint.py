"""State fingerprints: canonical hashing the dedup table can trust.

The parallel explorer skips a frontier subtree when the branch-point state
fingerprint has been seen before, so the hash must be (a) deterministic
across runs *and processes* (``hash()`` is not, under PYTHONHASHSEED),
(b) insensitive to representation noise (dict insertion order, set order,
tuple vs list), and (c) sensitive to anything that can change a downstream
verdict.
"""

import os
import subprocess
import sys

import repro

from repro.check.fingerprint import (
    FingerprintTable,
    canonicalize,
    fingerprint_system,
    fingerprint_value,
)
from repro.check.runner import run_schedule, scenarios
from repro.check.scheduler import ScriptedStrategy


STATE = {
    "balances": {"p2": 40, "p1": 60},
    "seen": {"b", "a", "c"},
    "trace": [1, 2, (3, 4)],
    "flag": True,
}


class TestCanonicalize:
    def test_same_value_same_digest(self):
        assert fingerprint_value(STATE) == fingerprint_value(dict(STATE))

    def test_dict_order_is_noise(self):
        permuted = {
            "flag": True,
            "trace": [1, 2, (3, 4)],
            "seen": {"c", "a", "b"},
            "balances": {"p1": 60, "p2": 40},
        }
        assert fingerprint_value(STATE) == fingerprint_value(permuted)

    def test_tuple_and_list_unify(self):
        assert canonicalize((1, 2, 3)) == canonicalize([1, 2, 3])
        assert fingerprint_value({"xs": (1, 2)}) == fingerprint_value(
            {"xs": [1, 2]}
        )

    def test_distinct_values_distinct_digests(self):
        changed = dict(STATE, flag=False)
        assert fingerprint_value(STATE) != fingerprint_value(changed)
        assert fingerprint_value({"a": 1}) != fingerprint_value({"a": "1"})
        assert fingerprint_value([]) != fingerprint_value({})

    def test_non_string_dict_keys(self):
        assert fingerprint_value({1: "a", 2: "b"}) == fingerprint_value(
            {2: "b", 1: "a"}
        )

    def test_stable_across_interpreter_processes(self):
        # PYTHONHASHSEED randomizes str hashing per process; the digest
        # must not inherit that. Compute the same fingerprint in a child
        # interpreter with a different hash seed and compare.
        code = (
            "from repro.check.fingerprint import fingerprint_value\n"
            f"print(fingerprint_value({STATE!r}))\n"
        )
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_root, PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == fingerprint_value(STATE)


class TestFingerprintSystem:
    def _digest_at_branch_point(self, prefix):
        digests = []
        run_schedule(
            scenarios()["token_ring"],
            ScriptedStrategy(list(prefix)),
            on_branch_point=lambda system: digests.append(
                fingerprint_system(system)
            ),
        )
        assert len(digests) == 1
        return digests[0]

    def test_deterministic_across_runs(self):
        assert self._digest_at_branch_point([]) == \
            self._digest_at_branch_point([])

    def test_different_prefixes_usually_differ(self):
        base = self._digest_at_branch_point([])
        # Walk one decision down every first-choice branch; at least one
        # must reach a state distinguishable from the empty-prefix state.
        result = run_schedule(scenarios()["token_ring"], ScriptedStrategy([]))
        first = result.record.choice_points[0]
        others = [
            self._digest_at_branch_point([label])
            for label in first.enabled if label != first.chosen
        ]
        assert any(d != base for d in others)


class TestFingerprintTable:
    def test_record_and_hits(self):
        table = FingerprintTable()
        assert table.record("abc", origin=1) is True
        assert table.record("abc", origin=2) is False
        assert table.record("def", origin=3) is True
        assert len(table) == 2
        assert table.hits == 1
        assert "abc" in table
        assert table.origin_of("abc") == 1
