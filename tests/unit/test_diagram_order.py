"""Unit tests for the space-time diagram and order statistics."""

import pytest

from repro.analysis import compute_order_stats, render_spacetime, render_summary
from repro.events.event import EventKind
from repro.experiments import build_system, run_halting
from repro.util.errors import AnalysisError
from repro.workloads import bank, pipeline, token_ring


def small_run(builder=None, seed=1):
    system = build_system(builder or (lambda: token_ring.build(n=3, max_hops=10)), seed)
    system.run_to_quiescence()
    return system


class TestDiagram:
    def test_contains_lanes_and_arrows(self):
        system = small_run()
        text = render_spacetime(system.log, unicode_glyphs=False)
        assert "p0" in text and "p1" in text and "p2" in text
        assert "~~>" in text and "<~~" in text

    def test_time_window(self):
        system = small_run()
        text = render_spacetime(system.log, start=5.0, end=8.0,
                                unicode_glyphs=False)
        times = [
            float(line[2:11])
            for line in text.splitlines()
            if line.startswith("t=")
        ]
        assert times and all(5.0 <= t <= 8.0 for t in times)

    def test_kind_filter(self):
        system = small_run()
        text = render_spacetime(
            system.log, kinds={EventKind.SEND}, unicode_glyphs=False
        )
        assert ">send" in text
        assert "<recv" not in text
        assert "*set" not in text

    def test_truncation(self):
        system = small_run()
        text = render_spacetime(system.log, max_rows=5, unicode_glyphs=False)
        assert "truncated" in text

    def test_halt_bars(self):
        builder = lambda: bank.build(n=3, transfers=15)
        system, _, state = run_halting(builder, 2, "branch0", 8)
        text = render_spacetime(
            system.log, halted_state=state, unicode_glyphs=False,
            max_rows=100_000,
        )
        assert text.count("== HALT ==") == 3  # one bar per process

    def test_summary(self):
        system = small_run()
        text = render_summary(system.log)
        assert "p0" in text
        assert "send=" in text


class TestOrderStats:
    def test_pipeline_is_mostly_sequential(self):
        system = small_run(lambda: pipeline.build(stages=1, items=8), seed=2)
        stats = compute_order_stats(system.log)
        # Items flow one after another but the producer works ahead:
        # moderate concurrency, deep message chains.
        assert stats.message_depth >= 2
        assert stats.critical_path_length > 8

    def test_chatter_is_concurrent(self):
        from repro.workloads import chatter

        system = small_run(lambda: chatter.build(n=4, budget=8, seed=4), seed=4)
        stats = compute_order_stats(system.log)
        assert stats.concurrency_ratio > 0.2
        assert stats.parallelism > 1.5

    def test_counts_are_exhaustive(self):
        system = small_run()
        stats = compute_order_stats(system.log)
        n = stats.events
        assert stats.ordered_pairs + stats.concurrent_pairs == n * (n - 1) // 2

    def test_size_guard(self):
        system = small_run(lambda: bank.build(n=4, transfers=20), seed=1)
        with pytest.raises(AnalysisError, match="sample"):
            compute_order_stats(system.log, max_events=10)

    def test_single_token_ring_has_sequential_token_chain(self):
        system = small_run()
        stats = compute_order_stats(system.log)
        # Every token hop is a message edge on the critical path: depth of
        # message hops >= max_hops.
        assert stats.message_depth >= 10
