"""Unit tests for periodic snapshots and stable-property detection."""

import pytest

from repro.experiments import build_system
from repro.snapshot import SnapshotMonitor, terminated
from repro.util.errors import SnapshotError
from repro.workloads import bank, chatter, token_ring


def money_invariant(state):
    return bank.total_money(state) == 3 * bank.INITIAL_BALANCE


class TestPeriodicInvariants:
    def test_money_conserved_at_every_generation(self):
        system = build_system(lambda: bank.build(n=3, transfers=25), 3)
        monitor = SnapshotMonitor(
            system, interval=3.0,
            invariants={"money": money_invariant},
            stable=terminated,
        )
        records = monitor.run()
        assert len(records) >= 3
        assert monitor.invariant_failures() == []
        generations = [record.generation for record in records]
        assert generations == sorted(generations)

    def test_invariant_failures_are_recorded_not_raised(self):
        system = build_system(lambda: bank.build(n=3, transfers=10), 1)
        monitor = SnapshotMonitor(
            system, interval=4.0,
            invariants={"impossible": lambda state: False},
            stable=terminated,
        )
        records = monitor.run()
        assert all(r.invariant_failures == ["impossible"] for r in records)


class TestTerminationDetection:
    def test_detected_only_after_real_quiescence(self):
        system = build_system(lambda: chatter.build(n=4, budget=10, seed=2), 2)
        monitor = SnapshotMonitor(system, interval=3.0, stable=terminated)
        records = monitor.run()
        assert records[-1].stable_detected
        assert not any(r.stable_detected for r in records[:-1])
        # Ground truth: the program really is done.
        for name in system.user_process_names:
            assert system.state_of(name)["sent"] == 10
        assert monitor.detected_at is not None

    def test_not_detected_while_active(self):
        system = build_system(lambda: token_ring.build(n=3, max_hops=50), 1)
        monitor = SnapshotMonitor(system, interval=2.0, stable=terminated)
        monitor.run(max_rounds=4)  # the token is still circulating
        if monitor.records[-1].stable_detected:
            # 50 hops could conceivably finish within 4 intervals only if
            # the run is really over — cross-check ground truth.
            assert system.state_of("p0")["last_value"] == 50
        else:
            assert monitor.detected_at is None

    def test_stable_property_is_stable(self):
        """Once detected, re-snapshotting keeps confirming it."""
        system = build_system(lambda: chatter.build(n=3, budget=5, seed=4), 4)
        monitor = SnapshotMonitor(system, interval=3.0, stable=terminated)
        monitor.run()
        assert monitor.records[-1].stable_detected
        monitor.coordinator.initiate([system.user_process_names[0]])
        system.kernel.run(stop_when=monitor.coordinator.is_complete)
        state = monitor.coordinator.collect()
        assert terminated(state)

    def test_detection_latency_positive(self):
        system = build_system(lambda: chatter.build(n=4, budget=8, seed=6), 6)
        monitor = SnapshotMonitor(system, interval=2.5, stable=terminated)
        records = monitor.run()
        final = records[-1]
        assert final.stable_detected
        assert final.detection_latency > 0  # markers take real time


class TestValidation:
    def test_bad_interval(self):
        system = build_system(lambda: bank.build(n=3, transfers=5), 0)
        with pytest.raises(SnapshotError):
            SnapshotMonitor(system, interval=0.0)
