"""Trace artifacts must round-trip exactly and refuse anything corrupt.

Property-based: arbitrary frame streams (channels, kinds, clocks,
payloads) survive ``to_jsonable``/``from_jsonable`` and a full
save/load through the filesystem unchanged. Deterministic: the store's
format/kind gates reject wrong-kind, wrong-format, truncated, and
non-JSON files with :class:`~repro.util.errors.TraceError` — never a
bare ``KeyError`` out of half-parsed data — and the ``TraceStore``
sequence/prune lifecycle matches the checkpoint store's discipline.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.record.store import (
    TRACE_FORMAT,
    RecordedFrame,
    TraceArtifact,
    TraceStore,
    load_trace,
    payload_key,
    save_trace,
)
from repro.util.errors import TraceError

# -- strategies ----------------------------------------------------------------

_channels = st.sampled_from(["p0->p1", "p1->p2", "p2->p0", "d->p0", "p0->d"])
_kinds = st.sampled_from(["user", "halt_marker", "halt_ack", "state_report"])
_clocks = st.one_of(
    st.none(),
    st.tuples(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.integers(min_value=0, max_value=2**31),
                 min_size=1, max_size=5).map(tuple),
    ),
)
# Wire payloads are JSON-safe by construction; model that directly.
_payloads = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20)),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=8,
)

_frames = st.builds(
    RecordedFrame,
    index=st.integers(min_value=0, max_value=10_000),
    channel=_channels,
    kind=_kinds,
    seq=st.integers(min_value=0, max_value=10_000),
    send_time=st.floats(min_value=0, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
    clock=_clocks,
    payload=_payloads,
)

_artifacts = st.builds(
    TraceArtifact,
    workload=st.sampled_from(["token_ring", "pipeline"]),
    params=st.dictionaries(
        st.sampled_from(["n", "max_hops", "hold_time"]),
        st.one_of(st.integers(min_value=0, max_value=100),
                  st.floats(min_value=0, max_value=10,
                            allow_nan=False, allow_infinity=False)),
        max_size=3,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
    frames=st.lists(_frames, max_size=12).map(tuple),
    meta=st.fixed_dictionaries(
        {},
        optional={
            "halt_order": st.lists(st.sampled_from(["p0", "p1", "p2"]),
                                   max_size=3),
            "debugger": st.just("d"),
            "generation": st.integers(min_value=1, max_value=5),
        },
    ),
)


# -- round-trip properties -----------------------------------------------------


@given(frame=_frames)
@settings(max_examples=80, deadline=None)
def test_recorded_frame_roundtrips_jsonable(frame):
    data = frame.to_jsonable()
    # The jsonable form must itself survive a JSON encode/decode cycle.
    back = RecordedFrame.from_jsonable(json.loads(json.dumps(data)))
    assert back == frame


@given(artifact=_artifacts)
@settings(max_examples=40, deadline=None)
def test_trace_artifact_roundtrips_through_disk(artifact, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "trace.json")
    save_trace(artifact, path)
    back = load_trace(path)
    assert back == artifact
    assert back.channels() == artifact.channels()
    assert back.user_frame_count() == artifact.user_frame_count()


@given(artifact=_artifacts)
@settings(max_examples=40, deadline=None)
def test_channel_sequences_preserve_per_channel_arrival_order(artifact):
    sequences = artifact.channel_sequences()
    assert sorted(sequences) == artifact.channels()
    for channel, frames in sequences.items():
        assert all(f.channel == channel for f in frames)
        indices = [f.index for f in frames]
        assert indices == sorted(indices)
    assert sum(len(f) for f in sequences.values()) == len(artifact.frames)


def test_payload_key_is_order_insensitive_and_kind_sensitive():
    a = payload_key("user", {"x": 1, "y": [2, 3]})
    b = payload_key("user", {"y": [2, 3], "x": 1})
    assert a == b
    assert payload_key("halt_marker", {"x": 1, "y": [2, 3]}) != a


# -- refusal paths -------------------------------------------------------------


def _valid_jsonable():
    artifact = TraceArtifact(
        workload="token_ring",
        params={"n": 3},
        seed=7,
        frames=(RecordedFrame(index=0, channel="p0->p1", kind="user",
                              seq=1, send_time=0.5, clock=(3, (1, 1, 0)),
                              payload={"t": "int", "v": 9}),),
        meta={"halt_order": ["p0"]},
    )
    return artifact.to_jsonable()


def test_wrong_kind_is_refused(tmp_path):
    data = _valid_jsonable()
    data["kind"] = "repro-checkpoint"
    with pytest.raises(TraceError, match="kind"):
        TraceArtifact.from_jsonable(data)


def test_future_format_is_refused(tmp_path):
    data = _valid_jsonable()
    data["format"] = TRACE_FORMAT + 1
    with pytest.raises(TraceError, match="format"):
        TraceArtifact.from_jsonable(data)


def test_non_dict_payload_is_refused():
    with pytest.raises(TraceError):
        TraceArtifact.from_jsonable(["not", "a", "trace"])


def test_malformed_frame_is_refused():
    data = _valid_jsonable()
    del data["frames"][0]["channel"]
    with pytest.raises(TraceError, match="frame"):
        TraceArtifact.from_jsonable(data)


def test_truncated_file_is_refused(tmp_path):
    path = str(tmp_path / "trace.json")
    save_trace(TraceArtifact.from_jsonable(_valid_jsonable()), path)
    with open(path, "r+", encoding="utf-8") as fp:
        fp.truncate(os.path.getsize(path) // 2)
    with pytest.raises(TraceError, match="cannot read"):
        load_trace(path)


def test_missing_file_is_refused(tmp_path):
    with pytest.raises(TraceError, match="cannot read"):
        load_trace(str(tmp_path / "nope.json"))


def test_non_json_file_is_refused(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_bytes(b"\x00\x01 not json")
    with pytest.raises(TraceError, match="cannot read"):
        load_trace(str(path))


# -- the store lifecycle -------------------------------------------------------


def test_store_saves_sequences_loads_and_prunes(tmp_path):
    store = TraceStore(str(tmp_path / "traces"))
    assert store.latest() is None
    base = TraceArtifact.from_jsonable(_valid_jsonable())
    paths = []
    for seed in (1, 2, 3, 4):
        artifact = TraceArtifact(workload=base.workload, params=base.params,
                                 seed=seed, frames=base.frames,
                                 meta=base.meta)
        paths.append(store.save(artifact))
    assert store.sequence_numbers() == [1, 2, 3, 4]
    seq, latest_path = store.latest()
    assert seq == 4 and latest_path == paths[-1]
    assert store.load(4).seed == 4
    assert store.load(paths[0]).seed == 1

    removed = store.prune(keep=2)
    assert removed == paths[:2]
    assert store.sequence_numbers() == [3, 4]
    # Sequence numbering continues past pruned history.
    store.save(base)
    assert store.sequence_numbers() == [3, 4, 5]


def test_store_prune_refuses_keep_zero(tmp_path):
    store = TraceStore(str(tmp_path / "traces"))
    with pytest.raises(TraceError, match="keep"):
        store.prune(keep=0)


def test_store_ignores_foreign_files(tmp_path):
    directory = tmp_path / "traces"
    store = TraceStore(str(directory))
    (directory / "README.txt").write_text("not a trace")
    (directory / "trace-abc.json").write_text("{}")
    assert store.sequence_numbers() == []
    assert store.latest() is None
