"""Property tests for the shared JSON codec (:mod:`repro.util.codec`).

The exact codec underpins the distributed backend's wire protocol: every
payload a control message can carry must survive
``json.dumps(to_jsonable(v))`` → ``from_jsonable(json.loads(...))``
unchanged — tuples staying tuples, non-string dict keys staying keys.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.codec import TAG, from_jsonable, payload_to_jsonable, to_jsonable
from repro.util.errors import CodecError

# Scalars the wire supports. NaN is excluded (NaN != NaN breaks the
# round-trip *assertion*, not the codec); infinities round-trip fine.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.binary(max_size=64),
)

hashable_keys = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.text(),
    st.tuples(st.integers(), st.text()),
)


def payloads(depth=3):
    """Recursively nested payloads: lists, tuples, sets, dicts with
    arbitrary (including non-string and tuple) keys."""
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=4).map(tuple),
            st.dictionaries(hashable_keys, children, max_size=4),
            st.sets(st.one_of(st.integers(), st.text()), max_size=4),
            st.frozensets(st.integers(), max_size=4),
        ),
        max_leaves=12,
    )


@settings(max_examples=200, deadline=None)
@given(payloads())
def test_exact_codec_round_trips_through_json(value):
    encoded = to_jsonable(value)
    wire = json.dumps(encoded)
    decoded = from_jsonable(json.loads(wire))
    assert decoded == value
    assert type(decoded) is type(value) or isinstance(value, (list, tuple))


@given(st.dictionaries(st.tuples(st.integers(), st.integers()),
                       st.integers(), min_size=1, max_size=4))
def test_tuple_keys_survive(value):
    decoded = from_jsonable(json.loads(json.dumps(to_jsonable(value))))
    assert decoded == value
    assert all(isinstance(k, tuple) for k in decoded)


def test_nested_tuple_inside_dict_inside_list():
    value = [{"a": (1, (2, 3), {"b": {4: "x"}})}, (None, True)]
    assert from_jsonable(to_jsonable(value)) == value


def test_plain_string_keyed_dicts_stay_plain_on_the_wire():
    encoded = to_jsonable({"a": 1, "b": [2, 3]})
    assert encoded == {"a": 1, "b": [2, 3]}  # readable, no tags


def test_dict_containing_reserved_tag_key_is_protected():
    value = {TAG: "tuple", "items": [1]}  # adversarial: looks like a tag
    decoded = from_jsonable(json.loads(json.dumps(to_jsonable(value))))
    assert decoded == value


def test_unsupported_value_raises_codec_error():
    with pytest.raises(CodecError):
        to_jsonable(object())


def test_unknown_tag_raises_codec_error():
    with pytest.raises(CodecError):
        from_jsonable({TAG: "no-such-tag"})


def test_lossy_trace_codec_still_stringifies():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    assert payload_to_jsonable({"k": Opaque()}) == {"k": {"__repr__": "<opaque>"}}
    assert payload_to_jsonable((1, 2)) == [1, 2]  # tuples flatten, lossy
