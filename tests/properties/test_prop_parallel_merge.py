"""Property: the parallel merge is worker-count invariant.

The sharded explorer's contract is that worker count is an
implementation detail: for any ``(seed, budget, order, mutation)``, the
parent's canonical-order merge produces the same exploration at ``-j 2``
as the in-process ``-j 1`` path — same schedule count, same dedup
decisions, same violation (or none), same found-by attribution. The
worker shards pre-dedup against local fingerprint tables and lease
boundaries chop the task stream differently run to run, so this property
is exactly the claim that none of that machinery can leak into results.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    budget=st.integers(min_value=5, max_value=40),
    order=st.sampled_from(["dfs", "level"]),
    mutation=st.sampled_from([None, "late-halt", "skip-forward"]),
)
def test_two_workers_merge_exactly_like_one(seed, budget, order, mutation):
    runs = [
        explore_parallel(
            scenarios()["token_ring"], budget=budget, seed=seed,
            jobs=jobs, order=order, mutation=mutation,
        )
        for jobs in (1, 2)
    ]
    sequential, parallel = runs
    assert parallel.schedules_run == sequential.schedules_run
    assert parallel.inconclusive_runs == sequential.inconclusive_runs
    assert parallel.deduped_nodes == sequential.deduped_nodes
    assert parallel.distinct_states == sequential.distinct_states
    assert parallel.dropped_nodes == sequential.dropped_nodes
    assert parallel.found_by == sequential.found_by
    if sequential.violation is None:
        assert parallel.violation is None
    else:
        assert parallel.violation is not None
        assert list(parallel.violation.record.decisions) == \
            list(sequential.violation.record.decisions)
        assert [v.invariant for v in parallel.violation.violations] == \
            [v.invariant for v in sequential.violation.violations]
