"""Property: channels deliver in FIFO order under any latency model."""

import random

from hypothesis import given, settings, strategies as st

from repro.network.channel import Channel
from repro.network.latency import ExponentialLatency, FixedLatency, SpikeLatency, UniformLatency
from repro.network.message import MessageKind
from repro.simulation.kernel import SimulationKernel
from repro.util.ids import ChannelId, SequenceGenerator

latency_models = st.one_of(
    st.floats(0.01, 10.0).map(FixedLatency),
    st.tuples(st.floats(0.01, 1.0), st.floats(1.0, 20.0)).map(
        lambda pair: UniformLatency(pair[0], pair[1])
    ),
    st.floats(0.05, 5.0).map(lambda m: ExponentialLatency(mean=m)),
    st.floats(0.0, 1.0).map(
        lambda p: SpikeLatency(base=0.2, spike=30.0, spike_probability=p)
    ),
)


@given(
    model=latency_models,
    kinds=st.lists(
        st.sampled_from([MessageKind.USER, MessageKind.HALT_MARKER,
                         MessageKind.SNAPSHOT_MARKER]),
        min_size=1, max_size=60,
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=150, deadline=None)
def test_fifo_for_any_latency_and_traffic_mix(model, kinds, seed):
    kernel = SimulationKernel()
    received = []
    channel = Channel(
        channel_id=ChannelId("a", "b"),
        kernel=kernel,
        user_rng=random.Random(f"{seed}u"),
        control_rng=random.Random(f"{seed}c"),
        sequences=SequenceGenerator(start=1),
        latency=model,
    )
    channel.connect(received.append)
    for index, kind in enumerate(kinds):
        channel.send(kind, index)
    kernel.run()
    # Delivery preserves send order regardless of individual draws,
    # including markers interleaved with user traffic (§2.1's FIFO channel).
    assert [env.payload for env in received] == list(range(len(kinds)))
    assert channel.stats.delivered == len(kinds)
    assert channel.in_flight == []


@given(
    delays=st.lists(st.floats(0.01, 100.0), min_size=2, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_arrival_times_strictly_increase(delays):
    kernel = SimulationKernel()
    arrivals = []

    class Scripted:
        """Latency model replaying a fixed list of draws."""

        def __init__(self, values):
            self.values = list(values)

        def sample(self, rng):
            return self.values.pop(0)

    channel = Channel(
        channel_id=ChannelId("a", "b"),
        kernel=kernel,
        user_rng=random.Random(0),
        control_rng=random.Random(1),
        sequences=SequenceGenerator(start=1),
        latency=Scripted(delays),
    )
    channel.connect(lambda env: arrivals.append(kernel.now))
    for i in range(len(delays)):
        channel.send(MessageKind.USER, i)
    kernel.run()
    assert all(a < b for a, b in zip(arrivals, arrivals[1:]))
