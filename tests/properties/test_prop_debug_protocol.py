"""Protocol conformance for the debug control plane, property-tested.

The server promise under test (mirroring ``test_wire_protocol.py`` for the
cluster protocol): for *any* frame a client can deliver — arbitrary JSON,
arbitrary ops, arbitrary field soup — :meth:`DebuggerService.handle`
returns exactly one JSON-serializable reply object with a boolean ``ok``,
errors collapsed to one line, and never raises. A shared live service also
proves the session table stays coherent under adversarial traffic.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.debugger import DebuggerService, DESSurface, DebugSession, LiveTarget
from repro.debugger.service import COMMANDS
from repro.workloads import token_ring


def make_service():
    topo, processes = token_ring.build(n=3, max_hops=40)
    session = DebugSession(topo, processes, seed=0)
    return DebuggerService(LiveTarget(DESSurface(session)))


#: One service shared across examples — closer to reality (one server,
#: adversarial frame soup from many clients) and much faster than a
#: cluster per example. Nothing here halts the DES, so examples are
#: independent.
SERVICE = make_service()

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
    st.text(max_size=20),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=8,
)

ops = st.one_of(
    st.sampled_from(sorted(COMMANDS)),
    st.text(max_size=12),
    json_scalars,
)

#: Field names a real client would send, plus arbitrary junk.
field_names = st.one_of(
    st.sampled_from([
        "session", "label", "predicate", "bp_id", "process", "channel",
        "timeout", "generation", "halt", "allow_partial",
    ]),
    st.text(max_size=8),
)

request_frames = st.one_of(
    json_values,
    st.fixed_dictionaries(
        {"op": ops},
        optional={name: json_values for name in
                  ["session", "predicate", "bp_id", "process", "timeout",
                   "generation", "label"]},
    ),
    st.dictionaries(field_names, json_values, max_size=5),
)


def assert_valid_reply(reply):
    assert isinstance(reply, dict)
    assert isinstance(reply.get("ok"), bool)
    json.dumps(reply)  # the reply must survive the wire codec
    if not reply["ok"]:
        assert isinstance(reply["error"], str) and reply["error"]
        assert "\n" not in reply["error"] and "\r" not in reply["error"]


@settings(max_examples=300, deadline=None)
@given(request_frames)
def test_any_frame_gets_exactly_one_wellformed_reply(frame):
    assert_valid_reply(SERVICE.handle(frame))


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=20), json_values)
def test_unknown_ops_never_crash_or_attach(op, session):
    before = SERVICE.session_count()
    reply = SERVICE.handle({"op": op, "session": session})
    assert_valid_reply(reply)
    if op not in ("attach",):
        assert SERVICE.session_count() == before


@settings(max_examples=150, deadline=None)
@given(st.lists(request_frames, min_size=1, max_size=6))
def test_frame_sequences_leave_the_table_coherent(frames):
    """Interleaved garbage and real commands: every attach is answerable,
    every reply well-formed, and the table only holds sessions that were
    actually attached."""
    service = make_service()
    attached = []
    for frame in frames:
        reply = service.handle(frame)
        assert_valid_reply(reply)
        if (
            isinstance(frame, dict)
            and frame.get("op") == "attach"
            and reply["ok"]
        ):
            attached.append(reply["session"])
    assert service.session_count() <= len(attached)
    for sid in attached:
        reply = service.handle({"op": "ping", "session": sid})
        assert_valid_reply(reply)


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=40))
def test_arbitrary_predicates_never_crash_break_set(predicate):
    service = SERVICE
    sid = service.handle({"op": "attach"})["session"]
    reply = service.handle(
        {"op": "break-set", "session": sid, "predicate": predicate}
    )
    assert_valid_reply(reply)
    service.handle({"op": "detach", "session": sid})
    if reply["ok"]:
        # Parsed predicates land in the registry; clean up for other runs.
        service.registry.clear(reply["bp_id"])


@settings(max_examples=100, deadline=None)
@given(st.sampled_from(sorted(COMMANDS)), json_values)
def test_real_ops_with_garbage_sessions_reply_stale(op, session):
    """Every session-scoped op rejects a bogus session id with ok=false
    (attach/help/sessions are table-level and exempt)."""
    if op in ("attach", "help", "sessions"):
        return
    reply = SERVICE.handle({"op": op, "session": session})
    assert_valid_reply(reply)
    assert reply["ok"] is False
