"""Property: vector clocks decide happened-before *exactly*.

We generate random message-passing histories in a tiny abstract model,
track ground-truth causal history sets by construction, and demand that
vector-clock comparison agrees with set membership on every event pair.
This is the foundation every oracle in the library leans on.
"""

from hypothesis import given, settings, strategies as st

from repro.events.clocks import VectorClock, concurrent, vector_less

N_PROCS = 3

# An op is either a local event at p, or a send p->q, or "deliver the next
# queued message on q's channel from p" (skipped when the queue is empty).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("local"), st.integers(0, N_PROCS - 1)),
        st.tuples(
            st.just("send"),
            st.integers(0, N_PROCS - 1),
            st.integers(0, N_PROCS - 1),
        ),
        st.tuples(
            st.just("recv"),
            st.integers(0, N_PROCS - 1),
            st.integers(0, N_PROCS - 1),
        ),
    ),
    min_size=1,
    max_size=40,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_vector_comparison_equals_causal_history(script):
    clocks = [VectorClock(i, N_PROCS) for i in range(N_PROCS)]
    # queues[(src, dst)] = FIFO of (vector-at-send, history-at-send)
    queues = {}
    last_event_at = [None] * N_PROCS  # event id of proc's latest event
    events = []  # (vector, history frozenset, own id)

    def record(proc, vector, extra_history=frozenset()):
        history = set(extra_history)
        if last_event_at[proc] is not None:
            prev_id = last_event_at[proc]
            history |= events[prev_id][1] | {prev_id}
        eid = len(events)
        events.append((vector, frozenset(history), eid))
        last_event_at[proc] = eid

    for op in script:
        if op[0] == "local":
            proc = op[1]
            record(proc, clocks[proc].tick())
        elif op[0] == "send":
            src, dst = op[1], op[2]
            if src == dst:
                continue
            vector = clocks[src].tick()
            record(src, vector)
            eid = len(events) - 1
            queues.setdefault((src, dst), []).append(
                (vector, events[eid][1] | {eid})
            )
        else:  # recv
            src, dst = op[1], op[2]
            queue = queues.get((src, dst), [])
            if not queue:
                continue
            message_vector, message_history = queue.pop(0)
            vector = clocks[dst].merge(message_vector)
            record(dst, vector, extra_history=message_history)

    for a_vector, a_history, a_id in events:
        for b_vector, b_history, b_id in events:
            if a_id == b_id:
                continue
            causally_before = a_id in b_history
            assert vector_less(a_vector, b_vector) == causally_before, (
                f"vector order disagrees with causality for {a_id}->{b_id}"
            )
            if not causally_before and a_id not in b_history and b_id not in a_history:
                assert concurrent(a_vector, b_vector) == (
                    b_id not in a_history and a_id not in b_history
                )
