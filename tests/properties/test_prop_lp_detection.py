"""Property: LP detection is *sound* — every reported trail is a real,
term-matching happened-before chain in the ground-truth log.

Random linked predicates over the token ring and chatter workloads. The
detector may legitimately not fire (the chain never happened, or the
arming marker raced past the only occurrence); when it does fire, the
oracle must confirm the trail.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.breakpoints import BreakpointCoordinator
from repro.breakpoints.predicates import (
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
)
from repro.events.event import EventKind
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.workloads import chatter, token_ring

RING_TERMS = [
    SimplePredicate(process=f"p{i}", kind=EventKind.PROCEDURE_ENTRY,
                    detail="receive_token")
    for i in range(4)
] + [
    SimplePredicate(process=f"p{i}", kind=EventKind.SEND, detail="token")
    for i in range(4)
]

CHATTER_TERMS = [
    SimplePredicate(process=f"p{i}", kind=kind, detail="chat")
    for i in range(4)
    for kind in (EventKind.SEND, EventKind.RECEIVE)
]


def random_lp(draw_terms, indices, repeats):
    stages = []
    for stage_index in indices:
        terms = tuple({draw_terms[i % len(draw_terms)] for i in stage_index})
        # apply repeat to single-term stages only (multi-term repeat
        # semantics are per-term, keep simple here)
        stages.append(DisjunctivePredicate(terms=terms))
    lp = LinkedPredicate(stages=tuple(stages))
    del repeats
    return lp


@given(
    workload=st.sampled_from(["ring", "chatter"]),
    seed=st.integers(0, 5_000),
    stage_indices=st.lists(
        st.lists(st.integers(0, 7), min_size=1, max_size=2, unique=True),
        min_size=1, max_size=3,
    ),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_reported_trails_are_causal_chains(workload, seed, stage_indices):
    if workload == "ring":
        builder = lambda: token_ring.build(n=4, max_hops=40)
        terms = RING_TERMS
    else:
        builder = lambda: chatter.build(n=4, budget=20, seed=11)
        terms = CHATTER_TERMS
    lp = random_lp(terms, stage_indices, None)

    system = build_system(builder, seed)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint(lp)
    system.run_to_quiescence()

    by_eid = {e.eid: e for e in system.log}
    for hit in breakpoints.hits_for(lp_id):
        events = []
        for stage_hit in hit.trail:
            event = by_eid[stage_hit.eid]
            assert event.process == stage_hit.process
            # The matched term belongs to the right stage and matches.
            stage = lp.stages[stage_hit.stage_index]
            assert any(term.matches(event) for term in stage.terms)
            events.append(event)
        # Happened-before chain, strictly ordered.
        for a, b in zip(events, events[1:]):
            assert a.happened_before(b)
        # Completion implies the whole system halted (halting mode).
        assert system.all_user_processes_halted()
