"""Properties of the consistent-cut lattice over random executions."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import CutLattice
from repro.experiments import build_system, run_snapshot
from repro.workloads import chatter, token_ring


@given(seed=st.integers(0, 5_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_enumeration_matches_brute_force(seed):
    system = build_system(lambda: token_ring.build(n=3, max_hops=4), seed)
    system.run_to_quiescence()
    lattice = CutLattice(system.log, max_cuts=500_000)
    import itertools

    enumerated = set(lattice.enumerate_cuts())
    brute = {
        cut
        for cut in itertools.product(*(range(n + 1) for n in lattice.top))
        if lattice.is_consistent(cut)
    }
    assert enumerated == brute


@given(seed=st.integers(0, 5_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_enumerated_cut_has_no_orphans(seed):
    system = build_system(lambda: chatter.build(n=3, budget=4, seed=9), seed)
    system.run_to_quiescence()
    lattice = CutLattice(system.log, max_cuts=500_000)
    from repro.events.event import EventKind

    for cut in lattice.enumerate_cuts():
        # Recount directly from the events — independent of the lattice's
        # own prefix tables.
        for channel in lattice._send_prefix:
            src = lattice._index[channel.src]
            dst = lattice._index[channel.dst]
            sends = sum(
                1 for e in lattice._events[src][:cut[src]]
                if e.kind is EventKind.SEND and e.channel == channel
            )
            receives = sum(
                1 for e in lattice._events[dst][:cut[dst]]
                if e.kind is EventKind.RECEIVE and e.channel == channel
            )
            assert receives <= sends


@given(seed=st.integers(0, 5_000), trigger=st.integers(2, 10))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_snapshot_cut_always_in_lattice(seed, trigger):
    builder = lambda: chatter.build(n=3, budget=6, seed=2)
    system, _, state = run_snapshot(builder, seed, "p0", trigger)
    lattice = CutLattice(
        system.log, processes=sorted(state.processes), max_cuts=500_000
    )
    assert lattice.is_consistent(lattice.cut_of_state(state))
