"""Property: halting still yields consistent cuts on lossy networks.

The paper's Halting Algorithm is correct *given* §2.1's error-free FIFO
channels. These tests check the tentpole claim of the robustness layer:
with a :class:`~repro.faults.plan.FaultPlan` injecting frame loss and the
reliable-delivery layer re-establishing FIFO-exactly-once, halting (a)
still converges and (b) still produces a consistent cut — across loss
rates up to 50% and across structurally different workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.consistency import check_cut_consistency
from repro.core.api import build_workload
from repro.debugger.session import DebugSession
from repro.faults.plan import ChannelFaultSpec, FaultPlan

LOSS_LEVELS = [0.05, 0.2, 0.5]

WORKLOADS = {
    "echo": dict(n=4, seed=2),
    "pipeline": dict(stages=1, items=40),
    "token_ring": dict(n=4, max_hops=200, hold_time=0.5),
    "bank": dict(n=3, transfers=20),
}


def halt_under_loss(workload, params, loss, seed, halt_at=12.0, **plan_kwargs):
    topology, processes = build_workload(workload, **params)
    plan = FaultPlan(
        seed=seed,
        channel_defaults=ChannelFaultSpec(loss=loss, **plan_kwargs),
    )
    session = DebugSession(topology, processes, seed=seed,
                           fault_plan=plan, reliable=True)
    session.system.run(until=halt_at)
    session.halt()
    outcome = session.run(max_events=4_000_000)
    assert outcome.stopped, (
        f"halting did not converge on {workload} at loss={loss}"
    )
    state = session.global_state()
    verdict = check_cut_consistency(session.system.log, state)
    assert verdict.consistent, verdict.violations
    return session, state


@pytest.mark.parametrize("loss", LOSS_LEVELS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_halted_cut_consistent_under_loss(workload, loss):
    session, _state = halt_under_loss(workload, WORKLOADS[workload],
                                      loss, seed=31)
    if loss >= 0.2:
        # The wire really was hostile: losses happened and were recovered.
        total_frames_dropped = sum(
            c.stats.frames_dropped for c in session.system.channels()
        )
        assert total_frames_dropped > 0
        assert all(not c.failed for c in session.system.channels())


def test_loss_with_duplication_and_reorder():
    """The full fault cocktail at once, on the densest workload."""
    session, _state = halt_under_loss(
        "bank", WORKLOADS["bank"], loss=0.2, seed=13,
        duplicate=0.2, reorder=0.3,
    )
    stats = [c.stats for c in session.system.channels()]
    assert sum(s.duplicates_suppressed for s in stats) > 0


@given(seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_halted_cut_consistent_for_any_seed(seed):
    """Seed-randomised: fault pattern, latency draws, and halt timing all
    vary; consistency of the halted cut may not."""
    halt_under_loss("token_ring", WORKLOADS["token_ring"], loss=0.2,
                    seed=seed, halt_at=5.0 + (seed % 17))
