"""Property: Theorem 2 (S_h = S_r) over randomized runs, plus Theorem 1.

Each example draws a workload, a seed, a trigger point, and an initiator
set, runs the halting/snapshot twin executions, and checks exact
equivalence and cut consistency. This is experiment E2's property-test
form — the strongest statement the reproduction makes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import check_cut_consistency, states_equivalent
from repro.experiments import run_halting, run_snapshot
from repro.workloads import bank, chatter, token_ring

WORKLOADS = {
    "token_ring": (
        lambda: token_ring.build(n=4, max_hops=25),
        ["p0", "p1", "p2", "p3"],
    ),
    "bank": (
        lambda: bank.build(n=3, transfers=15),
        ["branch0", "branch1", "branch2"],
    ),
    "chatter": (
        lambda: chatter.build(n=4, budget=15, seed=13),
        ["p0", "p1", "p2", "p3"],
    ),
}


@given(
    workload=st.sampled_from(sorted(WORKLOADS)),
    seed=st.integers(0, 10_000),
    trigger_event=st.integers(1, 25),
    trigger_index=st.integers(0, 3),
    extra_index=st.one_of(st.none(), st.integers(0, 3)),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_halted_equals_recorded(workload, seed, trigger_event,
                                trigger_index, extra_index):
    builder, names = WORKLOADS[workload]
    trigger_process = names[trigger_index % len(names)]
    extras = ()
    if extra_index is not None:
        extra = names[extra_index % len(names)]
        if extra != trigger_process:
            extras = (extra,)

    _, _, s_h = run_halting(
        builder, seed, trigger_process, trigger_event, extra_initiators=extras
    )
    snapshot_system, _, s_r = run_snapshot(
        builder, seed, trigger_process, trigger_event, extra_initiators=extras
    )

    report = states_equivalent(s_h, s_r)
    assert report.equivalent, "\n".join(report.differences)

    consistency = check_cut_consistency(snapshot_system.log, s_r)
    assert consistency.consistent, "\n".join(consistency.violations)


@given(seed=st.integers(0, 10_000), trigger_event=st.integers(1, 30))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bank_invariant_at_any_halt(seed, trigger_event):
    """Money is conserved at every halted cut, whatever the trigger."""
    system, coordinator, state = run_halting(
        lambda: bank.build(n=3, transfers=15), seed, "branch0", trigger_event
    )
    assert bank.total_money(state) == 3 * bank.INITIAL_BALANCE
    report = check_cut_consistency(system.log, state)
    assert report.consistent, "\n".join(report.violations)
    ids = {agent.last_halt_id for agent in coordinator.agents.values()}
    assert ids == {1}
