"""Property: the predicate DSL round-trips — parse(str(lp)) == lp."""

from hypothesis import given, settings, strategies as st

from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import (
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
)
from repro.events.event import EventKind

process_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in ("true", "false")
)
labels = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)

event_kinds = st.sampled_from([
    EventKind.SEND,
    EventKind.RECEIVE,
    EventKind.PROCEDURE_ENTRY,
    EventKind.PROCEDURE_EXIT,
    EventKind.TIMER,
    EventKind.PROCESS_CREATED,
    EventKind.PROCESS_TERMINATED,
    EventKind.CHANNEL_CREATED,
    EventKind.CHANNEL_DESTROYED,
])

state_values = st.one_of(
    st.integers(-10_000, 10_000),
    st.booleans(),
    # Bare words parse back as strings — except the boolean keywords.
    labels.filter(lambda s: s not in ("true", "false")),
)

state_queries = st.builds(
    StateQuery,
    key=labels,
    op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    value=state_values,
)

event_terms = st.builds(
    SimplePredicate,
    process=process_names,
    kind=event_kinds,
    detail=st.one_of(st.none(), labels),
    state=st.none(),
    repeat=st.integers(1, 5),
)

state_terms = st.builds(
    SimplePredicate,
    process=process_names,
    kind=st.just(EventKind.STATE_CHANGE),
    detail=st.none(),
    state=state_queries,
    repeat=st.integers(1, 3),
)

simple_terms = st.one_of(event_terms, state_terms)

disjunctions = st.lists(simple_terms, min_size=1, max_size=3).map(
    lambda terms: DisjunctivePredicate(terms=tuple(terms))
)

linked = st.lists(disjunctions, min_size=1, max_size=4).map(
    lambda stages: LinkedPredicate(stages=tuple(stages))
)


@given(lp=linked)
@settings(max_examples=300, deadline=None)
def test_parse_of_str_is_identity(lp):
    assert parse_predicate(str(lp)) == lp


@given(term=simple_terms)
@settings(max_examples=200, deadline=None)
def test_simple_term_roundtrip(term):
    parsed = parse_predicate(str(term))
    assert parsed.first.terms == (term,)
