"""Properties of state restoration across random halts and futures."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments import run_halting
from repro.halting import restore
from repro.network.latency import UniformLatency
from repro.workloads import bank, chatter


@given(
    halt_seed=st.integers(0, 3_000),
    future_seed=st.integers(0, 3_000),
    trigger=st.integers(2, 20),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_restored_bank_always_balances_and_finishes(halt_seed, future_seed, trigger):
    builder = lambda: bank.build(n=3, transfers=12)
    _, _, state = run_halting(builder, halt_seed, "branch0", trigger)
    topo, fresh = bank.build(n=3, transfers=12)
    system = restore(state, topo, fresh, seed=future_seed,
                     latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    balances = {
        name: system.state_of(name)["balance"]
        for name in system.user_process_names
    }
    assert bank.total_money(balances) == 3 * bank.INITIAL_BALANCE
    for name in system.user_process_names:
        assert system.state_of(name)["transfers_made"] == 12


@given(
    halt_seed=st.integers(0, 3_000),
    future_seed=st.integers(0, 3_000),
    trigger=st.integers(2, 15),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_restored_chatter_delivers_every_message(halt_seed, future_seed, trigger):
    builder = lambda: chatter.build(n=3, budget=10, seed=8)
    _, _, state = run_halting(builder, halt_seed, "p1", trigger)
    topo, fresh = chatter.build(n=3, budget=10, seed=8)
    system = restore(state, topo, fresh, seed=future_seed,
                     latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    sent = sum(system.state_of(n)["sent"] for n in system.user_process_names)
    received = sum(
        system.state_of(n)["received"] for n in system.user_process_names
    )
    assert sent == received == 3 * 10
    # Clocks continued monotonically from the capture.
    for name, snapshot in state.processes.items():
        final = system.controller(name).vector.snapshot()
        assert all(f >= c for f, c in zip(final, snapshot.vector))
