"""E19 (extension) — crash-recovery latency from consistent checkpoints.

Theorem 2 makes every consistent cut a valid recovery point; the
recovery supervisor turns that into an operational loop: checkpoint,
crash, rollback, relaunch. The number this experiment pins down is the
*recovery latency* — death detection to the cluster verifiably restored
— and its split:

* **teardown** — surviving children shut down, corpse reaped, sockets
  closed;
* **restart** — respawn all processes, TCP re-rendezvous, checkpoint
  restore (each child preloads its snapshot and re-sends pending
  channel traffic), go.

Workload: token_ring(n) under supervision; one checkpoint is taken,
then one member is SIGKILLed and the supervisor rolls the whole cluster
back (coordinated, Koo–Toueg style — restoring only the victim would
need message logging). Latency scales with cluster size mainly through
restart (more processes to spawn and more sockets to rendezvous).
"""

import statistics
import time

from bench_util import emit, emit_json, once
from repro.recovery.invariants import validator
from repro.recovery.supervisor import ClusterSupervisor

ROUNDS = 3
SIZES = (3, 6)
PARAMS = {"max_hops": 1_000_000, "hold_time": 0.2}


def run_recovery(n: int, seed: int, store_dir: str):
    """One checkpoint + one SIGKILL + one rollback; returns the event."""
    params = dict(PARAMS, n=n)
    sup = ClusterSupervisor(
        "token_ring", params, seed=seed, store=store_dir,
        validate=validator("token_ring", params),
    )
    with sup:
        time.sleep(0.4)
        saved = sup.checkpoint(timeout=15.0, probe_grace=3.0)
        assert saved is not None, "no checkpoint before the crash"
        victim = "p1"
        sup.session.kill(victim)
        deadline = time.time() + 10.0
        while sup.session.alive(victim) and time.time() < deadline:
            time.sleep(0.02)
        event = sup.recover()
        assert event.victims == (victim,)
        assert event.checkpoint_seq == saved[0]
        assert sup.poll() == ()
        # The restored cluster is live: a further checkpoint succeeds,
        # proving re-rendezvous + restore actually completed.
        saved2 = sup.checkpoint(timeout=15.0, probe_grace=3.0)
        assert saved2 is not None
    return event


def run_sweep(tmp_dir: str):
    rows = []
    raw = {}
    for n in SIZES:
        teardown, restart, total = [], [], []
        for i in range(ROUNDS):
            event = run_recovery(n, seed=30 + i,
                                 store_dir=f"{tmp_dir}/n{n}-r{i}")
            teardown.append(event.teardown_s)
            restart.append(event.restart_s)
            total.append(event.total_s)
        raw[f"token_ring({n})"] = {
            "teardown_s": teardown,
            "restart_s": restart,
            "total_s": total,
        }
        rows.append((
            f"token_ring({n})",
            f"{statistics.median(teardown) * 1000:.1f}ms",
            f"{statistics.median(restart) * 1000:.1f}ms",
            f"{min(total) * 1000:.1f}ms",
            f"{statistics.median(total) * 1000:.1f}ms",
            f"{max(total) * 1000:.1f}ms",
        ))
    return rows, raw


def test_e19_recovery(benchmark, tmp_path):
    rows, raw = run_sweep(str(tmp_path))
    emit_json("e19_recovery", {
        "rounds": ROUNDS,
        "sizes": list(SIZES),
        "latency_seconds": raw,
    }, name="BENCH_E19")
    emit(
        "e19_recovery",
        "E19 — recovery latency: detection -> teardown -> respawn + "
        f"re-rendezvous + restore ({ROUNDS} rounds each)",
        ["workload", "teardown (med)", "restart (med)",
         "total min", "total median", "total max"],
        rows,
    )
    once(benchmark, run_recovery, 3, 42, str(tmp_path / "bench"))
