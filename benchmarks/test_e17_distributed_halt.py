"""E17 (extension) — the Halting Algorithm on real processes and sockets.

The distributed backend replaces the simulated kernel with OS processes
and TCP, yet runs the identical agents. Two questions decide whether the
reproduction survives contact with a real substrate:

* **messages-to-halt** — the algorithm's cost model says one halt
  generation costs exactly ``|channels|`` markers (each process forwards
  on every outgoing channel, once). That count must be substrate-
  independent: equal on the threaded backend and across real sockets.
* **halt-convergence latency** — wall-clock from initiation at ``d`` to
  every process verifiably frozen. Real processes pay real scheduling
  and syscall costs; the table quantifies the premium over in-process
  threads on the same machine.

Workload: token_ring(8), the paper's canonical strongly-connected case.
"""

import statistics
import time

from bench_util import emit, once
from repro.core.api import build_workload
from repro.debugger.threaded_session import ThreadedDebugSession
from repro.distributed.session import DistributedDebugSession

PARAMS = {"n": 8, "max_hops": 1_000_000, "hold_time": 0.5}
ROUNDS = 3


def run_threaded(seed: int):
    topology, processes = build_workload("token_ring", **PARAMS)
    session = ThreadedDebugSession(topology, processes, seed=seed,
                                   time_scale=0.02)
    with session:
        time.sleep(0.4)
        started = time.perf_counter()
        report = session.halt_with_watchdog(timeout=20.0, probe_grace=5.0)
        latency = time.perf_counter() - started
        assert report.complete, report.describe()
        markers = session.system.message_totals().get("halt_marker", 0)
        channels = len(session.system.topology.channels)
    return markers, channels, latency


def run_distributed(seed: int):
    session = DistributedDebugSession("token_ring", PARAMS, seed=seed)
    with session:
        time.sleep(0.4)
        started = time.perf_counter()
        report = session.halt_with_watchdog(timeout=20.0, probe_grace=5.0)
        latency = time.perf_counter() - started
        assert report.complete, report.describe()
        channels = len(session.spec.channels)
    markers = session.cluster_message_totals().get("halt_marker", 0)
    return markers, channels, latency


def run_sweep():
    rows = []
    marker_counts = {}
    for backend, runner in (("threaded", run_threaded),
                            ("distributed", run_distributed)):
        latencies = []
        for i in range(ROUNDS):
            markers, channels, latency = runner(seed=20 + i)
            # The cost model: one marker per channel per generation.
            assert markers == channels, (backend, markers, channels)
            marker_counts[backend] = markers
            latencies.append(latency)
        rows.append((
            backend,
            channels,
            marker_counts[backend],
            f"{min(latencies) * 1000:.1f}ms",
            f"{statistics.median(latencies) * 1000:.1f}ms",
            f"{max(latencies) * 1000:.1f}ms",
        ))
    # Substrate independence, the headline claim.
    assert marker_counts["threaded"] == marker_counts["distributed"]
    return rows


def test_e17_distributed_halt(benchmark):
    rows = run_sweep()
    emit(
        "e17_distributed_halt",
        "E17 — halt convergence on token_ring(8): threads vs OS processes + TCP "
        f"({ROUNDS} rounds each)",
        ["backend", "channels", "halt markers", "min", "median", "max"],
        rows,
    )
    once(benchmark, run_distributed, 42)
