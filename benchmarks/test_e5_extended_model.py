"""E5 — the extended model halts every topology; latency/messages vs size.

Sweep: topology family × process count. Every row must reach 100% halted
(Fig. 3's strong-connectivity guarantee). Halt latency stays flat-ish with
n (the debugger is one hop from everyone and marker floods are parallel);
control messages grow with the channel count.
"""

import pytest

from bench_util import emit, once
from repro.analysis import message_overhead
from repro.debugger import DebugSession
from repro.network.latency import UniformLatency
from repro.network.topology import complete, pipeline, ring, star
from repro.workloads.chatter import ChatterProcess


def build_topology(kind, n):
    names = [f"p{i}" for i in range(n)]
    if kind == "ring":
        return ring(names)
    if kind == "star":
        return star(names[0], names[1:])
    if kind == "complete":
        return complete(names)
    if kind == "pipeline":
        return pipeline(names)
    raise ValueError(kind)


def run_one(kind, n, seed=3):
    topo = build_topology(kind, n)
    processes = {name: ChatterProcess(budget=30, tick=0.6) for name in topo.processes}
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    session.set_breakpoint("state(sent>=5)@p0")
    outcome = session.run()
    halted = sum(
        1 for name in session.system.user_process_names
        if session.system.controller(name).halted
    )
    total = len(session.system.user_process_names)
    if not outcome.stopped:
        return halted, total, 0.0, 0.0
    state = session.global_state()
    times = [s.time for s in state.processes.values()]
    span = max(times) - min(times)
    overhead = message_overhead(session.system)
    return halted, total, span, overhead.control_per_user


def run_sweep():
    rows = []
    for kind in ("ring", "star", "complete", "pipeline"):
        for n in (4, 8, 16, 32):
            halted, total, span, control_ratio = run_one(kind, n)
            rows.append((
                kind, n, f"{halted}/{total}",
                round(span, 2), round(control_ratio, 2),
            ))
    return rows


def test_e5_extended_model(benchmark):
    rows = run_sweep()
    emit(
        "e5_extended_model",
        "E5 — extended model: halt coverage, halt span, control overhead",
        ["topology", "n", "halted", "halt span", "ctrl msgs / user msg"],
        rows,
    )
    for row in rows:
        n = row[1]
        assert row[2] == f"{n}/{n}", f"{row[0]} n={n} did not fully halt"
    once(benchmark, run_one, "ring", 8)
