"""E9 — naive broadcast halting vs the marker algorithm (§4's IDD critique).

The same interesting point triggers both mechanisms. Metrics:

* **drift** — user events executed past the reference cut (the snapshot at
  the trigger). Markers: exactly 0 (Theorem 2). Naive: grows with the
  notify+broadcast round-trip × message rate, i.e. with control latency.
* **indeterminable channels** — buffered channels without a closing marker.
  Markers: 0. Naive: every non-empty channel.

Expected shape: a monotone drift column for naive, a zero column for
markers, mirroring the paper's argument that untimely halting destroys the
evidence the programmer wanted to inspect.
"""

import pytest

from bench_util import emit, once
from repro.analysis import drift_between
from repro.baselines.naive_halt import NaiveHaltCoordinator
from repro.debugger.agent import DebuggerProcess
from repro.experiments import install_trigger, run_halting, run_snapshot
from repro.network.latency import FixedLatency, UniformLatency
from repro.runtime.system import System
from repro.workloads import chatter


def fast_chatter():
    return chatter.build(n=5, budget=80, tick=0.25, seed=3)


def naive_run(control_latency, seed=3):
    topo, processes = fast_chatter()
    extended = topo.with_debugger("d")
    staffed = dict(processes)
    staffed["d"] = DebuggerProcess()
    # Control (monitor) channels get the swept latency; user channels the
    # standard one. This models a far-away central debugger console.
    control_channels = {
        channel: FixedLatency(control_latency)
        for channel in extended.channels
        if "d" in (channel.src, channel.dst)
    }
    system = System(extended, staffed, seed=seed,
                    latency=UniformLatency(0.2, 0.8),
                    channel_latencies=control_channels,
                    never_halt={"d"})
    coordinator = NaiveHaltCoordinator(system, monitor="d")
    install_trigger(system, "p1", 10, lambda: coordinator.trip("p1"))
    system.run_to_quiescence()
    state = coordinator.collect()
    indeterminable = sum(
        1 for cs in state.channels.values() if cs.messages and not cs.complete
    )
    return state, indeterminable


def run_sweep(latencies=(0.5, 2.0, 5.0, 10.0)):
    reference_builder = fast_chatter
    _, _, reference = run_snapshot(reference_builder, 3, "p1", 10,
                                   latency=UniformLatency(0.2, 0.8))
    _, _, marker_state = run_halting(reference_builder, 3, "p1", 10,
                                     latency=UniformLatency(0.2, 0.8))
    marker_drift = drift_between(reference, marker_state)

    rows = []
    for control_latency in latencies:
        naive_state, indeterminable = naive_run(control_latency)
        naive_drift = drift_between(reference, naive_state)
        rows.append((
            control_latency,
            naive_drift.total, naive_drift.maximum, indeterminable,
            marker_drift.total,
            sum(1 for cs in marker_state.channels.values()
                if cs.messages and not cs.complete),
        ))
    return rows


def test_e9_naive_vs_marker(benchmark):
    rows = run_sweep()
    emit(
        "e9_naive_vs_marker",
        "E9 — state drift past the breakpoint: naive broadcast vs markers",
        ["ctrl latency", "naive drift", "naive max drift",
         "naive open chans", "marker drift", "marker open chans"],
        rows,
    )
    drifts = [row[1] for row in rows]
    assert all(row[4] == 0 for row in rows), "marker halting must have zero drift"
    assert all(row[5] == 0 for row in rows), "marker channels must be closed"
    assert all(d > 0 for d in drifts), "naive halting should drift"
    assert drifts[-1] > drifts[0], "drift should grow with control latency"
    assert all(row[3] > 0 for row in rows), "naive channels are indeterminable"
    once(benchmark, naive_run, 2.0)
