"""E11 — §5's "minimal change" claim, quantified.

How much debugging-system traffic does each facility inject, relative to
the program's own traffic?

* halting: one marker per channel per halt generation — a one-shot cost
  independent of run length;
* LP detection: one predicate marker per stage transition (plus relays) —
  proportional to breakpoint count, not traffic;
* the full debug session: adds arming, notifications, and state reports.

Expected shape: control/user ratios well below 1 for realistic run lengths
and shrinking as the run grows (the costs are per-halt, not per-message).
"""

import pytest

from bench_util import emit, once
from repro.analysis import message_overhead
from repro.breakpoints import BreakpointCoordinator
from repro.debugger import DebugSession
from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.network.latency import UniformLatency
from repro.workloads import chatter


def halting_only(budget, seed=4):
    system = build_system(lambda: chatter.build(n=5, budget=budget, seed=seed), seed)
    halting = HaltingCoordinator(system)
    install_trigger(system, "p0", budget, lambda: halting.initiate(["p0"]))
    system.run_to_quiescence()
    return message_overhead(system)


def breakpoint_run(budget, seed=4):
    system = build_system(lambda: chatter.build(n=5, budget=budget, seed=seed), seed)
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    breakpoints.set_breakpoint("send(chat)@p1 -> recv(chat)@p3 -> send(chat)@p2")
    system.run_to_quiescence()
    return message_overhead(system)


def session_run(budget, seed=4, observe=None):
    topo, processes = chatter.build(n=5, budget=budget, seed=seed)
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6), observe=observe)
    session.set_breakpoint(f"state(sent>={budget // 2})@p2")
    outcome = session.run()
    return session, outcome, message_overhead(session.system)


def run_sweep(budgets=(10, 20, 40, 80)):
    rows = []
    for budget in budgets:
        halt = halting_only(budget)
        lp = breakpoint_run(budget)
        _, _, sess = session_run(budget)
        rows.append((
            budget,
            halt.user_messages, halt.control_messages,
            round(halt.control_per_user, 3),
            round(lp.control_per_user, 3),
            round(sess.control_per_user, 3),
        ))
    return rows


def test_e11_overhead(benchmark):
    rows = run_sweep()
    emit(
        "e11_overhead",
        "E11 — debugging-system messages per user message",
        ["budget", "user msgs", "halt ctrl msgs",
         "halt ctrl/user", "LP ctrl/user", "session ctrl/user"],
        rows,
    )
    halt_ratios = [row[3] for row in rows]
    # The per-halt cost amortizes: ratio strictly falls as runs grow.
    assert halt_ratios == sorted(halt_ratios, reverse=True)
    assert halt_ratios[-1] < 0.5
    once(benchmark, halting_only, 20)


def test_e11_observability_overhead(benchmark):
    """The observe layer must not perturb the run it is measuring.

    Pull-style collection reads the runtime's own accounting at collect
    time, so an observed run and a bare run of the same seed must produce
    *identical* executions — same kernel event count, same message totals
    (far stronger than the <5% budget). The live registry must also agree
    with :func:`message_overhead` on exact per-kind counts, since both
    read the same channel counters.
    """
    import time as _time

    from repro.observe import Observability

    budget = 40
    t0 = _time.perf_counter()
    _, bare_outcome, bare = session_run(budget)
    bare_wall = _time.perf_counter() - t0

    observe = Observability()
    t0 = _time.perf_counter()
    session, obs_outcome, observed = session_run(budget, observe=observe)
    observed_wall = _time.perf_counter() - t0

    # Zero perturbation: the observed execution is the bare execution.
    assert obs_outcome.events_executed == bare_outcome.events_executed
    assert observed.by_kind == bare.by_kind

    # Exact agreement: registry counters == analysis.metrics.message_overhead.
    sent = session.observe.metrics.snapshot()["messages_sent_total"]
    registry_by_kind = {dict(labels)["kind"]: int(v) for labels, v in sent.items()}
    for kind, count in observed.by_kind.items():
        assert registry_by_kind.get(kind, 0) == count, (kind, registry_by_kind)

    ratio = observed_wall / max(bare_wall, 1e-9)
    emit(
        "e11_observe_overhead",
        "E11b — observability layer perturbation (pull collectors)",
        ["budget", "events bare", "events observed", "wall ratio"],
        [(budget, bare_outcome.events_executed,
          obs_outcome.events_executed, round(ratio, 2))],
    )
    once(benchmark, session_run, budget)
