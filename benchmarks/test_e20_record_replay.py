"""E20 (extension) — the cost of recording and the speed of replay.

The record/replay bridge only earns its keep if (a) the observe-mode
tap is cheap enough to leave on — the cluster must keep its throughput
while every user frame is copied into the trace — and (b) replaying a
recording into the DES is fast enough to run after every capture (the
``repro record`` CLI does exactly that before exiting 0). Two numbers:

* **capture throughput** — user messages per second a live token ring
  sustains in a fixed wall-clock window, with the recorder proxy on
  every user channel versus with no proxy at all (the tap adds one
  loopback hop plus an under-lock append per frame);
* **replay latency** — wall-clock for the full fidelity pipeline
  (guided reconstruction, scripted re-run, frame/halt-order/invariant
  comparison) on one recorded run.

Workload: token_ring(3) with a fast hold time, so the window carries
hundreds of messages rather than a handful.
"""

import statistics
import time

from bench_util import emit, once
from repro.distributed.session import DistributedDebugSession
from repro.record import FrameRecorder, record_run, replay_trace

PARAMS = {"n": 3, "max_hops": 1_000_000, "hold_time": 0.005}
WINDOW = 2.0
ROUNDS = 2


def capture_window(record: bool, seed: int):
    """One live run for WINDOW seconds; returns (user_msgs, frames, s)."""
    recorder = FrameRecorder() if record else None
    session = DistributedDebugSession(
        "token_ring", dict(PARAMS), seed=seed,
        frame_stager=recorder.stager if recorder else None,
    )
    try:
        with session:
            started = time.perf_counter()
            time.sleep(WINDOW)
            frames = recorder.frame_count() if recorder else 0
            elapsed = time.perf_counter() - started
            report = session.halt_with_watchdog(timeout=20.0,
                                                probe_grace=5.0)
            assert report.complete, report.describe()
        totals = session.cluster_message_totals()
    finally:
        if recorder is not None:
            recorder.close()
    return totals.get("user", 0), frames, elapsed


def test_e20_record_replay(benchmark):
    rows = []
    for label, record in (("capture, tap on", True),
                          ("capture, tap off", False)):
        msgs, frames, secs = [], [], []
        for round_ in range(ROUNDS):
            user, tapped, elapsed = capture_window(record, seed=round_)
            msgs.append(user)
            frames.append(tapped)
            secs.append(elapsed)
        mean_msgs = statistics.mean(msgs)
        mean_secs = statistics.mean(secs)
        mean_frames = statistics.mean(frames)
        rows.append((
            label,
            f"{mean_secs:.2f}",
            int(mean_msgs),
            f"{mean_msgs / mean_secs:.1f}",
            int(mean_frames) if record else "-",
            f"{mean_frames / mean_secs:.1f}" if record else "-",
        ))

    trace = record_run("token_ring",
                       {"n": 3, "max_hops": 1_000_000, "hold_time": 0.02},
                       seed=7, min_frames=30)
    started = time.perf_counter()
    report, result = replay_trace(trace)
    replay_secs = time.perf_counter() - started
    once(benchmark, replay_trace, trace)
    assert report.fidelity_ok, report.summary()
    assert not result.violated
    decisions = len(report.decisions)
    rows.append((
        "replay, DES (fidelity pipeline)",
        f"{replay_secs:.3f}",
        decisions,
        f"{decisions / replay_secs:.1f}",
        trace.user_frame_count(),
        "FAITHFUL",
    ))

    emit(
        "E20",
        "E20 — recorder throughput and replay-fidelity latency "
        f"(token_ring(3), {WINDOW:.0f}s windows, {ROUNDS} rounds)",
        ["configuration", "seconds", "user_msgs/decisions", "per_second",
         "frames", "frames/s or verdict"],
        rows,
    )
