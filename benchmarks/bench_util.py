"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index: it computes the metric table, prints it (visible with ``pytest -s``),
and appends it to ``benchmarks/out/<experiment>.txt`` so the numbers quoted
in EXPERIMENTS.md can be re-derived at any time. The pytest-benchmark timer
wraps one representative run so ``--benchmark-only`` also reports wall-clock
cost.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    rendered: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def emit(experiment: str, title: str, headers: Sequence[str],
         rows: Iterable[Sequence[object]]) -> str:
    """Print the table and persist it under benchmarks/out/."""
    table = format_table(title, headers, rows)
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(table + "\n")
    return table


def once(benchmark, fn, *args, **kwargs):
    """Time one representative run without re-running an expensive sweep."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=3, warmup_rounds=0)
