"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index: it computes the metric table, prints it (visible with ``pytest -s``),
and appends it to ``benchmarks/out/<experiment>.txt`` so the numbers quoted
in EXPERIMENTS.md can be re-derived at any time. The pytest-benchmark timer
wraps one representative run so ``--benchmark-only`` also reports wall-clock
cost.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    rendered: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def emit(experiment: str, title: str, headers: Sequence[str],
         rows: Iterable[Sequence[object]]) -> str:
    """Print the table and persist it (text + JSON) under benchmarks/out/.

    The JSON twin (``BENCH_<EXPERIMENT>.json``) carries the same rows as
    a list of header-keyed dicts so downstream tooling never has to
    scrape the aligned text table.
    """
    rows = [list(row) for row in rows]
    table = format_table(title, headers, rows)
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(table + "\n")
    emit_json(experiment, {
        "title": title,
        "headers": list(headers),
        "rows": [
            {str(h): _jsonable(cell) for h, cell in zip(headers, row)}
            for row in rows
        ],
    })
    return table


def _jsonable(value: object) -> object:
    """Pass JSON-native scalars through; stringify everything else."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def emit_json(experiment: str, payload: Dict[str, Any],
              name: Optional[str] = None) -> str:
    """Write ``benchmarks/out/BENCH_<EXPERIMENT>.json`` and return its path.

    ``payload`` is augmented with the experiment key; pass ``name`` to
    override the file stem (defaults to the upper-cased experiment).
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    stem = name if name is not None else f"BENCH_{experiment.upper()}"
    path = os.path.join(OUT_DIR, f"{stem}.json")
    with open(path, "w", encoding="utf-8") as fp:
        json.dump({"experiment": experiment, **payload}, fp,
                  indent=2, sort_keys=True)
        fp.write("\n")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Time one representative run without re-running an expensive sweep."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=3, warmup_rounds=0)
