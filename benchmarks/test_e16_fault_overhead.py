"""E16 — what robustness costs.

The reliable-delivery layer buys back §2.1's channel guarantees over a
faulty wire; this experiment prices that purchase. One workload
(token_ring) is halted mid-run under increasing frame loss, and we count
what the transport had to do: frames retransmitted per message delivered,
acks emitted, kernel events executed, and how long (virtual time) the
halt took to converge.

Expected shape:

* at loss 0 the reliable layer costs exactly one ack per message and
  zero retransmits — the protocol is quiet when the wire is clean;
* retransmits/message grows roughly like loss/(1-loss) (each frame is an
  independent Bernoulli trial), so ~0.05 at 5% loss, ~1 at 50%;
* halting always converges with a consistent cut (asserted, not tabled —
  the correctness claim lives in the tier-1 suite; here we price it).
"""

import pytest

from bench_util import emit, once
from repro.analysis.consistency import check_cut_consistency
from repro.core.api import build_workload
from repro.debugger.session import DebugSession
from repro.faults.plan import FaultPlan
from repro.network.latency import UniformLatency


def halt_run(loss, reliable, seed=16, observe=None):
    topology, processes = build_workload("token_ring", n=4,
                                         max_hops=600, hold_time=0.5)
    plan = FaultPlan.lossy(loss, seed=seed) if loss > 0.0 else None
    session = DebugSession(topology, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6),
                           fault_plan=plan, reliable=reliable,
                           observe=observe)
    session.system.run(until=20.0)
    halt_started = session.system.kernel.now
    session.halt()
    outcome = session.run(max_events=6_000_000)
    stats = [channel.stats for channel in session.system.channels()]
    return {
        "session": session,
        "stopped": outcome.stopped,
        "halt_time": session.system.kernel.now - halt_started,
        "events": outcome.events_executed,
        "delivered": sum(s.delivered for s in stats),
        "frames_dropped": sum(s.frames_dropped for s in stats),
        "retransmits": sum(s.retransmits for s in stats),
        "acks": sum(s.acks_sent for s in stats),
    }


def run_sweep(losses=(0.0, 0.05, 0.2, 0.5)):
    rows = []
    for loss in losses:
        run = halt_run(loss, reliable=True)
        assert run["stopped"], f"halt did not converge at loss={loss}"
        state = run["session"].global_state()
        assert check_cut_consistency(run["session"].system.log, state).consistent
        delivered = max(run["delivered"], 1)
        rows.append((
            loss,
            run["delivered"],
            run["frames_dropped"],
            run["retransmits"],
            round(run["retransmits"] / delivered, 3),
            run["acks"],
            run["events"],
            round(run["halt_time"], 1),
        ))
    return rows


def test_e16_fault_overhead(benchmark):
    baseline = halt_run(0.0, reliable=False)
    rows = run_sweep()
    emit(
        "e16_fault_overhead",
        "E16 — reliable-delivery cost of halting under frame loss "
        f"(raw-wire baseline: {baseline['events']} events, "
        f"halt in {baseline['halt_time']:.1f}t)",
        ["loss", "delivered", "frames lost", "retransmits",
         "rtx/msg", "acks", "events", "halt t"],
        rows,
    )
    by_loss = {row[0]: row for row in rows}
    # Clean wire: the protocol is quiet — no retransmits, one ack per frame.
    assert by_loss[0.0][3] == 0
    # Cost is monotone in loss and stays sane: even at 50% loss the
    # transport needs fewer than 3 transmissions per delivered message.
    rtx_ratios = [row[4] for row in rows]
    assert rtx_ratios == sorted(rtx_ratios)
    assert rtx_ratios[-1] < 3.0
    once(benchmark, halt_run, 0.2, True)


def test_e16_live_metrics_agree(benchmark):
    """The live registry prices the same purchase as the channel stats.

    An observed run at 20% loss: every transport counter exposed through
    :mod:`repro.observe` (retransmits, acks, frame drops, deliveries) must
    equal the sum over ``channel.stats`` — they are the same accounting,
    read through two surfaces. The tracer must also have recorded
    retransmission episodes whenever retransmits happened.
    """
    from repro.observe import Observability

    observe = Observability()
    run = halt_run(0.2, reliable=True, observe=observe)
    assert run["stopped"]

    snap = observe.metrics.snapshot()

    def total(family):
        return sum(int(v) for v in snap.get(family, {}).values())

    assert total("channel_retransmits_total") == run["retransmits"]
    assert total("channel_frames_dropped_total") == run["frames_dropped"]
    assert total("channel_messages_delivered_total") == run["delivered"]
    acks_sent = sum(
        int(v) for labels, v in snap["channel_acks_total"].items()
        if dict(labels)["result"] == "sent"
    )
    assert acks_sent == run["acks"]

    episodes = observe.tracer.spans("retransmission")
    if run["retransmits"]:
        assert episodes, "retransmits occurred but no episode spans recorded"
    emit(
        "e16_live_metrics",
        "E16b — live registry vs channel.stats (20% loss, reliable)",
        ["retransmits", "acks", "frames lost", "episodes traced"],
        [(run["retransmits"], run["acks"], run["frames_dropped"],
          len(episodes))],
    )
    once(benchmark, halt_run, 0.0, True)
