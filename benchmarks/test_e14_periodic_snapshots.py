"""E14 (extension) — periodic snapshots: stable-property detection cost.

C&L's motivating application, measured: a monitor snapshots the system
every ``interval`` virtual-time units, auditing an invariant (money
conservation) at every generation and waiting for the stable property
*terminated*. Sweep the interval:

* detection lag (true quiescence → confirmed by a snapshot) grows with the
  interval (you can't learn it faster than you look);
* marker overhead per user message falls with the interval;
* the invariant holds at every generation (Theorem 1 applied repeatedly);
* termination is never reported early (stability).
"""

import pytest

from bench_util import emit, once
from repro.analysis import message_overhead
from repro.experiments import build_system
from repro.snapshot import SnapshotMonitor, terminated
from repro.workloads import bank


def true_quiescence_time(seed):
    """Ground truth: run the identical system unobserved to completion."""
    system = build_system(lambda: bank.build(n=3, transfers=20), seed)
    system.run_to_quiescence()
    return system.kernel.now


def run_one(interval, seed=3):
    system = build_system(lambda: bank.build(n=3, transfers=20), seed)
    monitor = SnapshotMonitor(
        system, interval=interval,
        invariants={
            "money": lambda s: bank.total_money(s) == 3 * bank.INITIAL_BALANCE
        },
        stable=terminated,
    )
    records = monitor.run()
    overhead = message_overhead(system)
    return monitor, records, overhead


def run_sweep(intervals=(2.0, 5.0, 10.0, 20.0), seed=3):
    truth = true_quiescence_time(seed)
    rows = []
    for interval in intervals:
        monitor, records, overhead = run_one(interval, seed)
        detected = monitor.detected_at
        rows.append((
            interval,
            len(records),
            len(monitor.invariant_failures()),
            round(truth, 2),
            round(detected, 2) if detected else "never",
            round(detected - truth, 2) if detected else "-",
            round(overhead.control_per_user, 2),
        ))
    return rows


def test_e14_periodic_snapshots(benchmark):
    rows = run_sweep()
    emit(
        "e14_periodic_snapshots",
        "E14 — periodic snapshots: invariant audits + termination detection "
        "(bank n=3, 20 transfers)",
        ["interval", "snapshots", "invariant failures",
         "true quiescence", "detected at", "detection lag", "ctrl/user msgs"],
        rows,
    )
    for row in rows:
        interval, snapshots, failures, truth, detected, lag, overhead = row
        assert failures == 0
        assert detected != "never"
        assert detected >= truth, "termination reported before it was true!"
    # Shapes: lag grows with interval, overhead falls with it.
    lags = [row[5] for row in rows]
    overheads = [row[6] for row in rows]
    assert lags[0] <= lags[-1]
    assert overheads[0] >= overheads[-1]
    once(benchmark, run_one, 5.0)
