"""E3 — Fig. 2 vs Fig. 3: acyclic pipelines under basic vs extended model.

Sweep: pipeline length. Basic algorithm, consumer-initiated: only the
consumer halts (markers cannot travel upstream) — fraction halted is
1/(stages+2) and the producer finishes all its items. Extended model: 100%
halted, producer frozen far from completion.
"""

import pytest

from bench_util import emit, once
from repro.debugger import DebugSession
from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.network.latency import UniformLatency
from repro.workloads import pipeline

ITEMS = 60


def basic_run(stages, seed=1):
    topo, processes = pipeline.build(stages=stages, items=ITEMS)
    system = build_system(lambda: (topo, processes), seed)
    halting = HaltingCoordinator(system)
    install_trigger(system, "consumer", 5,
                    lambda: halting.initiate(["consumer"]))
    system.run_to_quiescence()
    total = len(system.user_process_names)
    halted = total - len(halting.unhalted())
    return halted, total, system.state_of("producer")["produced"]


def extended_run(stages, seed=1):
    topo, processes = pipeline.build(stages=stages, items=ITEMS)
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    session.set_breakpoint("enter(consume)@consumer ^5")
    outcome = session.run()
    total = len(session.system.user_process_names)
    halted = sum(
        1 for name in session.system.user_process_names
        if session.system.controller(name).halted
    )
    produced = (
        session.inspect("producer")["produced"] if outcome.stopped else ITEMS
    )
    return halted, total, produced


def run_sweep(lengths=(1, 2, 4, 8, 16)):
    rows = []
    for stages in lengths:
        basic_halted, total, basic_produced = basic_run(stages)
        ext_halted, _, ext_produced = extended_run(stages)
        rows.append((
            stages + 2,
            f"{basic_halted}/{total}", basic_produced,
            f"{ext_halted}/{total}", ext_produced,
        ))
    return rows


def test_e3_acyclic_topology(benchmark):
    rows = run_sweep()
    emit(
        "e3_acyclic_topology",
        "E3 — consumer-initiated halt on acyclic pipelines "
        f"(producer has {ITEMS} items)",
        ["pipe len", "basic halted", "basic produced",
         "extended halted", "extended produced"],
        rows,
    )
    for row in rows:
        total = row[0]
        assert row[1] == f"1/{total}"          # only the consumer halts
        assert row[2] == ITEMS                  # producer ran to exhaustion
        assert row[3] == f"{total}/{total}"     # extended halts everyone
        assert row[4] < ITEMS                   # producer frozen mid-stream
    once(benchmark, extended_run, 2)
