"""E18 (extension) — parallel schedule exploration and the kernel hot path.

The checker's cost model is schedules explored per second. This experiment
quantifies the two levers the parallel explorer pulls:

* **kernel events/sec** — the controlled-stepping hot path. The pre-PR
  kernel rebuilt the live-entry list and allocated a fresh view object for
  *every pending entry on every step* (O(pending) allocations per event);
  the current kernel keeps a live-entry index and caches one immutable
  view per entry. A faithful replica of the pre-PR kernel is embedded
  below so the ratio is measured, not remembered.
* **schedules/sec** — end-to-end exploration throughput, sequential vs
  ``-j 2`` / ``-j 4``, on every registered scenario, plus a pre-PR
  sequential baseline (legacy kernel + legacy scheduler patched into the
  runtime) on token_ring.

Determinism is asserted along the way: a fixed seed must produce the same
schedule count, distinct-state count, and violation set at every worker
count. Engine accounting (leases, snapshot restores vs root replays,
captures/evictions) is recorded per row but deliberately *excluded* from
the determinism check — which worker executes which lease is timing-
dependent; only the merged verdict is contractual.

Speedup criteria detect the host at runtime and refuse to dodge: on a
host with >= 4 cores, ``j4_vs_sequential`` must clear
:data:`J4_SPEEDUP_FLOOR` or the benchmark *fails*; with >= 2 cores,
``j2_vs_sequential`` must clear :data:`J2_SPEEDUP_FLOOR`. The only
documented skip is a single-core host, where a multi-process explorer
cannot beat sequential wall-clock by physics, not by implementation.
Every JSON row records the ``cpu_count`` it was measured on so a reader
can tell a single-core artifact from a real regression.
"""

import heapq
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List

from bench_util import emit, emit_json, once
from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios
from repro.check.scheduler import classify
from repro.simulation.kernel import ScheduledEvent, SimulationKernel
from repro.util.errors import SimulationError

BUDGET = 150
MICRO_STEPS = 5000
MICRO_WIDTHS = (8, 48)
KERNEL_SPEEDUP_FLOOR = 1.3
#: Floors for schedules/sec vs sequential on token_ring. Asserted — not
#: skipped — whenever the host has enough cores to make them physically
#: attainable (>= 2 cores for j2, >= 4 for j4).
J2_SPEEDUP_FLOOR = 1.4
J4_SPEEDUP_FLOOR = 2.0


# -- faithful replicas of the pre-PR hot path --------------------------------
# Transcribed from the last pre-PR revision of repro.simulation.kernel and
# repro.check.scheduler so the baseline stays measurable after the
# originals are gone.


@dataclass(order=True)
class _LegacyEntry:
    time: float
    priority: int
    tiebreak: tuple
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class LegacyKernel:
    """Pre-PR ``SimulationKernel``: list rescan + fresh views every step."""

    def __init__(self) -> None:
        self._queue: List[_LegacyEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_executed = 0
        self._ordering = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay, callback, priority=0, tiebreak=()):
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = next(self._sequence)
        entry = _LegacyEntry(self._now + delay, priority, tiebreak, sequence,
                             callback)
        heapq.heappush(self._queue, entry)
        from repro.simulation.kernel import EventHandle
        return EventHandle(entry.time, priority, sequence)

    def schedule_at(self, at, callback, priority=0, tiebreak=()):
        if at < self._now:
            raise SimulationError(f"cannot schedule at t={at} < now={self._now}")
        return self.schedule(at - self._now, callback, priority, tiebreak)

    def cancel(self, handle) -> bool:
        for entry in self._queue:
            if (entry.sequence == handle.sequence
                    and entry.time == handle.time
                    and not entry.cancelled):
                entry.cancelled = True
                return True
        return False

    def set_ordering(self, hook) -> None:
        self._ordering = hook

    def step(self) -> bool:
        if self._ordering is not None:
            return self._step_controlled()
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._events_executed += 1
            entry.callback()
            return True
        return False

    def _step_controlled(self) -> bool:
        live = [e for e in self._queue if not e.cancelled]
        if not live:
            self._queue.clear()
            return False
        views = [ScheduledEvent(e.sequence, e.time, e.priority, e.tiebreak)
                 for e in live]
        chosen = self._ordering(views)
        by_sequence = {e.sequence: e for e in live}
        entry = by_sequence.get(chosen)
        if entry is None:
            raise SimulationError(f"unknown entry sequence {chosen!r}")
        entry.cancelled = True
        self._now = max(self._now, entry.time)
        self._events_executed += 1
        if self._events_executed % 256 == 0:
            self.drain_cancelled()
        entry.callback()
        return True

    def run(self, until=None, max_events=None, stop_when=None) -> int:
        if self._running:
            raise SimulationError("run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
                executed += 1
                if stop_when is not None and stop_when():
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return executed

    def _peek(self):
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def pending_metadata(self):
        return [(e.time, e.priority, e.tiebreak)
                for e in self._queue if not e.cancelled]

    def drain_cancelled(self) -> None:
        live = [e for e in self._queue if not e.cancelled]
        heapq.heapify(live)
        self._queue = live


class LegacyKernelGate:
    """Pre-PR per-step cost model behind the modern gate protocol.

    The old ``ControlledScheduler`` path paid, on *every* step: one rescan
    of the pending queue for live entries, one fresh view object per live
    entry, one uncached ``classify()`` per view, and one sequence-indexed
    dict to map the choice back to its entry. This gate reproduces that
    exact per-step work over a :class:`LegacyKernel` so ``drive()`` can
    run it through the unchanged judging path.
    """

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self._heads = {}

    def enabled(self) -> List[str]:
        views = [ScheduledEvent(e.sequence, e.time, e.priority, e.tiebreak)
                 for e in self.kernel._queue if not e.cancelled]
        heads = {}
        for view in views:
            label = classify(view)
            head = heads.get(label)
            if head is None or self._key(view) < self._key(head):
                heads[label] = view
        self._heads = heads
        return sorted(heads)

    def commit(self, label: str) -> None:
        head = self._heads[label]
        by_sequence = {e.sequence: e
                       for e in self.kernel._queue if not e.cancelled}
        entry = by_sequence[head.sequence]
        entry.cancelled = True
        self.kernel._now = max(self.kernel._now, entry.time)
        self.kernel._events_executed += 1
        if self.kernel._events_executed % 256 == 0:
            self.kernel.drain_cancelled()
        entry.callback()

    def close(self) -> None:
        pass

    def quiescent(self) -> bool:
        return not any(not e.cancelled for e in self.kernel._queue)

    @property
    def now(self) -> float:
        return self.kernel._now

    @staticmethod
    def _key(event):
        return (event.time, event.tiebreak, event.sequence)


# -- kernel micro-benchmark ---------------------------------------------------


def _fifo_hook(views):
    best = views[0]
    for v in views:
        if (v.time, v.priority, v.tiebreak, v.sequence) < (
                best.time, best.priority, best.tiebreak, best.sequence):
            best = v
    return best.sequence


def kernel_rate(kernel, width: int, steps: int = MICRO_STEPS) -> float:
    """Controlled-mode events/sec with ``width`` entries always pending."""
    def tick():
        kernel.schedule(1.0, tick)
    for i in range(width):
        kernel.schedule(float(i % 7), tick)
    kernel.set_ordering(_fifo_hook)
    for _ in range(200):  # warm-up
        kernel.step()
    started = time.perf_counter()
    for _ in range(steps):
        kernel.step()
    return steps / (time.perf_counter() - started)


# -- exploration throughput ---------------------------------------------------


def explore_rate(scenario, jobs: int, budget: int = BUDGET):
    started = time.perf_counter()
    report = explore_parallel(scenario, budget=budget, seed=0, jobs=jobs)
    elapsed = time.perf_counter() - started
    return report, report.schedules_run / elapsed


def legacy_sequential_rate(scenario, budget: int = BUDGET):
    """Sequential exploration with the pre-PR kernel + step costs patched in."""
    import repro.check.engine as engine_mod
    import repro.check.runner as runner_mod
    import repro.runtime.system as system_mod

    saved = (system_mod.SimulationKernel, runner_mod.KernelGate,
             engine_mod.KernelGate)
    system_mod.SimulationKernel = LegacyKernel
    runner_mod.KernelGate = LegacyKernelGate
    engine_mod.KernelGate = LegacyKernelGate
    try:
        return explore_rate(scenario, jobs=1, budget=budget)
    finally:
        (system_mod.SimulationKernel, runner_mod.KernelGate,
         engine_mod.KernelGate) = saved


def _engine_accounting(report):
    """The per-run engine counters worth archiving with a throughput row."""
    eng = report.engine
    return {
        "leases": report.leases,
        "avg_lease_tasks": round(
            report.lease_tasks / report.leases, 2) if report.leases else 0.0,
        "snapshot_restores": eng.get("snapshot_restores", 0),
        "root_restores": eng.get("root_restores", 0),
        "oneshot_runs": eng.get("oneshot_runs", 0),
        "snapshot_captures": eng.get("snapshot_captures", 0),
        "snapshot_evictions": eng.get("snapshot_evictions", 0),
        "replayed_decisions": eng.get("replayed_decisions", 0),
    }


def run_sweep():
    registry = scenarios()
    cores = os.cpu_count() or 1
    rows = []
    json_rows = []

    # Kernel hot path: legacy replica vs current, same hook, same workload.
    kernel_ratios = {}
    for width in MICRO_WIDTHS:
        legacy = kernel_rate(LegacyKernel(), width)
        current = kernel_rate(SimulationKernel(), width)
        kernel_ratios[width] = current / legacy
        rows.append((f"kernel width={width}", "events/s",
                     f"{legacy:,.0f}", f"{current:,.0f}", "-", "-",
                     f"{current / legacy:.2f}x"))
        json_rows.append({
            "what": f"kernel_controlled_step_width_{width}",
            "legacy_events_per_sec": round(legacy, 1),
            "current_events_per_sec": round(current, 1),
            "speedup": round(current / legacy, 3),
        })

    # Exploration throughput: every scenario at jobs 1 / 2 / 4.
    reports = {}
    for name in sorted(registry):
        scenario = registry[name]
        per_jobs = {}
        for jobs in (1, 2, 4):
            report, rate = explore_rate(scenario, jobs)
            per_jobs[jobs] = (report, rate)
        reports[name] = per_jobs
        r1 = per_jobs[1][0]
        for jobs in (2, 4):
            rj = per_jobs[jobs][0]
            # Determinism across worker counts, the merge contract.
            assert rj.schedules_run == r1.schedules_run, (name, jobs)
            assert rj.distinct_states == r1.distinct_states, (name, jobs)
            assert (rj.violation is None) == (r1.violation is None), (name, jobs)
        rows.append((name, "schedules/s",
                     "-",
                     f"{per_jobs[1][1]:.1f}",
                     f"{per_jobs[2][1]:.1f}",
                     f"{per_jobs[4][1]:.1f}",
                     f"{per_jobs[4][1] / per_jobs[1][1]:.2f}x"))
        json_rows.append({
            "what": f"explore_{name}",
            "cpu_count": cores,
            "schedules": r1.schedules_run,
            "deduped_nodes": r1.deduped_nodes,
            "distinct_states": r1.distinct_states,
            "j1_schedules_per_sec": round(per_jobs[1][1], 1),
            "j2_schedules_per_sec": round(per_jobs[2][1], 1),
            "j4_schedules_per_sec": round(per_jobs[4][1], 1),
            "j2_speedup": round(per_jobs[2][1] / per_jobs[1][1], 3),
            "j4_speedup": round(per_jobs[4][1] / per_jobs[1][1], 3),
            "engine": {
                f"j{jobs}": _engine_accounting(per_jobs[jobs][0])
                for jobs in (1, 2, 4)
            },
        })

    # Pre-PR end-to-end baseline (token_ring): same explorer driving the
    # legacy kernel + scheduler.
    _, legacy_rate = legacy_sequential_rate(registry["token_ring"])
    _, current_rate = explore_rate(registry["token_ring"], jobs=1)
    rows.append(("token_ring pre-PR", "schedules/s", f"{legacy_rate:.1f}",
                 f"{current_rate:.1f}", "-", "-",
                 f"{current_rate / legacy_rate:.2f}x"))
    json_rows.append({
        "what": "explore_token_ring_prepr_baseline",
        "legacy_j1_schedules_per_sec": round(legacy_rate, 1),
        "current_j1_schedules_per_sec": round(current_rate, 1),
        "speedup": round(current_rate / legacy_rate, 3),
    })

    j2_rate = reports["token_ring"][2][1]
    j4_rate = reports["token_ring"][4][1]
    seq_rate = reports["token_ring"][1][1]
    j2_speedup = j2_rate / seq_rate
    j4_speedup = j4_rate / seq_rate

    def speedup_status(measured, floor, cores_needed):
        if cores >= cores_needed:
            return "pass" if measured >= floor else "fail"
        if cores == 1:
            return ("skipped (single-core host: a multi-process explorer "
                    "cannot beat sequential wall-clock here)")
        return (f"skipped (host has {cores} cores; criterion asserted on "
                f">={cores_needed}-core hosts)")

    criteria = {
        "kernel_events_per_sec": {
            "target": KERNEL_SPEEDUP_FLOOR,
            "measured": {str(w): round(r, 3) for w, r in kernel_ratios.items()},
            "status": "pass" if min(kernel_ratios.values())
            >= KERNEL_SPEEDUP_FLOOR else "fail",
        },
        "j2_vs_sequential_token_ring": {
            "target": J2_SPEEDUP_FLOOR,
            "measured": round(j2_speedup, 3),
            "cpu_count": cores,
            "status": speedup_status(j2_speedup, J2_SPEEDUP_FLOOR, 2),
        },
        "j4_vs_sequential_token_ring": {
            "target": J4_SPEEDUP_FLOOR,
            "measured": round(j4_speedup, 3),
            "cpu_count": cores,
            "status": speedup_status(j4_speedup, J4_SPEEDUP_FLOOR, 4),
        },
    }
    assert min(kernel_ratios.values()) >= KERNEL_SPEEDUP_FLOOR, kernel_ratios
    # A "fail" status above must fail the benchmark — a capable host that
    # misses the floor is a perf regression, not an environment artifact.
    for key, crit in criteria.items():
        assert crit["status"] != "fail", (key, crit)
    return rows, json_rows, criteria


def test_e18_parallel_check(benchmark):
    rows, json_rows, criteria = run_sweep()
    emit(
        "e18_parallel_check",
        f"E18 — parallel exploration throughput (budget {BUDGET}/scenario) "
        "and kernel hot path (legacy replica vs current)",
        ["what", "unit", "legacy", "j1/current", "j2", "j4", "speedup"],
        rows,
    )
    emit_json("e18_parallel_check", {
        "budget": BUDGET,
        "micro_steps": MICRO_STEPS,
        "cpu_count": os.cpu_count(),
        "rows": json_rows,
        "criteria": criteria,
    }, name="BENCH_E18")
    once(benchmark, explore_rate, scenarios()["token_ring"], 2, 60)
