"""E4 — §2.2.2 problem 1: infrequently-communicating processes halt late.

Two dense clusters, one slow bridge. A halt initiated inside cluster A
reaches cluster B only across the bridge under the basic algorithm, so
B's halt latency grows linearly with the bridge latency. The extended
model's debugger is a one-hop neighbour of everyone: its halt latency is
bridge-independent. Expected shape: basic latency ≈ bridge latency + ε,
extended latency ≈ constant.
"""

import pytest

from bench_util import emit, once
from repro.debugger import DebugSession
from repro.experiments import install_trigger
from repro.halting import HaltingCoordinator
from repro.network.latency import FixedLatency
from repro.runtime.system import System
from repro.workloads import infrequent


def basic_run(bridge_latency, seed=2):
    topo, processes, latencies = infrequent.build(
        cluster_size=3, budget=40, bridge_latency=bridge_latency
    )
    system = System(topo, processes, seed=seed, channel_latencies=latencies,
                    latency=FixedLatency(0.8))
    halting = HaltingCoordinator(system)
    fired = {}

    def initiate():
        fired["at"] = system.kernel.now
        halting.initiate(["a0"])

    install_trigger(system, "a0", 10, initiate)
    system.run_to_quiescence()
    state = halting.collect()
    last_halt = max(s.time for s in state.processes.values())
    return last_halt - fired["at"]


def extended_run(bridge_latency, seed=2):
    topo, processes, latencies = infrequent.build(
        cluster_size=3, budget=40, bridge_latency=bridge_latency
    )
    # Control channels to/from the debugger keep the fast local latency.
    session = DebugSession(topo, processes, seed=seed,
                           channel_latencies=latencies,
                           latency=FixedLatency(0.8))
    session.set_breakpoint("state(sent>=10)@a0")
    outcome = session.run()
    assert outcome.stopped
    state = session.global_state()
    times = [s.time for s in state.processes.values()]
    return max(times) - outcome.hits[0].time if outcome.hits else 0.0


def run_sweep(bridges=(5.0, 10.0, 20.0, 40.0)):
    rows = []
    for bridge in bridges:
        basic = basic_run(bridge)
        extended = extended_run(bridge)
        rows.append((bridge, round(basic, 2), round(extended, 2)))
    return rows


def test_e4_infrequent_communicators(benchmark):
    rows = run_sweep()
    emit(
        "e4_infrequent",
        "E4 — halt latency with a slow bridge between clusters",
        ["bridge latency", "basic halt latency", "extended halt latency"],
        rows,
    )
    # Basic latency tracks the bridge; extended does not.
    basics = [row[1] for row in rows]
    extendeds = [row[2] for row in rows]
    assert basics == sorted(basics)
    assert basics[-1] >= rows[-1][0]  # at least one bridge crossing
    assert max(extendeds) - min(extendeds) < rows[0][0]
    assert max(extendeds) < basics[-1]
    once(benchmark, basic_run, 10.0)
