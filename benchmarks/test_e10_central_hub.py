"""E10 — the centralized-hub debugger's costs (§4's BUGNET critique).

The same chatter program runs (a) on its own channels, (b) rerouted through
a central hub. Metrics per size n: user-message hops (hub pays 2× + the
relay's own sends), mean end-to-end delivery latency for application
payloads, and whether the program's execution was perturbed (first point
of divergence in the event history). The hub's one concession — trivially
simple central detection — is also demonstrated.

Expected shape: hops exactly 2×, latency ≈2×, perturbation from the very
first delivery.
"""

import pytest

from bench_util import emit, once
from repro.analysis import mean_user_latency
from repro.baselines.central_hub import build_hubbed_system
from repro.experiments import build_system
from repro.network.latency import UniformLatency
from repro.trace import compare_logs
from repro.workloads import chatter


def direct_run(n, seed=6):
    system = build_system(lambda: chatter.build(n=n, budget=20, seed=seed), seed,
                          latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    return system


def hub_run(n, seed=6):
    topo, processes = chatter.build(n=n, budget=20, seed=seed)
    system, hub = build_hubbed_system(topo, processes, seed=seed,
                                      latency=UniformLatency(0.4, 1.6))
    system.run_to_quiescence()
    return system, hub


def end_to_end_hub_latency(system, hub):
    """Mean src->hub->dst latency per application message."""
    # Per-hop mean × 2 is a fair estimate since both hops share the model;
    # measure directly from channel stats.
    return mean_user_latency(system) * 2


def run_sweep(sizes=(3, 5, 8)):
    rows = []
    for n in sizes:
        direct = direct_run(n)
        hubbed, hub = hub_run(n)
        direct_hops = direct.message_totals()["user"]
        hub_hops = hubbed.message_totals()["user"]
        divergence = compare_logs(direct.log, hubbed.log)
        rows.append((
            n,
            direct_hops, hub_hops,
            round(hub_hops / direct_hops, 2),
            round(mean_user_latency(direct), 2),
            round(end_to_end_hub_latency(hubbed, hub), 2),
            divergence.index if divergence else "none",
        ))
    return rows


def test_e10_central_hub(benchmark):
    rows = run_sweep()
    emit(
        "e10_central_hub",
        "E10 — direct vs hub-rerouted execution (chatter, budget 20)",
        ["n", "direct hops", "hub hops", "hop ratio",
         "direct latency", "hub e2e latency", "first divergence"],
        rows,
    )
    for row in rows:
        assert row[3] == 2.0, "hub must exactly double user-message hops"
        assert row[5] > 1.8 * row[4], "hub latency should be ~2x"
        assert row[6] != "none", "rerouting perturbs the execution (§4)"

    # The concession: central detection is a list scan.
    _, hub = hub_run(4)
    first = hub.records[0]
    assert hub.detect_sequence([(first.src, first.dst, first.tag)]) is not None
    once(benchmark, hub_run, 4)
