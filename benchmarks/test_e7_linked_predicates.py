"""E7 — Linked Predicate detection: soundness against the causal oracle.

For every completed LP the detector reports a trail of stage hits; the
oracle (vector clocks over the ground-truth log) must confirm the trail is
a happened-before chain whose events match the stage terms. Sweep:
workload × predicate shape × seed. Also reported: detection latency (last
stage event time → halt initiation) and predicate-marker message counts.
Expected shape: 100% of trails oracle-confirmed; zero trails means the
predicate legitimately never fired (reported, must stay rare).
"""

import pytest

from bench_util import emit, once
from repro.breakpoints import BreakpointCoordinator
from repro.experiments import build_system
from repro.halting import HaltingCoordinator
from repro.workloads import bank, gossip, token_ring

SWEEP = [
    ("ring 2-stage", lambda: token_ring.build(n=4, max_hops=60),
     "enter(receive_token)@p1 -> enter(receive_token)@p3"),
    ("ring 3-stage", lambda: token_ring.build(n=4, max_hops=60),
     "enter(receive_token)@p0 -> enter(receive_token)@p2 -> enter(receive_token)@p1"),
    ("ring repeat", lambda: token_ring.build(n=4, max_hops=60),
     "enter(receive_token)@p1^2 -> enter(receive_token)@p2"),
    ("bank disjunct", lambda: bank.build(n=4, transfers=30),
     "send(wire)@branch0 | send(wire)@branch1 -> recv(wire)@branch2"),
    ("gossip chain", lambda: gossip.build(n=8, ttl=8, seed=5, delay=3.0),
     "mark(rumor_started)@g0 -> recv(rumor)@g2"),
]


def oracle_check(system, trail):
    """Trail events exist, match their terms, and form a h-b chain."""
    events = []
    by_eid = {e.eid: e for e in system.log}
    for hit in trail:
        event = by_eid.get(hit.eid)
        if event is None or event.process != hit.process:
            return False
        events.append(event)
    return all(a.happened_before(b) for a, b in zip(events, events[1:]))


def run_one(builder, predicate, seed):
    system = build_system(builder, seed)
    halting = HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint(predicate)
    system.run_to_quiescence()
    hits = breakpoints.hits_for(lp_id)
    if not hits:
        return 0, 0, 0.0, system.message_totals().get("predicate_marker", 0)
    confirmed = sum(1 for hit in hits if oracle_check(system, hit.trail))
    # Detection latency: final stage event -> all halted.
    state = halting.collect(require_all=False)
    last_halt = max((s.time for s in state.processes.values()), default=0.0)
    latency = last_halt - hits[0].trail[-1].time
    markers = system.message_totals().get("predicate_marker", 0)
    return len(hits), confirmed, latency, markers


def run_sweep(seeds=(0, 1, 2)):
    rows = []
    for name, builder, predicate in SWEEP:
        for seed in seeds:
            fired, confirmed, latency, markers = run_one(builder, predicate, seed)
            rows.append((
                name, seed, fired, confirmed,
                round(latency, 2), markers,
            ))
    return rows


def test_e7_linked_predicates(benchmark):
    rows = run_sweep()
    emit(
        "e7_linked_predicates",
        "E7 — LP detection vs causal oracle",
        ["scenario", "seed", "completions", "oracle-confirmed",
         "halt latency", "marker msgs"],
        rows,
    )
    for row in rows:
        assert row[2] == row[3], f"unconfirmed trail in {row[0]} seed {row[1]}"
    fired_total = sum(row[2] for row in rows)
    assert fired_total >= len(rows) * 0.6, "too many predicates never fired"
    name, builder, predicate = SWEEP[0]
    once(benchmark, run_one, builder, predicate, 0)
