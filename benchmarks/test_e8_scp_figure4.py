"""E8 — Figure 4: the SCP partition, reproduced on the real runtime.

We script the paper's exact two-process history: P1 satisfies SP1 at
virtual times t11 < t12 < t13, P2 satisfies SP2 at t21 < t22 < t23, and one
message m1 (sent by P1 after t11, received by P2 before t23) creates the
only cross-process causality. The oracle must classify (t11, t23) as
ordered — the paper's ordered-SCP example — and (t12, t22) as unordered —
the paper's unordered-SCP example. Cross-checks: the LP detector catches an
ordered pair and initiates halting; the gather detector reports the
unordered pair, but only after its notification delay (§3.5's argument).
"""

import pytest

from bench_util import emit, once
from repro.breakpoints import (
    BreakpointCoordinator,
    SimplePredicate,
    compute_scp,
)
from repro.debugger import DebugSession
from repro.events.event import EventKind
from repro.halting import HaltingCoordinator
from repro.network.latency import FixedLatency
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.system import System


class P1(Process):
    """Figure 4's P1: marks sp1 at t11=1.0, t12=2.2, t13=9.0; sends m1 at
    t=2.0 (so it reaches P2 between t22 and t23)."""

    def on_start(self, ctx):
        for name, at in (("sp1_a", 1.0), ("m1", 2.0), ("sp1_b", 2.2), ("sp1_c", 9.0)):
            ctx.set_timer(name, at)

    def on_timer(self, ctx, name, payload):
        if name == "m1":
            ctx.send("P2", "m1", tag="m1")
        else:
            ctx.mark("sp1")


class P2(Process):
    """Figure 4's P2: marks sp2 at t21=1.5, t22=2.5, and at t23 (one unit
    after m1 arrives); sends m2 back at t=3.0 (after t21 and t22), which
    reaches P1 before t13."""

    def on_start(self, ctx):
        ctx.set_timer("sp2_a", 1.5)
        ctx.set_timer("sp2_b", 2.5)
        ctx.set_timer("m2", 3.0)

    def on_timer(self, ctx, name, payload):
        if name == "m2":
            ctx.send("P1", "m2", tag="m2")
        else:
            ctx.mark("sp2")

    def on_message(self, ctx, src, payload):
        ctx.set_timer("sp2_c", 1.0)  # t23 = m1 arrival + 1


def figure4_topology():
    topo = Topology().add_process("P1").add_process("P2")
    topo.add_bidirectional("P1", "P2")
    return topo


SP1 = SimplePredicate(process="P1", kind=EventKind.STATE_CHANGE, detail="sp1")
SP2 = SimplePredicate(process="P2", kind=EventKind.STATE_CHANGE, detail="sp2")


def run_figure4():
    system = System(figure4_topology(), {"P1": P1(), "P2": P2()},
                    seed=0, latency=FixedLatency(1.0))
    system.run_to_quiescence()
    return system, compute_scp(system.log, SP1, SP2)


def classify(system, result):
    """Label each pair by its (tij, tkl) position for the table."""
    sp1_times = sorted(e.time for e in system.log.find(
        process="P1", kind=EventKind.STATE_CHANGE, detail="sp1"))
    sp2_times = sorted(e.time for e in system.log.find(
        process="P2", kind=EventKind.STATE_CHANGE, detail="sp2"))
    label1 = {t: f"t1{i+1}" for i, t in enumerate(sp1_times)}
    label2 = {t: f"t2{i+1}" for i, t in enumerate(sp2_times)}
    rows = []
    for pair in list(result.ordered) + list(result.unordered):
        rows.append((
            label1[pair.first.time], label2[pair.second.time],
            pair.direction,
            "ordered" if pair.ordered else "unordered",
        ))
    rows.sort()
    return rows


def lp_cross_check():
    """An ordered pair is detectable with the Linked Predicate SP1 -> SP2."""
    system = System(figure4_topology(), {"P1": P1(), "P2": P2()},
                    seed=0, latency=FixedLatency(1.0))
    HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    lp_id = breakpoints.set_breakpoint("mark(sp1)@P1 -> mark(sp2)@P2")
    system.run_to_quiescence()
    hits = breakpoints.hits_for(lp_id)
    return hits


def gather_cross_check():
    """The unordered pair is only catchable by gathering — measure the lag."""
    topo = figure4_topology()
    session = DebugSession(topo, {"P1": P1(), "P2": P2()}, seed=0,
                           latency=FixedLatency(1.0))
    watch_id = session.watch_conjunction("mark(sp1)@P1 & mark(sp2)@P2")
    session.run()
    return session.agent.detections_for(watch_id)


def test_e8_scp_figure4(benchmark):
    system, result = run_figure4()
    rows = classify(system, result)
    emit(
        "e8_scp_figure4",
        "E8 — Figure 4 SCP partition (t11..t13 × t21..t23)",
        ["SP1 time", "SP2 time", "direction", "class"],
        rows,
    )
    table = {(r[0], r[1]): r[3] for r in rows}
    directions = {(r[0], r[1]): r[2] for r in rows}
    assert table[("t11", "t23")] == "ordered"      # the paper's ordered example
    assert directions[("t11", "t23")] == "1->2"    # via m1
    assert table[("t12", "t22")] == "unordered"    # the paper's unordered example
    assert table[("t11", "t21")] == "unordered"
    assert table[("t11", "t22")] == "unordered"    # m1 lands after t22
    assert table[("t13", "t21")] == "ordered"      # via m2
    assert directions[("t13", "t21")] == "2->1"
    # t23 precedes m2's send? No — m2 left before t23, so t23 and t13 are
    # concurrent even though both "late" events exist on both axes.
    assert table[("t13", "t23")] == "unordered"

    hits = lp_cross_check()
    assert hits, "LP detector missed the ordered pair"
    trail = hits[0].trail
    assert [h.process for h in trail] == ["P1", "P2"]

    detections = gather_cross_check()
    assert detections, "gather detector missed the unordered pair"
    lag = detections[0].detection_lag
    emit(
        "e8_gather_lag",
        "E8b — gather detection of the unordered pair",
        ["detections", "detection lag (time units)"],
        [(len(detections), round(lag, 2))],
    )
    assert lag > 0, "gathering cannot be instantaneous (§3.5)"
    once(benchmark, run_figure4)
