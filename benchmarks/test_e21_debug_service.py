"""E21 — control-plane latency as concurrent debug sessions pile up.

The debugger service (``repro.debugger.service``) promises that many
attached sessions share one cluster without getting in each other's way.
This experiment puts a number on "without getting in each other's way":
against a real TCP :class:`DebugServer` fronting a threaded bank cluster,
it measures

* **attach latency** — wall-clock for one full ``connect → attach reply``
  handshake while K sessions are already attached and idle (the new
  arrival pays for the session-table insert under the table lock);
* **fire-to-halt latency** — wall-clock from ``break-set`` on a live
  cluster to ``wait-halt`` reporting the halt converged, with the same K
  bystander sessions attached (each polling ``status``, so the cluster
  lock is contended the whole time).

The workload and predicate are fixed across K, so the spread between
rows is control-plane overhead, not workload noise. Results land in
``benchmarks/out/BENCH_E21.json``.
"""

import statistics
import threading
import time

from bench_util import emit, once
from repro.debugger import (
    DebugClient,
    DebugServer,
    DebuggerService,
    HeldTarget,
    ThreadedSurface,
)
from repro.debugger.threaded_session import ThreadedDebugSession
from repro.workloads import bank

PARAMS = {"n": 3, "transfers": 100_000, "tick": 0.05}
PREDICATE = "state(transfers_made>=8)@branch0"
SESSION_COUNTS = (1, 8, 32)
ATTACH_SAMPLES = 20


def make_server() -> DebugServer:
    """A TCP debug server over a held (not yet spawned) threaded bank."""

    def factory() -> ThreadedSurface:
        topo, processes = bank.build(**PARAMS)
        session = ThreadedDebugSession(topo, processes, seed=3)
        session.start()
        return ThreadedSurface(session)

    return DebugServer(DebuggerService(HeldTarget(factory)), port=0)


def attach_latencies(port: int, samples: int):
    """Mean/p95 seconds for a fresh connect+attach, repeated ``samples``×."""
    seen = []
    for index in range(samples):
        client = DebugClient(port, label=f"probe-{index}")
        started = time.perf_counter()
        client.connect()
        seen.append(time.perf_counter() - started)
        client.close()
    seen.sort()
    return statistics.mean(seen), seen[int(len(seen) * 0.95) - 1]


def fire_to_halt(port: int) -> float:
    """Seconds from break-set on the live cluster to halt convergence."""
    with DebugClient(port, label="driver") as driver:
        started = time.perf_counter()
        armed = driver.request("break-set", predicate=PREDICATE)
        assert armed["state"] == "armed", armed
        halted = driver.request("wait-halt", timeout=60)
        elapsed = time.perf_counter() - started
        assert halted["stopped"], halted
        assert driver.request("status")["halted"], "halt did not converge"
    return elapsed


def scenario(k: int):
    """One full measurement at K concurrent sessions; returns metrics."""
    bystanders = []
    with make_server() as server:
        try:
            for index in range(k):
                client = DebugClient(server.port, label=f"idle-{index}")
                client.connect()
                bystanders.append(client)

            attach_mean, attach_p95 = attach_latencies(
                server.port, ATTACH_SAMPLES
            )

            # Spawn the cluster, then measure with the bystanders polling
            # status the whole time (contending for the cluster lock).
            assert bystanders[0].request("spawn")["spawned"]
            stop_polling = []

            def poll(client):
                while not stop_polling:
                    client.request("status")

            pollers = [
                threading.Thread(target=poll, args=(c,), daemon=True)
                for c in bystanders
            ]
            for thread in pollers:
                thread.start()
            try:
                halt_secs = fire_to_halt(server.port)
            finally:
                stop_polling.append(True)
                for thread in pollers:
                    thread.join(timeout=10.0)
            assert server.service.session_count() == k
        finally:
            for client in bystanders:
                client.close()
            surface = server.service.target.surface()
            if surface is not None:
                surface.shutdown()
    return attach_mean, attach_p95, halt_secs


def test_e21_debug_service(benchmark):
    rows = []
    for k in SESSION_COUNTS:
        attach_mean, attach_p95, halt_secs = scenario(k)
        rows.append((
            k,
            f"{attach_mean * 1000:.2f}",
            f"{attach_p95 * 1000:.2f}",
            f"{halt_secs:.3f}",
        ))
    once(benchmark, scenario, SESSION_COUNTS[0])
    emit(
        "E21",
        "E21 — debug control plane under concurrent sessions "
        f"(threaded bank(3), tick {PARAMS['tick']}s, "
        f"{ATTACH_SAMPLES} attach samples per row)",
        ["sessions", "attach_mean_ms", "attach_p95_ms",
         "break_set_to_halt_s"],
        rows,
    )
