"""E6 — §2.2.4 halting-order information is causally accurate.

Every halt marker carries the names of already-halted processes. Accuracy
check, over workloads × seeds: every process named in a marker path halted
no later than the receiving process (by halt timestamps), and the path's
prefix relation matches the marker forwarding routes. Expected shape: zero
violations everywhere; the order report names the breakpoint process first.
"""

import pytest

from bench_util import emit, once
from repro.debugger import DebugSession
from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.network.latency import UniformLatency
from repro.workloads import bank, chatter, token_ring

SWEEP = [
    ("token_ring", lambda: token_ring.build(n=5, max_hops=60), "p2", 8),
    ("bank", lambda: bank.build(n=4, transfers=30), "branch1", 10),
    ("chatter", lambda: chatter.build(n=5, budget=30, seed=6), "p3", 10),
]


def run_one(builder, trigger, nth, seed):
    system = build_system(builder, seed)
    halting = HaltingCoordinator(system)
    install_trigger(system, trigger, nth, lambda: halting.initiate([trigger]))
    system.run_to_quiescence()
    state = halting.collect()
    halt_times = {name: snap.time for name, snap in state.processes.items()}
    report = halting.halting_order_report()
    violations = 0
    for process, path in report.items():
        for earlier in path:
            if earlier in halt_times and halt_times[earlier] > halt_times[process]:
                violations += 1
    initiator_first = halting.halt_order[0] == trigger
    return len(report), violations, initiator_first


def run_sweep(seeds=(0, 1, 2, 3)):
    rows = []
    for name, builder, trigger, nth in SWEEP:
        for seed in seeds:
            paths, violations, initiator_first = run_one(builder, trigger, nth, seed)
            rows.append((name, seed, paths, violations,
                         "yes" if initiator_first else "NO"))
    return rows


def test_e6_halting_order(benchmark):
    rows = run_sweep()
    emit(
        "e6_halt_order",
        "E6 — §2.2.4 marker-path accuracy",
        ["workload", "seed", "paths checked", "causal violations",
         "initiator halted first"],
        rows,
    )
    assert all(row[3] == 0 for row in rows)
    assert all(row[4] == "yes" for row in rows)
    name, builder, trigger, nth = SWEEP[0]
    once(benchmark, run_one, builder, trigger, nth, 0)


def test_e6_debugger_view_matches_marker_paths(benchmark):
    """The debugger's arrival-order report and the marker paths agree."""
    topo, processes = bank.build(n=4, transfers=30)
    session = DebugSession(topo, processes, seed=9,
                           latency=UniformLatency(0.4, 1.6))
    session.set_breakpoint("state(transfers_made>=6)@branch2")
    outcome = session.run()
    assert outcome.stopped
    paths = session.halt_paths()
    notified = set(session.halting_order())
    assert notified == set(session.system.user_process_names)
    rows = [(process, " -> ".join(path)) for process, path in sorted(paths.items())]
    emit(
        "e6_halt_order_debugger",
        "E6b — debugger-collected halt paths (one run)",
        ["process", "marker path"],
        rows,
    )
    # The breakpoint process initiated: it heads its own path.
    assert paths["branch2"] == ("branch2",)
    once(benchmark, lambda: None)
