"""E15 (extension) — scale: the algorithms at laptop-uncomfortable sizes.

Not a paper claim, an adoption question: how do halt latency, marker
counts, and wall-clock cost grow with system size? Marker count is exactly
the channel count per generation (each process sends one marker per
outgoing channel, once); halt span stays flat on constant-degree
topologies and the whole 128-process ring halts in well under a second of
wall clock on the DES backend.
"""

import time

import pytest

from bench_util import emit, once
from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.network.topology import complete, ring
from repro.workloads.chatter import ChatterProcess


def run_one(kind, n, seed=1):
    names = [f"p{i}" for i in range(n)]
    topo = ring(names) if kind == "ring" else complete(names)
    processes = {name: ChatterProcess(budget=10, tick=0.8) for name in names}
    system = build_system(lambda: (topo, processes), seed)
    coordinator = HaltingCoordinator(system)
    install_trigger(system, "p0", 5, lambda: coordinator.initiate(["p0"]))
    wall_start = time.perf_counter()
    system.run_to_quiescence(max_events=5_000_000)
    wall = time.perf_counter() - wall_start
    assert coordinator.all_halted()
    state = coordinator.collect()
    times = [snap.time for snap in state.processes.values()]
    markers = system.message_totals().get("halt_marker", 0)
    return len(topo.channels), markers, max(times) - min(times), wall


def run_sweep():
    rows = []
    for kind, sizes in (("ring", (8, 32, 128)), ("complete", (8, 16, 32))):
        for n in sizes:
            channels, markers, span, wall = run_one(kind, n)
            rows.append((
                kind, n, channels, markers, round(span, 2),
                f"{wall * 1000:.0f}ms",
            ))
    return rows


def test_e15_scale(benchmark):
    rows = run_sweep()
    emit(
        "e15_scale",
        "E15 — halting at scale (chatter, budget 10, halt at p0's 5th event)",
        ["topology", "n", "channels", "halt markers", "halt span", "wall clock"],
        rows,
    )
    for kind, n, channels, markers, span, wall in rows:
        # The marker-count law: exactly one marker per channel per
        # generation (the debugger-free basic model; one generation).
        assert markers == channels, (kind, n)
    ring_spans = [row[4] for row in rows if row[0] == "ring"]
    # Ring span grows with n (markers travel hop by hop)...
    assert ring_spans[0] < ring_spans[-1]
    complete_spans = [row[4] for row in rows if row[0] == "complete"]
    # ...while the complete graph's stays within a couple of hops.
    assert max(complete_spans) < 6.0
    once(benchmark, run_one, "ring", 32)
