"""E2 — Theorem 2: the halted state equals the recorded snapshot, exactly.

Sweep: workload × seed × initiation point, including simultaneous
multi-initiator cases. Expected shape: the `S_h == S_r` column is `exact`
for every row — the headline result of the reproduction.
"""

import pytest

from bench_util import emit, once
from repro.analysis import states_equivalent
from repro.experiments import run_halting, run_snapshot
from repro.workloads import bank, chatter, token_ring

SWEEP = [
    ("token_ring", lambda: token_ring.build(n=4, max_hops=40), "p1", 8, ()),
    ("token_ring", lambda: token_ring.build(n=4, max_hops=40), "p3", 20, ()),
    ("bank", lambda: bank.build(n=4, transfers=25), "branch0", 12, ()),
    ("bank 2-init", lambda: bank.build(n=4, transfers=25), "branch0", 12, ("branch3",)),
    ("chatter", lambda: chatter.build(n=5, budget=25, seed=4), "p2", 10, ()),
    ("chatter 3-init", lambda: chatter.build(n=5, budget=25, seed=4), "p2", 10, ("p0", "p4")),
]


def paired(builder, seed, trigger, nth, extras):
    _, _, s_h = run_halting(builder, seed, trigger, nth, extra_initiators=extras)
    _, _, s_r = run_snapshot(builder, seed, trigger, nth, extra_initiators=extras)
    return s_h, s_r


def run_sweep(seeds=(0, 1, 2)):
    rows = []
    for name, builder, trigger, nth, extras in SWEEP:
        for seed in seeds:
            s_h, s_r = paired(builder, seed, trigger, nth, extras)
            report = states_equivalent(s_h, s_r)
            rows.append((
                name, seed, trigger,
                len(s_h.processes),
                s_h.total_pending_messages(),
                "exact" if report.equivalent else report.differences[0],
            ))
    return rows


def test_e2_halt_equals_snapshot(benchmark):
    rows = run_sweep()
    emit(
        "e2_halt_equals_snapshot",
        "E2 — S_h = S_r (Theorem 2), exact structural equality",
        ["workload", "seed", "initiator", "procs", "pending msgs", "S_h == S_r"],
        rows,
    )
    assert all(row[5] == "exact" for row in rows)
    name, builder, trigger, nth, extras = SWEEP[0]
    once(benchmark, paired, builder, 0, trigger, nth, extras)
