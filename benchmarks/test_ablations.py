"""Ablations — break each load-bearing design choice and watch it matter.

A1. *Markers on every outgoing channel* (the Halt Routine's "for each
    channel c"): an ablated agent that sends markers on only the first
    outgoing channel leaves processes unreached and channels unclosed —
    S_h stops being a complete, determinable global state.

A2. *halt_id freshness check* (the Marker-Receiving Rule's "if halt_id is
    greater"): an ablated agent that halts on any marker gets re-frozen by
    stale generation-1 markers after a resume.

A3. *Control channels in both directions* (§2.2.3: "two control channels,
    one to and one from the debugger process"): with only d→p channels the
    debugger can still initiate halts, but a process-initiated halt (a
    breakpoint firing) can never reach d — and on an acyclic user topology
    it reaches nobody upstream either. The from-channel is what makes every
    process a halting *initiator*.

A4. *Reliable channels* (§2.1: "error-free"): each process sends its halt
    marker exactly once per channel, so a single dropped marker silently
    strands every process downstream of it. Sweeping a loss probability
    quantifies how quickly the guarantee evaporates.

All ablations are measured, not argued: the same scenarios that pass in
E2/E12/E3 fail in quantified ways here.
"""

import pytest

from bench_util import emit, once
from repro.experiments import build_system, install_trigger
from repro.halting import HaltingCoordinator
from repro.halting.algorithm import HaltingAgent
from repro.halting.markers import HaltMarker
from repro.network.message import MessageKind
from repro.workloads import chatter, token_ring


class FirstChannelOnlyAgent(HaltingAgent):
    """A1: violates the Halt Routine by marking only one outgoing channel."""

    def _forward_markers(self, marker):
        forwarded = marker.extended_by(self.controller.name)
        channels = self.controller.outgoing_channels()
        for channel_id in channels[:1]:
            self.controller.send_control(
                channel_id, MessageKind.HALT_MARKER, forwarded
            )


class NoFreshnessAgent(HaltingAgent):
    """A2: violates the Marker-Receiving Rule by ignoring halt_id."""

    def on_control(self, envelope):
        marker = envelope.payload
        self.last_halt_id = max(self.last_halt_id, marker.halt_id)
        if not self.controller.halted and not self.controller.never_halts:
            self._halt_routine(marker)


class AblatedCoordinator(HaltingCoordinator):
    def __init__(self, system, agent_cls):
        self.system = system
        self.halt_order = []
        self.agents = {}
        for name in system.topology.processes:
            controller = system.controller(name)
            agent = agent_cls(controller, self._agent_halted)
            controller.install(agent)
            self.agents[name] = agent


def ablation_a1(seed=2):
    """Dense chatter graph; count unreached processes and unclosed channels
    for the faithful vs ablated agent."""
    results = {}
    for label, agent_cls in (("faithful", HaltingAgent),
                             ("first-channel-only", FirstChannelOnlyAgent)):
        system = build_system(lambda: chatter.build(n=6, budget=40, seed=7), seed)
        coordinator = AblatedCoordinator(system, agent_cls)
        install_trigger(system, "p0", 10, lambda c=coordinator: c.initiate(["p0"]))
        system.run_to_quiescence()
        unhalted = len(coordinator.unhalted())
        open_channels = 0
        for name in system.user_process_names:
            controller = system.controller(name)
            if not controller.halted:
                continue
            for channel_id, envelopes in controller.halt_buffers.items():
                if envelopes and channel_id not in controller.closed_channels:
                    open_channels += 1
        results[label] = (unhalted, open_channels)
    return results


def ablation_a2(seed=5):
    """Resume after a halt, re-deliver a stale generation-1 marker, count
    spuriously re-halted processes."""
    results = {}
    for label, agent_cls in (("faithful", HaltingAgent),
                             ("no-freshness", NoFreshnessAgent)):
        system = build_system(lambda: token_ring.build(n=4, max_hops=300), seed)
        coordinator = AblatedCoordinator(system, agent_cls)
        install_trigger(system, "p1", 5, lambda c=coordinator: c.initiate(["p1"]))
        system.run_to_quiescence()
        assert coordinator.all_halted()
        coordinator.resume_all()
        stale = HaltMarker(halt_id=1, path=("ghost",))
        controller = system.controller("p0")
        controller.send_control(
            controller.outgoing_channels()[0], MessageKind.HALT_MARKER, stale
        )
        system.run_to_quiescence()
        spurious = sum(
            1 for name in system.user_process_names
            if system.controller(name).halted
        )
        results[label] = spurious
    return results


def test_ablation_marker_coverage(benchmark):
    results = ablation_a1()
    rows = [
        (label, unhalted, open_channels)
        for label, (unhalted, open_channels) in results.items()
    ]
    emit(
        "ablation_a1_marker_coverage",
        "A1 — halt markers on all vs one outgoing channel (6-process chatter)",
        ["agent", "unhalted processes", "buffered channels w/o marker"],
        rows,
    )
    faithful_unhalted, faithful_open = results["faithful"]
    ablated_unhalted, ablated_open = results["first-channel-only"]
    assert faithful_unhalted == 0 and faithful_open == 0
    assert ablated_unhalted > 0 or ablated_open > 0
    once(benchmark, ablation_a1)


def _extended(user_topology, both_ways):
    from repro.network.topology import Topology

    topo = Topology()
    for name in user_topology.processes:
        topo.add_process(name)
    topo.add_process("d")
    for channel in user_topology.channels:
        topo.add_channel(channel.src, channel.dst)
    for name in user_topology.processes:
        topo.add_channel("d", name)
        if both_ways:
            topo.add_channel(name, "d")
    return topo


def ablation_a3(seed=4):
    """Pipeline under the extended model with both-ways vs to-only control
    channels; halts initiated by the debugger and by the consumer."""
    from repro.debugger.agent import DebuggerProcess
    from repro.experiments import install_trigger
    from repro.network.latency import UniformLatency
    from repro.runtime.system import System
    from repro.workloads import pipeline

    results = {}
    for both_ways in (True, False):
        for initiator in ("d", "consumer"):
            topo, processes = pipeline.build(stages=2, items=40)
            extended = _extended(topo, both_ways)
            staffed = dict(processes)
            staffed["d"] = DebuggerProcess()
            system = System(extended, staffed, seed=seed,
                            latency=UniformLatency(0.4, 1.6),
                            never_halt={"d"})
            coordinator = AblatedCoordinator(system, HaltingAgent)
            if initiator == "d":
                install_trigger(
                    system, "consumer", 5,
                    lambda c=coordinator: c.agents["d"].initiate(),
                )
            else:
                install_trigger(
                    system, "consumer", 5,
                    lambda c=coordinator: c.initiate(["consumer"]),
                )
            system.run_to_quiescence()
            total = len(system.user_process_names)
            halted = total - len(coordinator.unhalted())
            config = "both-ways" if both_ways else "to-only"
            results[(config, initiator)] = (halted, total)
    return results


def test_ablation_control_channel_directions(benchmark):
    results = ablation_a3()
    rows = [
        (config, initiator, f"{halted}/{total}")
        for (config, initiator), (halted, total) in sorted(results.items())
    ]
    emit(
        "ablation_a3_control_directions",
        "A3 — control channels both ways vs debugger->process only "
        "(pipeline, stages=2)",
        ["control channels", "halt initiator", "halted"],
        rows,
    )
    # Both directions: everyone halts regardless of who initiates.
    assert results[("both-ways", "d")][0] == results[("both-ways", "d")][1]
    assert results[("both-ways", "consumer")][0] == results[("both-ways", "consumer")][1]
    # To-only: the debugger can still halt everyone...
    assert results[("to-only", "d")][0] == results[("to-only", "d")][1]
    # ...but a process-initiated halt reaches nobody else on the acyclic pipe.
    assert results[("to-only", "consumer")][0] == 1
    once(benchmark, ablation_a3)


def ablation_a4(loss_probabilities=(0.0, 0.05, 0.2, 0.5), seeds=range(6)):
    """Ring halting under marker loss: fraction of processes halted."""
    from repro.experiments import install_trigger
    from repro.network.latency import UniformLatency
    from repro.runtime.system import System
    from repro.workloads import token_ring

    rows = []
    for loss in loss_probabilities:
        fractions = []
        complete = 0
        for seed in seeds:
            topo, processes = token_ring.build(n=6, max_hops=100)
            system = System(topo, processes, seed=seed,
                            latency=UniformLatency(0.4, 1.6),
                            loss_probability=loss)
            coordinator = AblatedCoordinator(system, HaltingAgent)
            install_trigger(system, "p0", 5,
                            lambda c=coordinator: c.initiate(["p0"]))
            system.run_to_quiescence()
            total = len(system.user_process_names)
            halted = total - len(coordinator.unhalted())
            fractions.append(halted / total)
            complete += int(halted == total)
        rows.append((
            loss,
            round(sum(fractions) / len(fractions), 2),
            f"{complete}/{len(list(seeds))}",
        ))
    return rows


def test_ablation_reliable_channels(benchmark):
    rows = ablation_a4()
    emit(
        "ablation_a4_reliable_channels",
        "A4 — halting under marker loss (6-station ring, halt at p0's 5th event)",
        ["loss probability", "mean fraction halted", "runs fully halted"],
        rows,
    )
    assert rows[0][1] == 1.0 and rows[0][2].startswith("6")
    # Loss strictly degrades coverage.
    fractions = [row[1] for row in rows]
    assert fractions[0] >= fractions[1] >= fractions[-1]
    assert fractions[-1] < 1.0
    once(benchmark, ablation_a4, (0.2,), range(2))


def test_ablation_halt_id_freshness(benchmark):
    results = ablation_a2()
    emit(
        "ablation_a2_freshness",
        "A2 — stale-marker immunity after resume (4-station ring)",
        ["agent", "spuriously re-halted processes"],
        [(label, count) for label, count in results.items()],
    )
    assert results["faithful"] == 0
    assert results["no-freshness"] > 0
    once(benchmark, ablation_a2)
