"""E13 (extension) — Possibly/Definitely over the cut lattice vs online detection.

The paper stops at "unordered conjunctions need gathering and come late"
(§3.5). The line of work it seeded (Cooper & Marzullo) made the offline
semantics precise: ``Possibly(φ)`` (some consistent cut satisfies φ) and
``Definitely(φ)`` (every observation must pass through φ). This experiment
connects our online gather detector to those semantics:

* whenever the online detector reports an unordered co-satisfaction, the
  offline lattice confirms ``Possibly(φ)`` — the online detector is sound;
* ``Definitely`` is strictly rarer than ``Possibly`` (transients are
  usually avoidable);
* lattice sizes show why online detection matters: even tiny runs have
  thousands of consistent cuts.
"""

import pytest

from bench_util import emit, once
from repro.analysis import CutLattice, state_predicate
from repro.debugger import DebugSession
from repro.network.latency import UniformLatency
from repro.workloads import bank

LOW = 950
HIGH = 1000


def run_one(seed):
    """phi: branch0 has dipped below LOW while branch1 still sits at or
    above HIGH — a *transient* condition (branch1 usually dips too,
    eventually), so Definitely can genuinely come out false."""
    topo, processes = bank.build(n=3, transfers=4, tick=0.8)
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    watch_id = session.watch_conjunction(
        f"state(balance<{LOW})@branch0 & state(balance>={HIGH})@branch1"
    )
    session.run()
    online = len(session.agent.detections_for(watch_id))

    lattice = CutLattice(
        session.system.log,
        processes=sorted(session.system.user_process_names),
        max_cuts=400_000,
    )
    low = lambda v: v is not None and v < LOW
    high = lambda v: v is None or v >= HIGH
    phi = state_predicate(**{"branch0.balance": low, "branch1.balance": high})
    cuts = lattice.count_cuts()
    possibly = lattice.possibly(phi)
    definitely = lattice.definitely(phi)
    return cuts, possibly.holds, definitely.holds, online


def run_sweep(seeds=(0, 1, 2, 3, 4, 5)):
    rows = []
    for seed in seeds:
        cuts, possibly, definitely, online = run_one(seed)
        rows.append((
            seed, cuts,
            "yes" if possibly else "no",
            "yes" if definitely else "no",
            online,
        ))
    return rows


def test_e13_possibly_definitely(benchmark):
    rows = run_sweep()
    emit(
        "e13_possibly_definitely",
        f"E13 — Possibly/Definitely(branch0<{LOW} AND branch1>={HIGH}) "
        "vs online gather detection (bank n=3, 4 transfers)",
        ["seed", "consistent cuts", "Possibly", "Definitely", "online detections"],
        rows,
    )
    for seed, cuts, possibly, definitely, online in rows:
        # Online soundness: a gather detection implies Possibly.
        if online > 0:
            assert possibly == "yes", f"seed {seed}: online detected but not Possibly"
        # Definitely implies Possibly.
        if definitely == "yes":
            assert possibly == "yes"
        assert cuts > 100  # even these tiny runs have big lattices
    assert any(row[2] == "yes" for row in rows), "transient never possible?"
    assert any(row[3] == "no" for row in rows), (
        "expected at least one avoidable (Possibly-but-not-Definitely) run"
    )
    once(benchmark, run_one, 0)
