"""E12 — halt_id discipline across repeated halt/resume cycles (§2.2.1).

The paper claims: when all processes halt, every last_halt_id is equal
(each gets incremented exactly once per halting), and old markers are
distinguishable from new ones. We run k breakpoint→halt→inspect→resume
cycles on one session and check, per cycle: all ids equal, ids strictly
increasing across cycles, and a deliberately re-injected stale marker
re-halts nobody.
"""

import pytest

from bench_util import emit, once
from repro.debugger import DebugSession
from repro.halting import HaltMarker
from repro.network.latency import UniformLatency
from repro.network.message import MessageKind
from repro.workloads import token_ring


def run_cycles(cycles=4, seed=5):
    topo, processes = token_ring.build(n=4, max_hops=500)
    session = DebugSession(topo, processes, seed=seed,
                           latency=UniformLatency(0.4, 1.6))
    rows = []
    for cycle in range(1, cycles + 1):
        session.set_breakpoint(f"enter(receive_token)@p1 ^{cycle}")
        outcome = session.run()
        assert outcome.stopped, f"cycle {cycle} did not halt"
        ids = {
            session._halting_agents[name].last_halt_id
            for name in session.system.user_process_names
        }
        tokens_seen = session.inspect("p1")["tokens_seen"]
        rows.append((cycle, sorted(ids), tokens_seen))

        # Stale-marker immunity: re-inject the *previous* generation's
        # marker at a user process after resuming.
        session.resume()
        stale = HaltMarker(halt_id=max(ids) - 1, path=("ghost",))
        controller = session.system.controller("p0")
        controller.send_control(
            controller.outgoing_channels()[0], MessageKind.HALT_MARKER, stale
        )
    return session, rows


def test_e12_halt_generations(benchmark):
    session, rows = run_cycles()
    emit(
        "e12_halt_id",
        "E12 — halt_id generations over halt/resume cycles "
        "(stale marker re-injected after each resume)",
        ["cycle", "last_halt_ids (all agents)", "p1 tokens_seen"],
        rows,
    )
    for cycle, ids, _ in rows:
        assert len(ids) == 1, f"cycle {cycle}: ids diverged {ids}"
    generations = [ids[0] for _, ids, _ in rows]
    assert generations == sorted(set(generations)), "generations must increase"
    # After the final resume + stale marker, nothing halted spuriously.
    session.system.kernel.run(max_events=100_000,
                              stop_when=session.system.all_user_processes_halted)
    assert not session.system.all_user_processes_halted()
    once(benchmark, run_cycles, 2)
