"""E1 — Theorem 1: every C&L snapshot is a consistent global state.

Sweep: workload × seed × initiator. Columns: events executed, messages
captured in channels, and the oracle verdict. Expected shape: the
`consistent` column is always yes, with nonzero in-flight counts proving
the snapshots really do catch messages mid-channel.
"""

import pytest

from bench_util import emit, once
from repro.analysis import check_cut_consistency
from repro.experiments import run_snapshot
from repro.workloads import bank, chatter, gossip, token_ring

SWEEP = [
    ("token_ring", lambda: token_ring.build(n=4, max_hops=40), "p1", 12),
    ("bank", lambda: bank.build(n=4, transfers=25), "branch2", 15),
    ("chatter", lambda: chatter.build(n=5, budget=25, seed=8), "p0", 10),
    ("gossip", lambda: gossip.build(n=8, ttl=8, seed=8, delay=2.0), "g0", 4),
]


def run_sweep(seeds=(0, 1, 2)):
    rows = []
    for name, builder, trigger, nth in SWEEP:
        for seed in seeds:
            system, _, state = run_snapshot(builder, seed, trigger, nth)
            report = check_cut_consistency(system.log, state)
            rows.append((
                name, seed, len(system.log),
                state.total_pending_messages(),
                "yes" if report.consistent else "NO: " + report.violations[0],
            ))
    return rows


def test_e1_snapshot_consistency(benchmark):
    rows = run_sweep()
    emit(
        "e1_snapshot_consistency",
        "E1 — C&L snapshot consistency (Theorem 1)",
        ["workload", "seed", "events", "in-flight msgs", "consistent"],
        rows,
    )
    assert all(row[4] == "yes" for row in rows)
    assert any(row[3] > 0 for row in rows), "no snapshot caught in-flight traffic"
    once(benchmark, run_snapshot, SWEEP[0][1], 0, SWEEP[0][2], SWEEP[0][3])
